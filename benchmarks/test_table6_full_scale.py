"""Table 6 at full SF1000 scale: the paper's actual configuration.

Unlike ``test_table6_breakeven_compute`` (which runs a 1/20-scale variant
for both FaaS and IaaS), this bench executes TPC-H Q6 and Q12 on the full
996-partition lineitem / 249-partition orders layout with the paper's
fleet sizes (201 scan workers for Q6; 284 first-stage nodes for Q12).
The simulated statistics land on the published Table 6 numbers:

=====================  ========  ========  ==============
metric                 paper     measured  (this harness)
=====================  ========  ========  ==============
Q6 cumulated time      515.9 s   ~543 s
Q6 FaaS cost           4.87 c    ~5.1 c
Q6 storage requests    1,401     1,399
Q6 break-even          558 Q/h   ~530 Q/h
Q12 cumulated time     2,227 s   ~2,224 s
Q12 FaaS cost          21.19 c   ~23 c
=====================  ========  ========  ==============
"""

import pytest

from conftest import save_artifact
from repro.core import CloudSim, format_table
from repro.datagen import load_table, scaled_spec
from repro.engine import SkyriseEngine
from repro.engine.queries import tpch_q6, tpch_q12
from repro.pricing import ec2_instance, faas_break_even_queries_per_hour

#: The paper's worker fleet sizes (Section 5.2).
Q6_SCAN_FRAGMENTS = 201
Q12_LINEITEM_FRAGMENTS = 235
Q12_ORDERS_FRAGMENTS = 49   # 284 first-stage nodes in total
Q12_JOIN_FRAGMENTS = 128


def run_experiment():
    sim = CloudSim(seed=60)
    s3 = sim.s3()
    lineitem = sim.run(load_table(
        sim.env, s3, scaled_spec("lineitem", 996, rows_per_partition=16)))
    orders = sim.run(load_table(
        sim.env, s3, scaled_spec("orders", 249, rows_per_partition=64)))
    engine = SkyriseEngine(sim.env, sim.platform,
                           storage={"s3-standard": s3})
    engine.register_table(lineitem)
    engine.register_table(orders)
    engine.deploy()
    q6 = sim.run(engine.run_query(tpch_q6(
        scan_fragments=Q6_SCAN_FRAGMENTS)))
    q12 = sim.run(engine.run_query(tpch_q12(
        lineitem_fragments=Q12_LINEITEM_FRAGMENTS,
        orders_fragments=Q12_ORDERS_FRAGMENTS,
        join_fragments=Q12_JOIN_FRAGMENTS)))
    return q6, q12


def test_table6_full_scale(benchmark):
    q6, q12 = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    vm = ec2_instance("c6g.xlarge")
    break_even_q6 = faas_break_even_queries_per_hour(
        q6.cost_cents / 100.0, vm.hourly_usd, q6.peak_fragments)
    break_even_q12 = faas_break_even_queries_per_hour(
        q12.cost_cents / 100.0, vm.hourly_usd,
        Q12_LINEITEM_FRAGMENTS + Q12_ORDERS_FRAGMENTS)
    rows = [
        ["FaaS runtime [s]", "5.7", f"{q6.runtime:.1f}",
         "19.2", f"{q12.runtime:.1f}"],
        ["Cumulated time [s]", "515.9", f"{q6.cumulated_time:.1f}",
         "2,227.3", f"{q12.cumulated_time:.1f}"],
        ["FaaS cost [c]", "4.87", f"{q6.cost_cents:.2f}",
         "21.19", f"{q12.cost_cents:.2f}"],
        ["Break-even [Q/h]", "558", f"{break_even_q6:.0f}",
         "128", f"{break_even_q12:.0f}"],
        ["Storage requests", "1,401", f"{q6.requests:,}",
         "30,033", f"{q12.requests:,}"],
        ["Peak-to-average nodes", "2.21", f"{q6.peak_to_average_nodes():.2f}",
         "2.43", f"{q12.peak_to_average_nodes():.2f}"],
    ]
    table = format_table(
        ["Metric", "Q6 paper", "Q6 measured", "Q12 paper", "Q12 measured"],
        rows, title="Table 6 at SF1000 scale (996/249 partitions)")
    save_artifact("table6_full_scale", table)

    # Q6: the headline Table 6 statistics land on the paper's values.
    assert q6.cumulated_time == pytest.approx(515.9, rel=0.25)
    assert q6.cost_cents == pytest.approx(4.87, rel=0.25)
    assert q6.requests == pytest.approx(1_401, rel=0.1)
    assert break_even_q6 == pytest.approx(558, rel=0.25)
    assert q6.runtime == pytest.approx(5.7, rel=0.45)
    # Q12: within the same bands (the shuffle's retry amplification makes
    # our request count higher; the billed time and cost still match).
    assert q12.cumulated_time == pytest.approx(2_227.3, rel=0.3)
    assert q12.cost_cents == pytest.approx(21.19, rel=0.3)
    assert q12.runtime == pytest.approx(19.2, rel=0.45)
    assert q12.requests > 10 * q6.requests
    # Correct results at scale: Q6 yields one revenue row, Q12 the two
    # ship modes.
    assert q6.batch.num_rows == 1
    assert sorted(q12.batch.column("l_shipmode")) == ["MAIL", "SHIP"]
