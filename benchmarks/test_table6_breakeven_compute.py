"""Table 6: execution statistics and compute break-even points.

TPC-H Q6 and Q12 run on identical plans in both deployments: warm Lambda
functions vs a pre-provisioned C6g.xlarge cluster. Reported per query:
IaaS and FaaS runtimes, cumulated FaaS function time, FaaS cost, the
break-even query throughput against a peak-provisioned cluster, the
intra-query peak-to-average node ratio, and the storage request profile.

Paper shape (at SF1000): FaaS runtimes 6-10% above IaaS; break-even
throughputs of hundreds (Q6) and ~a hundred (Q12) queries/hour;
peak-to-average ratios of ~2.2-2.4x; Q12 needs ~20x more storage
requests than Q6, with shuffle I/O sizes from ~1 KiB to MiBs.
"""

from conftest import save_artifact
from repro import units
from repro.core import CloudSim, format_table
from repro.datagen import load_table, scaled_spec
from repro.engine import SkyriseEngine
from repro.engine.queries import tpch_q6, tpch_q12
from repro.iaas import VmShim
from repro.pricing import faas_break_even_queries_per_hour, ec2_instance

LINEITEM_PARTITIONS = 48
ORDERS_PARTITIONS = 12
JOIN_FRAGMENTS = 24


def build_engine(backend: str):
    sim = CloudSim(seed=16)
    s3 = sim.s3()
    lineitem = sim.run(load_table(
        sim.env, s3, scaled_spec("lineitem", LINEITEM_PARTITIONS,
                                 rows_per_partition=64)))
    orders = sim.run(load_table(
        sim.env, s3, scaled_spec("orders", ORDERS_PARTITIONS,
                                 rows_per_partition=256)))
    if backend == "faas":
        platform = sim.platform
    else:
        # Peak stage width (Q12: both scans run concurrently) plus the
        # coordinator's own slot.
        peak = LINEITEM_PARTITIONS + ORDERS_PARTITIONS + 2
        instances = sim.run(sim.fleet.provision("c6g.xlarge", count=peak))
        platform = VmShim(sim.env, instances, slots_per_vm=1)
    engine = SkyriseEngine(sim.env, platform, storage={"s3-standard": s3})
    engine.register_table(lineitem)
    engine.register_table(orders)
    engine.deploy()
    return sim, engine


def plans():
    return {
        "H-Q6": tpch_q6(scan_fragments=LINEITEM_PARTITIONS),
        "H-Q12": tpch_q12(lineitem_fragments=LINEITEM_PARTITIONS,
                          orders_fragments=ORDERS_PARTITIONS,
                          join_fragments=JOIN_FRAGMENTS),
    }


RUNS = 5


def median_run(sim, engine, plan, runs=RUNS):
    """Re-run the query and keep the run with the median runtime.

    Mirrors the paper: "we run the query suite ten times each and
    collect statistics from the run with the median runtime"; idle gaps
    between runs let the sandbox network budgets refill.
    """
    results = []
    for _ in range(runs):
        results.append(sim.run(engine.run_query(plan)))
        sim.run(_sleep(sim.env, 10.0))
    results.sort(key=lambda r: r.runtime)
    return results[len(results) // 2]


def _sleep(env, seconds):
    yield env.timeout(seconds)


def run_experiment():
    stats = {}
    for query, plan in plans().items():
        sim_f, engine_f = build_engine("faas")
        # Warm the functions (the paper warms up before measuring).
        sim_f.run(engine_f.run_query(plan))
        faas = median_run(sim_f, engine_f, plan)
        sim_v, engine_v = build_engine("iaas")
        iaas = median_run(sim_v, engine_v, plan)
        vm = ec2_instance("c6g.xlarge")
        break_even = faas_break_even_queries_per_hour(
            faas_cost_per_query=faas.cost_cents / 100.0,
            vm_hourly_usd=vm.hourly_usd,
            peak_vms=faas.peak_fragments)
        sizes = sorted(faas.request_sizes)
        stats[query] = {
            "iaas_runtime": iaas.runtime,
            "faas_runtime": faas.runtime,
            "cumulated": faas.cumulated_time,
            "faas_cost_cents": faas.cost_cents,
            "break_even_qph": break_even,
            "peak_to_avg": faas.peak_to_average_nodes(),
            "requests": faas.requests,
            "shuffle_io_min_kib": sizes[0] / units.KiB,
            "shuffle_io_max_kib": sizes[-1] / units.KiB,
            "storage_cost_cents": faas.storage_cost_cents,
        }
    return stats


def test_table6_breakeven_compute(benchmark):
    stats = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for metric, key, fmt in [
            ("IaaS runtime [s]", "iaas_runtime", "{:.2f}"),
            ("FaaS runtime [s]", "faas_runtime", "{:.2f}"),
            ("Cumulated time [s]", "cumulated", "{:.1f}"),
            ("FaaS cost [c]", "faas_cost_cents", "{:.3f}"),
            ("Break-even [Q/h]", "break_even_qph", "{:.0f}"),
            ("Peak-to-average nodes", "peak_to_avg", "{:.2f}"),
            ("Storage requests", "requests", "{:,.0f}"),
            ("Storage cost [c]", "storage_cost_cents", "{:.3f}")]:
        rows.append([metric] + [fmt.format(stats[q][key])
                                for q in ("H-Q6", "H-Q12")])
    table = format_table(["Metric", "H-Q6", "H-Q12"], rows,
                         title="Table 6: FaaS vs IaaS execution statistics")
    save_artifact("table6_breakeven_compute", table)

    q6, q12 = stats["H-Q6"], stats["H-Q12"]
    # FaaS end-to-end latency is modestly higher than IaaS (paper: +10%
    # for Q6, +6% for Q12; warm functions, so the gap stays small).
    for q in (q6, q12):
        assert q["faas_runtime"] >= q["iaas_runtime"] * 0.98
        assert q["faas_runtime"] <= q["iaas_runtime"] * 1.6
    # Q12 costs several times more than Q6 (paper: 21.19 vs 4.87 cents),
    # so its break-even throughput is several times lower (128 vs 558).
    assert q12["faas_cost_cents"] > 2 * q6["faas_cost_cents"]
    assert q6["break_even_qph"] > 2 * q12["break_even_qph"]
    # Cumulated function time vastly exceeds the runtime (parallelism).
    assert q6["cumulated"] > 3 * q6["faas_runtime"]
    # Intra-query elasticity headroom (paper: 2.21x / 2.43x).
    assert q12["peak_to_avg"] > 1.3
    # Q12's shuffle needs an order of magnitude more storage requests
    # (paper: 30,033 vs 1,401) at higher storage cost.
    assert q12["requests"] > 5 * q6["requests"]
    assert q12["storage_cost_cents"] > q6["storage_cost_cents"]
    # Shuffle I/O sizes range from ~KiB to MiB scale (paper: 1.1 KiB -
    # 2,078 KiB for Q12).
    assert q12["shuffle_io_min_kib"] < 100.0
    assert q12["shuffle_io_max_kib"] > 1_000.0
