"""Micro-benchmark: telemetry overhead, disabled and enabled.

The telemetry contract is that the *default* (disabled) path costs one
predicate check per instrumentation site — an uninstrumented run should
be indistinguishable from a build without telemetry — and that enabled
recording stays within a small constant factor. This benchmark times
TPC-H Q6 end-to-end both ways and bounds the ratio, and measures the
raw cost of the disabled-path guard itself.
"""

import time

from conftest import save_artifact
from repro.core import format_table
from repro.core.context import CloudSim
from repro.obs.scenario import run_obs_replay
from repro.shard.replay import ReplayConfig, run_replay
from repro.telemetry import get_recorder, recording
from repro.workloads.suite import SuiteSetup, build_plan, setup_engine

ROUNDS = 3
#: Enabled recording must stay within this factor of the disabled run.
MAX_ENABLED_RATIO = 3.0
#: Regression bound for the attached obs plane (tail sampling + SLO
#: evaluation + flight recorder). The design target is ~5%: the
#: completion-interest pre-filter keeps the dropped-trace path to three
#: inline scalar checks, and isolated cross-process runs measure the
#: plane at ~4% over the bare replay. The asserted bound sits above the
#: target because single-process wall-clock on a shared container
#: jitters by ±5% — the bound has to clear the noise floor or the
#: gate flakes on scheduler luck, not regressions.
MAX_OBS_RATIO = 1.10
OBS_ROUNDS = 4


def _run_q6(record: bool) -> float:
    started = time.perf_counter()
    if record:
        with recording():
            _execute()
    else:
        _execute()
    return time.perf_counter() - started


def _execute() -> None:
    sim = CloudSim(seed=11)
    setup = SuiteSetup(queries=("tpch-q6",), lineitem_partitions=3,
                       orders_partitions=2, rows_per_partition=96)
    engine = setup_engine(sim, setup)
    sim.run(engine.run_query(build_plan("tpch-q6")))


def test_telemetry_overhead(benchmark):
    def run_experiment():
        disabled = sorted(_run_q6(record=False) for _ in range(ROUNDS))
        enabled = sorted(_run_q6(record=True) for _ in range(ROUNDS))
        return disabled[ROUNDS // 2], enabled[ROUNDS // 2]

    disabled_s, enabled_s = benchmark.pedantic(run_experiment, rounds=1,
                                               iterations=1)
    ratio = enabled_s / disabled_s
    table = format_table(
        ["Mode", "Median wall [s]", "Ratio"],
        [["telemetry off (default)", f"{disabled_s:.4f}", "1.00"],
         ["telemetry on", f"{enabled_s:.4f}", f"{ratio:.2f}"]],
        title=f"Telemetry overhead, TPC-H Q6, median of {ROUNDS}")
    save_artifact("telemetry_overhead", table)
    assert ratio < MAX_ENABLED_RATIO, (
        f"enabled telemetry costs {ratio:.2f}x the disabled run "
        f"(bound {MAX_ENABLED_RATIO}x)")


def test_obs_plane_overhead(benchmark):
    """The attached obs plane stays close to the bare replay's runtime.

    Same sharded shard-failure replay both ways — tail sampling, SLO
    windows, burn-rate evaluation, and flight-recorder notes all active
    in the observed run. Rounds interleave bare and observed runs and
    the asserted statistic is the *minimum paired ratio*: pairing
    cancels slow drift (thermal, container co-tenancy) that min-of-each
    would attribute to whichever side ran later, and the best-case pair
    is the closest this box gets to measuring the plane alone.
    """
    config = ReplayConfig(seed=11).smoke()

    def run_experiment():
        pairs = []
        for _ in range(OBS_ROUNDS):
            started = time.process_time()
            run_replay(config)
            bare = time.process_time() - started
            started = time.process_time()
            run_obs_replay(config)
            pairs.append((bare, time.process_time() - started))
        return min(pairs, key=lambda pair: pair[1] / pair[0])

    bare_s, observed_s = benchmark.pedantic(run_experiment, rounds=1,
                                            iterations=1)
    ratio = observed_s / bare_s
    table = format_table(
        ["Mode", "CPU wall [s]", "Ratio"],
        [["bare replay", f"{bare_s:.4f}", "1.00"],
         ["obs plane attached", f"{observed_s:.4f}", f"{ratio:.2f}"]],
        title=f"Obs plane overhead, smoke replay, "
              f"best pair of {OBS_ROUNDS}")
    save_artifact("obs_overhead", table)
    assert ratio < MAX_OBS_RATIO, (
        f"obs plane costs {ratio:.3f}x the bare replay "
        f"(bound {MAX_OBS_RATIO}x)")


def test_disabled_guard_is_cheap(benchmark):
    """The per-site cost when telemetry is off: one attribute check."""
    recorder = get_recorder()
    assert not recorder.enabled

    def guard_loop():
        telemetry = recorder if recorder.enabled else None
        hits = 0
        for _ in range(100_000):
            if telemetry is not None:
                hits += 1
        return hits

    assert benchmark(guard_loop) == 0
