"""Figure 6: EC2 C6g and Lambda network bursting behaviour.

For each EC2 instance size (and Lambda), report the token bucket size,
the burst throughput, and the sustained baseline throughput. The paper's
shape: both services burst; EC2 buckets (and burst durations) are
substantially larger and grow with instance size; Lambda's bucket is
small (~0.3 GiB) but its burst is significant.
"""

import pytest

from conftest import save_artifact
from repro import units
from repro.core import CloudSim, format_table
from repro.core.micro import run_ec2_network_profile
from repro.core.micro.network import lambda_network_profile

INSTANCES = ["c6g.medium", "c6g.xlarge", "c6g.4xlarge", "c6g.16xlarge"]


def run_experiment():
    profiles = {}
    for instance in INSTANCES:
        sim = CloudSim(seed=6)
        __, profile = run_ec2_network_profile(sim, instance)
        profiles[instance] = profile
    profiles["lambda"] = lambda_network_profile(CloudSim(seed=6))
    return profiles


def test_fig6_bursting_comparison(benchmark):
    profiles = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for name, profile in profiles.items():
        rows.append([
            name,
            f"{profile.bucket_bytes / units.GiB:.2f}",
            f"{profile.burst_rate / units.GiB:.2f}",
            f"{profile.baseline_rate / units.GiB:.3f}",
            f"{profile.burst_duration:.1f}",
        ])
    table = format_table(
        ["System", "Bucket [GiB]", "Burst [GiB/s]", "Baseline [GiB/s]",
         "Burst duration [s]"], rows,
        title="Figure 6: network bursting, EC2 C6g vs Lambda")
    save_artifact("fig6_bursting_comparison", table)

    # EC2 bucket size and burst duration grow with instance size.
    assert profiles["c6g.medium"].bucket_bytes \
        < profiles["c6g.xlarge"].bucket_bytes \
        < profiles["c6g.4xlarge"].bucket_bytes
    assert profiles["c6g.medium"].burst_duration \
        < profiles["c6g.4xlarge"].burst_duration
    # Burstable sizes hit ~10 Gbps; 16xlarge runs at line rate (25 Gbps).
    assert profiles["c6g.xlarge"].burst_rate == pytest.approx(
        10 * units.Gbps, rel=0.1)
    assert profiles["c6g.16xlarge"].baseline_rate == pytest.approx(
        25 * units.Gbps, rel=0.1)
    # EC2 baselines grow with size; Lambda's is constant and tiny.
    assert profiles["c6g.medium"].baseline_rate \
        < profiles["c6g.xlarge"].baseline_rate \
        < profiles["c6g.16xlarge"].baseline_rate
    # Lambda: small bucket (~0.3 GiB), yet a significant burst rate.
    lam = profiles["lambda"]
    assert lam.bucket_bytes == pytest.approx(0.3 * units.GiB, rel=0.3)
    assert lam.bucket_bytes < profiles["c6g.medium"].bucket_bytes / 100
    assert lam.burst_rate > 1.0 * units.GiB
    # EC2 burst durations are minutes; Lambda's is sub-second.
    assert profiles["c6g.xlarge"].burst_duration > 120
    assert lam.burst_duration < 1.0
