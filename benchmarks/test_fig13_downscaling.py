"""Figure 13: S3 scaling down from five to one prefix partitions.

After scaling a bucket to five partitions, probe it with short bursts at
hourly and daily intervals. Paper shape: all five partitions survive a
full day of inactivity; two partitions remain for about three more days;
IOPS returns to single-partition level after ~4.5-5 days overall.
"""

import pytest

from conftest import save_artifact
from repro import units
from repro.core import CloudSim, ascii_timeseries
from repro.core.micro import run_s3_downscaling


def run_experiment():
    hourly = run_s3_downscaling(CloudSim(seed=13),
                                probe_interval_s=units.HOUR)
    daily = run_s3_downscaling(CloudSim(seed=13),
                               probe_interval_s=units.DAY)
    return hourly, daily


def level(points, day: float) -> float:
    """IOPS measured by the probe closest to ``day``."""
    return min(points, key=lambda p: abs(p[0] - day * units.DAY))[1]


def test_fig13_downscaling(benchmark):
    hourly, daily = benchmark.pedantic(run_experiment, rounds=1,
                                       iterations=1)
    chart = ascii_timeseries(
        [(t / units.DAY, iops) for t, iops in hourly],
        title="Figure 13 (hourly probes): max IOPS vs days idle")
    save_artifact("fig13_downscaling", chart)

    for points in (hourly, daily):
        # A full day of inactivity: all five partitions still serve.
        assert level(points, 0.0) == pytest.approx(27_500, rel=0.05)
        assert level(points, 1.0) == pytest.approx(27_500, rel=0.05)
        # Around day 2-4: two partitions remain.
        assert level(points, 3.0) == pytest.approx(11_000, rel=0.05)
        # After ~5 days: back to a single partition.
        assert level(points, 5.5) == pytest.approx(5_500, rel=0.05)
    # The downscaling schedule is monotone: IOPS never recovers while
    # idle (probes are too light to keep the bucket warm).
    for points in (hourly, daily):
        values = [iops for _, iops in points]
        assert all(b <= a + 1e-6 for a, b in zip(values, values[1:]))
    # Hourly and daily probing see the same process (the probes do not
    # influence the outcome materially).
    assert level(hourly, 5.5) == level(daily, 5.5)
