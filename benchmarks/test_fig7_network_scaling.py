"""Figure 7: aggregated function network throughput, with/without VPC.

32 to 256 concurrent network I/O functions measure against an iPerf
server cluster. The paper's findings: burst and baseline bandwidth scale
horizontally with the function count — except inside a customer-owned
VPC, where aggregate throughput hits a hard ~20 GiB/s ceiling.
"""

import pytest

from conftest import save_artifact
from repro import units
from repro.core import CloudSim, format_table
from repro.core.micro import run_network_scaling

COUNTS = [32, 64, 128, 256]


def run_experiment():
    peaks = {}
    for count in COUNTS:
        sim = CloudSim(seed=7)
        series = run_network_scaling(sim, function_count=count,
                                     duration=1.0)
        peaks[("no-vpc", count)] = series.peak_rate()
    for count in (128, 256):
        sim = CloudSim(seed=7, use_vpc=True)
        series = run_network_scaling(sim, function_count=count,
                                     duration=1.0)
        peaks[("vpc", count)] = series.peak_rate()
    return peaks


def test_fig7_network_scaling(benchmark):
    peaks = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[setting, count, f"{rate / units.GiB:.1f}"]
            for (setting, count), rate in peaks.items()]
    table = format_table(["Setting", "Functions", "Peak [GiB/s]"], rows,
                         title="Figure 7: aggregate network throughput")
    save_artifact("fig7_network_scaling", table)

    # Outside a VPC, burst bandwidth scales horizontally: peak tracks
    # count x 1.2 GiB/s.
    for count in COUNTS:
        expected = count * 1.2 * units.GiB
        assert peaks[("no-vpc", count)] == pytest.approx(expected, rel=0.15)
    # Inside a customer-owned VPC, a hard ~20 GiB/s limit appears.
    for count in (128, 256):
        assert peaks[("vpc", count)] <= 20 * units.GiB * 1.02
        assert peaks[("vpc", count)] >= 18 * units.GiB
    # The cap makes VPC throughput flat while non-VPC keeps scaling.
    assert peaks[("no-vpc", 256)] > 10 * peaks[("vpc", 256)]
