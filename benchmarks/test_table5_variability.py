"""Table 5: performance variability between and within regions.

The query suite runs repeatedly in us-east-1, eu-west-1, and
ap-northeast-1 under two protocols: *cold* (15-minute gaps, sandboxes
reclaimed, conditions redrawn — the paper measures over a workday) and
*warm* (back-to-back, three hours). Metrics: median-to-US-median ratio
(MR) and coefficient of variation (CoV).

Paper shape: EU runs ~1.5x slower than the US in both protocols (slow
cluster startup); AP is on par with the US (~0.95); cold-usage
variability is highest in the US (CoV ~23%) and drops sharply with
frequent usage (~5%), while the EU's warm CoV exceeds its cold CoV.
"""

from conftest import save_artifact
from repro.core import format_table
from repro.workloads import (
    SuiteSetup,
    run_variability_experiment,
    table5_metrics,
)

RUNS = 10


def run_experiment():
    setup = SuiteSetup(lineitem_partitions=4, orders_partitions=2,
                       clickstreams_partitions=2, rows_per_partition=96)
    cold = table5_metrics(run_variability_experiment(
        "cold", runs=RUNS, setup=setup, seed=5))
    warm = table5_metrics(run_variability_experiment(
        "warm", runs=RUNS, setup=setup, seed=6))
    return cold, warm


def test_table5_variability(benchmark):
    cold, warm = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    regions = ["us-east-1", "eu-west-1", "ap-northeast-1"]
    rows = []
    for label, metrics in (("Cold MR", cold), ("Cold CoV [%]", cold),
                           ("Warm MR", warm), ("Warm CoV [%]", warm)):
        key = "MR" if "MR" in label else "CoV_percent"
        rows.append([label] + [f"{metrics[r][key]:.2f}" for r in regions])
    table = format_table(["Measure", "US", "EU", "AP"], rows,
                         title=f"Table 5: variability over {RUNS} runs")
    save_artifact("table5_variability", table)

    # MR: EU ~1.5x the US; AP on par (paper: 1.48/1.52 and 0.95/0.96).
    for metrics in (cold, warm):
        assert metrics["us-east-1"]["MR"] == 1.0
        assert 1.25 <= metrics["eu-west-1"]["MR"] <= 1.8
        assert 0.85 <= metrics["ap-northeast-1"]["MR"] <= 1.1
    # Cold-usage variability is highest in the US (paper: 22.65%) and
    # exceeds the EU's by a wide margin (paper: 4.76%).
    assert cold["us-east-1"]["CoV_percent"] > \
        2 * cold["eu-west-1"]["CoV_percent"]
    # More frequent usage brings robustness: the US warm CoV is far
    # below its cold CoV (paper: 5.23 vs 22.65).
    assert warm["us-east-1"]["CoV_percent"] < \
        0.6 * cold["us-east-1"]["CoV_percent"]
    # In the EU the picture inverts: warm variability exceeds cold
    # (paper: 8.96 vs 4.76).
    assert warm["eu-west-1"]["CoV_percent"] > \
        cold["eu-west-1"]["CoV_percent"]
