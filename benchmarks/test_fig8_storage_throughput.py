"""Figure 8: aggregated read/write throughput of serverless storage.

1 to 128 client VMs (32 I/O threads each) read/write large objects:
64 MiB against S3 variants, 400 KiB items against DynamoDB, 4 MiB files
against EFS. Paper shape: both S3 variants scale linearly to the
~250 GiB/s of generated load; DynamoDB saturates at ~380 MiB/s reads and
~30 MiB/s writes from a single client; EFS converges to its 20 / 5 GiB/s
per-filesystem quotas.
"""

import pytest

from conftest import save_artifact
from repro import units
from repro.core import CloudSim, format_table
from repro.core.micro import run_storage_throughput
from repro.pricing.calculator import cost_per_gib_per_s_read

CLIENTS = [1, 4, 16, 64, 128]
OBJECT_SIZES = {
    "s3-standard": 64 * units.MiB,
    "s3-express": 64 * units.MiB,
    "dynamodb": 400 * units.KiB,
    "efs-1": 4 * units.MiB,
}


def run_experiment():
    cells = {}
    for service, object_bytes in OBJECT_SIZES.items():
        for direction in ("read", "write"):
            for clients in CLIENTS:
                sim = CloudSim(seed=8)
                cells[(service, direction, clients)] = run_storage_throughput(
                    sim, service, clients=clients,
                    object_bytes=object_bytes, direction=direction)
    return cells


def test_fig8_storage_throughput(benchmark):
    cells = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for service in OBJECT_SIZES:
        for direction in ("read", "write"):
            series = [f"{cells[(service, direction, c)].achieved_gib_s:.2f}"
                      for c in CLIENTS]
            rows.append([service, direction, *series])
    table = format_table(
        ["Service", "Op", *[f"{c} VMs" for c in CLIENTS]], rows,
        title="Figure 8: aggregate storage throughput [GiB/s]")
    save_artifact("fig8_storage_throughput", table)

    # Both S3 variants scale linearly up to the generated load
    # (~250 GiB/s at 128 clients).
    for service in ("s3-standard", "s3-express"):
        reads = [cells[(service, "read", c)].achieved for c in CLIENTS]
        assert reads[-1] == pytest.approx(128 * reads[0], rel=0.02)
        assert 150 * units.GiB <= reads[-1] <= 350 * units.GiB
    # Standard S3 writes lag Express writes (less consistent IOPS).
    assert cells[("s3-standard", "write", 128)].achieved < \
        cells[("s3-express", "write", 128)].achieved
    # DynamoDB: saturated by a single client VM.
    ddb_1 = cells[("dynamodb", "read", 1)].achieved
    ddb_128 = cells[("dynamodb", "read", 128)].achieved
    assert ddb_1 == pytest.approx(380 * units.MiB, rel=0.05)
    assert ddb_128 == pytest.approx(ddb_1, rel=0.05)
    assert cells[("dynamodb", "write", 128)].achieved == pytest.approx(
        30 * units.MiB, rel=0.1)
    # EFS converges to the 20 / 5 GiB/s filesystem quotas.
    assert cells[("efs-1", "read", 64)].achieved == pytest.approx(
        20 * units.GiB, rel=0.05)
    assert cells[("efs-1", "write", 64)].achieved == pytest.approx(
        5 * units.GiB, rel=0.05)
    # Price per GiB/s read: S3 is by far the most cost-efficient
    # (0.00064 vs 6.55 vs 3.00 cents, Section 4.3.1).
    s3 = cost_per_gib_per_s_read("s3-standard", 64 * units.MiB)
    ddb = cost_per_gib_per_s_read("dynamodb", 400 * units.KiB)
    efs = cost_per_gib_per_s_read("efs", 4 * units.MiB)
    assert s3 == pytest.approx(0.00064, rel=0.05)
    assert ddb == pytest.approx(6.55, rel=0.05)
    assert efs == pytest.approx(3.00, rel=0.05)
