"""Table 4: datasets used in the experiments (SF1000).

Verifies the dataset inventory — logical sizes, partition counts, and
mean partition sizes — and that the generators materialize partitions in
the columnar format.
"""

import pytest

from conftest import save_artifact
from repro import units
from repro.core import format_table
from repro.datagen import TPCH_SF1000
from repro.formats.columnar import read_metadata, write_file

PAPER_ROWS = {
    # table: (size GiB, partitions, partition MiB)
    "lineitem": (177.4, 996, 182.4),
    "orders": (44.9, 249, 176.1),
    "clickstreams": (94.9, 1_000, 92.7),
    "item": (0.074, 1, 75.8),  # the paper rounds 75.8 MiB to 0.08 GiB
}


def run_experiment():
    inventory = {}
    for name, spec in TPCH_SF1000.items():
        sample = spec.generator(128 if name != "item" else 1_000, 42, 0,
                                spec.physical_scale_factor)
        encoded = write_file(sample)
        metadata = read_metadata(encoded)
        inventory[name] = {
            "size_gib": spec.total_logical_bytes / units.GiB,
            "partitions": spec.partition_count,
            "partition_mib": spec.partition_logical_bytes / units.MiB,
            "columns": len(metadata.schema),
            "sample_rows": metadata.num_rows,
        }
    return inventory


def test_table4_datasets(benchmark):
    inventory = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[name, f"{item['size_gib']:.2f}", item["partitions"],
             f"{item['partition_mib']:.1f}", item["columns"]]
            for name, item in inventory.items()]
    table = format_table(
        ["Table", "Size [GiB]", "Partitions", "Partition [MiB]", "Columns"],
        rows, title="Table 4: datasets @ SF1000")
    save_artifact("table4_datasets", table)

    for name, (size_gib, partitions, partition_mib) in PAPER_ROWS.items():
        assert inventory[name]["size_gib"] == pytest.approx(size_gib,
                                                            rel=0.01)
        assert inventory[name]["partitions"] == partitions
        assert inventory[name]["partition_mib"] == pytest.approx(
            partition_mib, rel=0.05)
        # Generators produce decodable columnar partitions.
        assert inventory[name]["sample_rows"] > 0
