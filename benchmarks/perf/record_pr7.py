"""Record the PR 7 sharded-vs-unsharded comparison into BENCH_PR7.json.

Runs the full million-tenant Zipf trace twice through the sharded
fabric (router + rebalancer; failure injection off, since the
monolithic baseline has no failure story to compare) and twice through
one monolithic gateway of equal starting capacity:

* an untimed-instrumentation pass measuring wall clock -> events/sec;
* a ``tracemalloc`` pass measuring peak traced allocation -> peak MB
  (walls of that pass are not recorded — tracing skews them).

The result lands under the ``sharded_vs_unsharded`` top-level key of
``BENCH_PR7.json`` next to the scenario slots the bench harness owns.

Usage::

    PYTHONPATH=src python benchmarks/perf/record_pr7.py
"""

from __future__ import annotations

import json
import platform
import time
import tracemalloc
from pathlib import Path

from repro.shard import ReplayConfig, run_replay, run_unsharded_replay

BASELINE = Path(__file__).resolve().parent / "BENCH_PR7.json"


def _measure(label: str, runner, config: ReplayConfig) -> dict:
    start = time.perf_counter()
    runner(config)
    wall_s = time.perf_counter() - start

    tracemalloc.start()
    outcome = runner(config)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    completed = outcome.report["completed"] if hasattr(outcome, "report") \
        else outcome["completed"]
    row = {
        "wall_s": round(wall_s, 6),
        "events_per_s": round(config.events / wall_s, 1),
        "peak_traced_mb": round(peak / 1e6, 2),
        "completed": completed,
    }
    print(f"{label:>9}: {row['events_per_s']:>9.1f} events/s, "
          f"peak {row['peak_traced_mb']:.1f} MB, "
          f"completed {completed}")
    return row


def main() -> None:
    # No failure injection here: the unsharded gateway has no failure
    # story to compare against, so both sides replay the pure trace.
    config = ReplayConfig()
    sharded = _measure("sharded", run_replay, config)
    unsharded = _measure("unsharded", run_unsharded_replay, config)

    baseline = json.loads(BASELINE.read_text())
    baseline["sharded_vs_unsharded"] = {
        "config": {"tenants": config.tenants, "events": config.events,
                   "window_s": config.window_s, "seed": config.seed,
                   "zipf_s": config.zipf_s},
        "python": platform.python_version(),
        "sharded": sharded,
        "unsharded": unsharded,
        "note": "equal starting capacity (shards*slots slots, summed "
                "pending bound); the sharded side may then split hot "
                "shards, which is why it completes more of the trace. "
                "Walls are untraced runs, peaks are tracemalloc-traced "
                "runs.",
    }
    BASELINE.write_text(json.dumps(baseline, indent=2, sort_keys=True)
                        + "\n")
    print(f"recorded sharded_vs_unsharded -> {BASELINE}")


if __name__ == "__main__":
    main()
