"""Record BENCH_PR10.json: the shard-parallel kernel vs the sequential
replay.

Starts from the committed ``BENCH_PR7.json`` (all prior scenario slots
are carried forward unchanged) and adds the
``sharded-serving-parallel`` scenario, measured in both modes:

* ``before`` — the sequential kernel (``run_replay``), i.e. the PR 7
  state of the same workload;
* ``after`` — the shard-parallel kernel (``run_parallel_replay`` with
  ``workers=0``: the partitioned in-process engine, the honest
  configuration on a single-core host).

The deterministic check dicts of the two slots — replay digest
included — must be byte-identical or this script refuses to record:
the speedup is only meaningful over the same simulated outcome.

Usage::

    PYTHONPATH=src python benchmarks/perf/record_pr10.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.harness import measure, normalized_wall, record, \
    save_baseline
from repro.bench.scenarios import SCENARIOS

HERE = Path(__file__).resolve().parent
PR7 = HERE / "BENCH_PR7.json"
PR10 = HERE / "BENCH_PR10.json"


def main() -> None:
    baseline = json.loads(PR7.read_text())
    sequential = SCENARIOS["sharded-serving"]
    parallel = SCENARIOS["sharded-serving-parallel"]
    for smoke in (False, True):
        mode = "smoke" if smoke else "full"
        before = measure(sequential, smoke=smoke)
        after = measure(parallel, smoke=smoke)
        if before["checks"] != after["checks"]:
            raise SystemExit(
                f"{mode}: parallel checks diverge from sequential — "
                f"refusing to record a speedup over a different "
                f"outcome:\n  sequential: {before['checks']}\n"
                f"  parallel:   {after['checks']}")
        record(baseline, {"sharded-serving-parallel": before}, "before",
               smoke=smoke)
        record(baseline, {"sharded-serving-parallel": after}, "after",
               smoke=smoke)
        speedup = normalized_wall(before) / normalized_wall(after)
        print(f"{mode}: sequential {before['wall_s']:.3f}s, parallel "
              f"{after['wall_s']:.3f}s -> {speedup:.2f}x at digest "
              f"{after['checks']['digest']}")
    save_baseline(baseline, PR10)
    print(f"recorded -> {PR10}")


if __name__ == "__main__":
    main()
