"""Ablation: shuffle write combining (Section 5.3.2).

The engine writes each producer's output as one combined object with a
partition index; the naive alternative writes one object per (producer,
partition). With S3 pricing writes at 12.5x the read price, uncombined
shuffles multiply the dominant cost term. This ablation executes both
layouts and compares request counts and storage cost.
"""

from conftest import save_artifact
from repro import units
from repro.core import format_table
from repro.engine.io import IoStack
from repro.engine.shuffle import ShuffleReader, ShuffleWriter
from repro.formats.batch import RecordBatch
from repro.formats.schema import DataType, Field, Schema
from repro.network import Fabric
from repro.pricing import STORAGE_PRICES
from repro.sim import Environment, RandomStreams
from repro.storage import S3Standard

PRODUCERS = 16
CONSUMERS = 32
ROWS_PER_PRODUCER = 512


def make_batch(seed: int) -> RecordBatch:
    import numpy as np
    rng = np.random.default_rng(seed)
    return RecordBatch(
        Schema([Field("key", DataType.INT64), Field("v", DataType.FLOAT64)]),
        {"key": rng.integers(0, 10_000, ROWS_PER_PRODUCER).astype("int64"),
         "v": rng.random(ROWS_PER_PRODUCER)},
        logical_bytes=64 * units.MiB)


def run_shuffle(combine: bool):
    env = Environment()
    fabric = Fabric(env)
    rng = RandomStreams(seed=20)
    s3 = S3Standard(env, fabric, rng)
    io = IoStack(env, s3, fabric.endpoint("worker"))

    def scenario(env):
        started = env.now
        for fragment in range(PRODUCERS):
            writer = ShuffleWriter(io, "abl", "pipe", fragment,
                                   partition_key="key",
                                   partitions=CONSUMERS, combine=combine)
            yield from writer.write(make_batch(fragment))
        write_done = env.now
        rows = 0
        for partition in range(CONSUMERS):
            reader = ShuffleReader(io, "abl", "pipe",
                                   producer_fragments=PRODUCERS,
                                   partition=partition)
            batch = yield from reader.read()
            rows += batch.num_rows
        return {"rows": rows, "write_time": write_done - started,
                "read_time": env.now - write_done}

    proc = env.process(scenario(env))
    env.run(until=proc)
    outcome = proc.value
    pricing = STORAGE_PRICES["s3-standard"]
    outcome.update({
        "writes": io.stats.write_requests,
        "reads": io.stats.read_requests,
        "cost_cents": 100 * (
            pricing.write_cost(io.stats.write_requests)
            + pricing.read_cost(io.stats.read_requests)),
    })
    return outcome


def run_experiment():
    return {"combined": run_shuffle(True),
            "uncombined": run_shuffle(False)}


def test_ablation_shuffle_combining(benchmark):
    outcome = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[label, o["writes"], o["reads"], f"{o['cost_cents']:.3f}"]
            for label, o in outcome.items()]
    table = format_table(
        ["Layout", "Write requests", "Read requests", "Request cost [c]"],
        rows, title=(f"Ablation: shuffle write combining "
                     f"({PRODUCERS} producers x {CONSUMERS} consumers)"))
    save_artifact("ablation_shuffle_combining", table)

    combined = outcome["combined"]
    uncombined = outcome["uncombined"]
    # Both layouts move the same rows.
    assert combined["rows"] == uncombined["rows"] \
        == PRODUCERS * ROWS_PER_PRODUCER
    # Combining: one write per producer. Naive: one per (producer,
    # partition) plus the index object.
    assert combined["writes"] == PRODUCERS
    assert uncombined["writes"] == PRODUCERS * (CONSUMERS + 1)
    # Reads are producers x consumers either way.
    assert combined["reads"] == uncombined["reads"] \
        == PRODUCERS * CONSUMERS
    # S3 writes cost 12.5x reads, so the naive layout multiplies the
    # request bill severalfold.
    assert uncombined["cost_cents"] > 4 * combined["cost_cents"]
