"""Ablation: read chunk size (Section 3.2's chunked storage requests).

The engine splits large reads into chunks "to process them in parallel".
Chunk size trades request count (and cost — S3 charges per request)
against intra-object parallelism. The engine's 64 MiB default keeps a
projected Q6 partition read at a single request — which is what lands
Table 6's request count (1,401 for Q6 at SF1000) — while small chunks
multiply the bill for no throughput gain (the worker's token bucket, not
per-request bandwidth, is the bottleneck).
"""


from conftest import save_artifact
from repro import units
from repro.core import CloudSim, format_table
from repro.engine.io import IoStack
from repro.pricing import STORAGE_PRICES

#: One Q6-projected lineitem partition (182.4 MiB x 28% columns).
READ_BYTES = 51.1 * units.MiB
PARTITIONS = 5  # one worker's burst-aware assignment

CHUNK_SIZES = [4 * units.MiB, 16 * units.MiB, 64 * units.MiB]


def read_worker_input(chunk_bytes: float):
    sim = CloudSim(seed=70)
    s3 = sim.s3()
    from repro.network.shaper import lambda_shaper
    endpoint = sim.fabric.endpoint("worker", ingress=lambda_shaper("in"))
    for index in range(PARTITIONS):
        sim.run(s3.put(f"part-{index}", b"x", size=READ_BYTES))
    io = IoStack(sim.env, s3, endpoint, chunk_bytes=chunk_bytes)

    def scan(env):
        for index in range(PARTITIONS):
            yield from io.read_object(f"part-{index}",
                                      logical_bytes=READ_BYTES)
        return env.now

    elapsed = sim.run(sim.env.process(scan(sim.env)))
    return {"chunk": chunk_bytes, "requests": io.stats.requests,
            "elapsed": elapsed,
            "cost_cents": 100 * STORAGE_PRICES["s3-standard"].read_cost(
                io.stats.requests)}


def run_experiment():
    return {chunk: read_worker_input(chunk) for chunk in CHUNK_SIZES}


def test_ablation_chunk_size(benchmark):
    outcomes = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[f"{chunk / units.MiB:.0f} MiB", o["requests"],
             f"{o['elapsed']:.3f}", f"{o['cost_cents']:.5f}"]
            for chunk, o in outcomes.items()]
    table = format_table(
        ["Chunk size", "Requests", "Scan time [s]", "Request cost [c]"],
        rows, title=(f"Ablation: chunk size for {PARTITIONS} x "
                     f"{READ_BYTES / units.MiB:.0f} MiB partition reads"))
    save_artifact("ablation_chunk_size", table)

    small = outcomes[4 * units.MiB]
    default = outcomes[64 * units.MiB]
    # 64 MiB chunks: one request per projected partition (Table 6's
    # request economy).
    assert default["requests"] == PARTITIONS
    # 4 MiB chunks: ~13x the requests and bill.
    assert small["requests"] >= 12 * default["requests"]
    assert small["cost_cents"] >= 12 * default["cost_cents"]
    # Throughput is bucket-bound, so the scan time barely moves
    # (within the extra per-request latencies).
    assert small["elapsed"] <= 2.0 * default["elapsed"]
    assert default["elapsed"] <= 1.2 * small["elapsed"]
