"""Table 1: configuration and pricing of AWS compute services.

Regenerates the Lambda (ARM) vs EC2 (C6g) comparison from the price
catalog: memory/compute capacity ranges and unit prices.
"""

import pytest

from conftest import save_artifact
from repro import units
from repro.core import format_table
from repro.pricing import LAMBDA_PRICING, EC2_INSTANCES


def build_table1():
    c6g = [inst for name, inst in EC2_INSTANCES.items()
           if name.startswith("c6g.")]
    ec2_gib_hours = [inst.per_gib_hour for inst in c6g]
    ec2_reserved_gib_hours = [inst.reserved_hourly_usd
                              / (inst.memory_bytes / units.GiB)
                              for inst in c6g]
    lambda_gib_hour = LAMBDA_PRICING.per_gib_second * 3600
    rows = [
        ["Memory capacity [GiB]", "0.125 - 10",
         f"{min(i.memory_bytes for i in c6g) / units.GiB:.0f} - "
         f"{max(i.memory_bytes for i in c6g) / units.GiB:.0f}"],
        ["Memory price [c/GiB-h]",
         f"{lambda_gib_hour * 0.8 * 100:.2f} - {lambda_gib_hour * 100:.2f}",
         f"{min(ec2_reserved_gib_hours) * 100:.2f} - "
         f"{max(ec2_gib_hours) * 100:.2f}"],
        ["Compute capacity [vCPU]",
         f"{0.125 * units.GiB / LAMBDA_PRICING.memory_per_vcpu_bytes:.2f}"
         f" - {10 * units.GiB / LAMBDA_PRICING.memory_per_vcpu_bytes:.2f}",
         f"{min(i.vcpus for i in c6g)} - {max(i.vcpus for i in c6g)}"],
        ["Compute price [c/vCPU-h]",
         f"{lambda_gib_hour * 0.8 * 1.769 * 100:.2f} - "
         f"{lambda_gib_hour * 1.769 * 100:.2f}",
         f"{min(i.reserved_hourly_usd / i.vcpus for i in c6g) * 100:.2f} - "
         f"{max(i.per_vcpu_hour for i in c6g) * 100:.2f}"],
        ["Network bandwidth [Gbps]", "0.63 (constant)",
         f"{min(i.network_baseline for i in c6g) / units.Gbps:.3g} - "
         f"{max(i.network_baseline for i in c6g) / units.Gbps:.3g}"],
    ]
    return format_table(["Resource", "Lambda (ARM)", "EC2 (C6g)"], rows,
                        title="Table 1: compute configuration and pricing")


def test_table1_compute_pricing(benchmark):
    table = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    save_artifact("table1_compute_pricing", table)
    # Shape assertions from the paper's Table 1 commentary:
    lambda_gib_hour = LAMBDA_PRICING.per_gib_second * 3600
    xlarge = EC2_INSTANCES["c6g.xlarge"]
    # Lambda memory unit price 2.5 - 5.9x EC2's.
    ratio = lambda_gib_hour / xlarge.per_gib_hour
    assert 2.5 <= ratio <= 5.9
    # Lambda memory prices around 3.84 - 4.80 c/GiB-h.
    assert lambda_gib_hour * 100 == pytest.approx(4.80, rel=0.01)
    # Functions are an order of magnitude smaller than VMs.
    assert 10 * units.GiB < max(i.memory_bytes
                                for name, i in EC2_INSTANCES.items()
                                if name.startswith("c6g."))
