"""Figure 14: query worker throughput within and beyond the burst budget.

TPC-H Q6 runs with workers assigned an increasing number of lineitem
partitions. While a worker's effective scan volume (partitions x
projected column bytes) stays inside the ~300 MiB network burst budget,
throughput tracks the 1.2 GiB/s burst; beyond it, the worker falls into
the 75 MiB/s baseline. Paper: queries fully exploiting the burst are up
to 53% faster.
"""

import numpy as np

from conftest import save_artifact
from repro import units
from repro.core import CloudSim, format_table
from repro.datagen import load_table, scaled_spec
from repro.engine import SkyriseEngine
from repro.engine.queries import tpch_q6
from repro.engine.tracing import trace_from_records

PARTITION_COUNT = 24
PARTITIONS_PER_WORKER = [1, 2, 4, 6, 8, 12]

#: Q6 reads 4 of lineitem's 11 columns; byte-width fraction of the file.
Q6_READ_FRACTION = 28.0 / 100.0
PARTITION_BYTES = 182.4 * units.MiB

#: Section 4.2 network model constants.
BURST_BUDGET = 300 * units.MiB
BURST_RATE = 1.2 * units.GiB
BASELINE_RATE = 75 * units.MiB


def expected_time(nbytes: float) -> float:
    """Scan time under the token-bucket network model."""
    if nbytes <= BURST_BUDGET:
        return nbytes / BURST_RATE
    return BURST_BUDGET / BURST_RATE + (nbytes - BURST_BUDGET) / BASELINE_RATE


def run_experiment():
    measurements = {}
    for k in PARTITIONS_PER_WORKER:
        # A fresh environment per setting: workers start with their full
        # network budgets, as in the paper's controlled runs.
        sim = CloudSim(seed=14)
        s3 = sim.s3()
        spec = scaled_spec("lineitem", PARTITION_COUNT,
                           rows_per_partition=64)
        metadata = sim.run(load_table(sim.env, s3, spec))
        engine = SkyriseEngine(sim.env, sim.platform,
                               storage={"s3-standard": s3})
        engine.register_table(metadata)
        engine.deploy()
        fragments = PARTITION_COUNT // k
        result = sim.run(engine.run_query(tpch_q6(scan_fragments=fragments)))
        # Per-worker execution time from the trace (startup/dispatch
        # overheads excluded): the figure compares the engine's layers,
        # not cluster orchestration.
        trace = trace_from_records("tpch-q6", sim.platform.records)
        worker_s = float(np.median(
            [span.duration for span in trace.stage("scan")]))
        per_worker_bytes = k * PARTITION_BYTES * Q6_READ_FRACTION
        measurements[k] = {
            "bytes": per_worker_bytes,
            "scan_s": worker_s,
            "query_s": result.runtime,
            "throughput": per_worker_bytes / worker_s,
            "expected": per_worker_bytes / expected_time(per_worker_bytes),
        }
    return measurements


def test_fig14_q6_burst(benchmark):
    measurements = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[k,
             f"{m['bytes'] / units.MiB:.0f}",
             f"{m['expected'] / units.GiB:.2f}",
             f"{m['throughput'] / units.GiB:.2f}",
             f"{m['query_s']:.2f}"]
            for k, m in measurements.items()]
    table = format_table(
        ["Parts/worker", "Input [MiB]", "Model [GiB/s]", "Measured [GiB/s]",
         "Query [s]"], rows,
        title="Figure 14: Q6 worker throughput vs input size")
    save_artifact("fig14_q6_burst", table)

    within = [m for k, m in measurements.items()
              if m["bytes"] <= BURST_BUDGET]
    beyond = [m for k, m in measurements.items()
              if m["bytes"] > 1.2 * BURST_BUDGET]
    assert within and beyond
    # Within the budget, throughput is CPU-bound well below the network
    # model (the staircase of Figure 14: request handling, decompression,
    # and query logic each eat a layer).
    best_within = max(m["throughput"] for m in within)
    assert 0.06 * units.GiB <= best_within <= 1.2 * units.GiB
    for m in within:
        assert m["throughput"] <= m["expected"] * 1.05
    # Beyond the budget, throughput degrades further: the 75 MiB/s
    # baseline network phase now dominates the scan.
    worst_beyond = min(m["throughput"] for m in beyond)
    assert worst_beyond < 0.75 * best_within
    # Per-byte runtime: burst-aware sizing is substantially faster
    # (paper: up to 53%).
    within_per_byte = min(m["scan_s"] / m["bytes"] for m in within)
    beyond_per_byte = max(m["scan_s"] / m["bytes"] for m in beyond)
    speedup = 1.0 - within_per_byte / beyond_per_byte
    assert speedup >= 0.30
