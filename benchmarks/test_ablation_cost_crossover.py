"""Ablation: dynamic validation of the Section 5.2 break-even formula.

The paper derives the FaaS/IaaS break-even analytically from one query's
cost and the peak cluster's hourly rate. Here a Poisson query stream
actually runs against both deployments at increasing arrival rates: the
measured cost curves must cross near the analytic prediction — pay-per-
query wins below it, the provisioned cluster above it.
"""

import pytest

from conftest import save_artifact
from repro.core import CloudSim, format_table
from repro.engine.queries import tpch_q6
from repro.pricing import ec2_instance, faas_break_even_queries_per_hour
from repro.workloads import SuiteSetup
from repro.workloads.arrivals import cost_crossover, run_arrival_workload
from repro.workloads.suite import setup_engine

VM_COUNT = 4
WINDOW_S = 1_800.0
PLAN_FRAGMENTS = 4


def analytic_break_even() -> float:
    """The Section 5.2 formula applied to one measured warm query."""
    sim = CloudSim(seed=50)
    setup = SuiteSetup(queries=("tpch-q6",), lineitem_partitions=4,
                       rows_per_partition=96)
    engine = setup_engine(sim, setup)
    plan = tpch_q6(scan_fragments=PLAN_FRAGMENTS)
    sim.run(engine.run_query(plan))  # warm
    result = sim.run(engine.run_query(plan))
    vm = ec2_instance("c6g.xlarge")
    return faas_break_even_queries_per_hour(
        faas_cost_per_query=result.compute_cost_cents / 100.0,
        vm_hourly_usd=vm.hourly_usd, peak_vms=VM_COUNT)


def run_experiment():
    prediction = analytic_break_even()
    rates = [prediction * factor for factor in (0.25, 0.5, 1.5, 3.0)]
    data = cost_crossover(tpch_q6(scan_fragments=PLAN_FRAGMENTS), rates,
                          window_s=WINDOW_S, vm_count=VM_COUNT)
    return prediction, rates, data


def test_ablation_cost_crossover(benchmark):
    prediction, rates, data = benchmark.pedantic(run_experiment, rounds=1,
                                                 iterations=1)
    rows = []
    for faas, iaas in zip(data["outcomes"]["faas"],
                          data["outcomes"]["iaas"]):
        rows.append([f"{faas.queries_per_hour:,.0f}",
                     faas.queries_run,
                     f"{faas.compute_cost_usd:.4f}",
                     f"{iaas.compute_cost_usd:.4f}",
                     "FaaS" if faas.compute_cost_usd
                     < iaas.compute_cost_usd else "IaaS"])
    table = format_table(
        ["Rate [Q/h]", "Queries", "FaaS cost [$]", "IaaS cost [$]",
         "Cheaper"], rows,
        title=(f"Dynamic cost crossover (analytic break-even "
               f"{prediction:,.0f} Q/h)"))
    save_artifact("ablation_cost_crossover", table)

    outcomes = data["outcomes"]
    # Below the analytic break-even, FaaS is cheaper; above, IaaS.
    for faas, iaas in zip(outcomes["faas"], outcomes["iaas"]):
        if faas.queries_per_hour <= 0.5 * prediction:
            assert faas.compute_cost_usd < iaas.compute_cost_usd
        if faas.queries_per_hour >= 1.5 * prediction:
            assert iaas.compute_cost_usd < faas.compute_cost_usd
    # The measured crossover sits between the bracketing rates.
    assert rates[1] < data["crossover_rate"] <= rates[2]
    # IaaS cost is load-independent (peak provisioning); FaaS scales
    # with the number of queries served.
    # (within the slack of queries overrunning the billing window).
    iaas_costs = [o.compute_cost_usd for o in outcomes["iaas"]]
    assert max(iaas_costs) == pytest.approx(min(iaas_costs), rel=0.10)
    faas_costs = [o.compute_cost_usd for o in outcomes["faas"]]
    assert faas_costs == sorted(faas_costs)


def test_low_rate_workload_latency_stays_interactive(benchmark):
    """Sporadic arrivals pay coldstarts yet stay interactive — the
    serverless sweet spot of infrequent workloads (Section 6)."""

    def run():
        return run_arrival_workload(
            "faas", tpch_q6(scan_fragments=PLAN_FRAGMENTS),
            queries_per_hour=30.0, window_s=WINDOW_S, vm_count=VM_COUNT)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.queries_run > 0
    assert outcome.median_runtime < 5.0
    assert outcome.cost_per_query < 0.01  # well under a cent per query
