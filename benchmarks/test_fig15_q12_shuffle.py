"""Figure 15: IOPS-aware shuffling for TPC-H Q12.

Q12's join shuffle issues producers x consumers read requests in a burst
— far beyond a fresh S3 bucket's single-partition request rate. Three
storage setups for the intermediates: a brand-new S3 Standard bucket
("cold"), a bucket pre-scaled by 15 minutes of prior query load
("warm"), and S3 Express. Paper shape: the warmed and Express setups cut
the shuffle time by about half and the whole query by ~20%.
"""

from conftest import save_artifact
from repro.core import CloudSim, format_table
from repro.datagen import load_table, scaled_spec
from repro.engine import SkyriseEngine
from repro.engine.queries import tpch_q12

LINEITEM_PARTITIONS = 64
ORDERS_PARTITIONS = 16
JOIN_FRAGMENTS = 128


def run_q12(intermediate: str, prewarm: int = 0):
    sim = CloudSim(seed=15)
    s3 = sim.s3()
    storage = {"s3-standard": s3}
    if intermediate == "s3-express":
        storage["s3-express"] = sim.s3_express()
    lineitem = sim.run(load_table(
        sim.env, s3, scaled_spec("lineitem", LINEITEM_PARTITIONS,
                                 rows_per_partition=48)))
    orders = sim.run(load_table(
        sim.env, s3, scaled_spec("orders", ORDERS_PARTITIONS,
                                 rows_per_partition=192)))
    if prewarm:
        s3.prewarm(prewarm)
    engine = SkyriseEngine(sim.env, sim.platform, storage=storage,
                           intermediate_service=intermediate)
    engine.register_table(lineitem)
    engine.register_table(orders)
    engine.deploy()
    plan = tpch_q12(lineitem_fragments=LINEITEM_PARTITIONS,
                    orders_fragments=ORDERS_PARTITIONS,
                    join_fragments=JOIN_FRAGMENTS, barrier_on_join=True)
    return sim.run(engine.run_query(plan))


def run_experiment():
    return {
        "cold": run_q12("s3-standard", prewarm=0),
        "warm": run_q12("s3-standard", prewarm=5),
        "express": run_q12("s3-express"),
    }


def test_fig15_q12_shuffle(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[setup, f"{r.shuffle_time():.2f}", f"{r.runtime:.2f}",
             f"{r.requests:,}"]
            for setup, r in results.items()]
    table = format_table(
        ["Setup", "Shuffle [s]", "Query [s]", "Requests"], rows,
        title="Figure 15: Q12 shuffle on cold/warm/Express storage")
    save_artifact("fig15_q12_shuffle", table)

    cold = results["cold"]
    warm = results["warm"]
    express = results["express"]
    # The shuffle needs thousands of read requests (paper: ~42K at 320
    # workers; scaled down here, but still >> one partition's rate).
    assert cold.requests > 8_000
    # Results are identical across setups (only performance differs).
    for setup in ("warm", "express"):
        assert results[setup].batch.to_pydict() == cold.batch.to_pydict()
    # Warming or Express cuts the shuffle time by roughly half
    # (paper: ~50%).
    assert warm.shuffle_time() <= 0.65 * cold.shuffle_time()
    assert express.shuffle_time() <= 0.65 * cold.shuffle_time()
    # The whole query improves noticeably (paper: ~20%; our scaled Q12
    # is more scan/CPU-dominated, so the relative gain is smaller but
    # the absolute shuffle saving carries through).
    assert warm.runtime <= cold.runtime - 0.25
    assert express.runtime <= cold.runtime - 0.25
