"""Figure 10: request latency distributions over one million requests.

One million 1 KiB reads and writes per service from 10 clients via the
synchronous APIs. Paper shape: S3 Standard has the highest median
(27 ms read / 40 ms write) and extreme tails (slowest read just over
10 s, ~374x the median, with p95 at 75 ms); S3 Express sits around 5 ms
with little variance; DynamoDB is slightly faster than Express but more
variable; EFS matches the low-latency group on reads but writes are
2-3x slower.
"""

import pytest

from conftest import save_artifact
from repro.core import CloudSim, format_table
from repro.core.micro import run_storage_latency

SERVICES = ["s3-standard", "s3-express", "dynamodb", "efs-1"]
REQUESTS = 1_000_000


def run_experiment():
    outcomes = {}
    for service in SERVICES:
        outcomes[service] = run_storage_latency(CloudSim(seed=10), service,
                                                request_count=REQUESTS)
    return outcomes


def test_fig10_storage_latency(benchmark):
    outcomes = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for service, data in outcomes.items():
        for op in ("read", "write"):
            stats = data[op]
            rows.append([service, op,
                         f"{stats['p50'] * 1e3:.1f}",
                         f"{stats['p95'] * 1e3:.1f}",
                         f"{stats['p99'] * 1e3:.1f}",
                         f"{stats['max'] * 1e3:,.0f}"])
    table = format_table(
        ["Service", "Op", "p50 [ms]", "p95 [ms]", "p99 [ms]", "max [ms]"],
        rows, title=f"Figure 10: latency over {REQUESTS:,} requests")
    save_artifact("fig10_storage_latency", table)

    s3 = outcomes["s3-standard"]
    express = outcomes["s3-express"]
    ddb = outcomes["dynamodb"]
    efs = outcomes["efs-1"]
    # S3 Standard: 27 ms median read / 40 ms write, p95 read 75 ms.
    assert s3["read"]["p50"] == pytest.approx(0.027, rel=0.05)
    assert s3["write"]["p50"] == pytest.approx(0.040, rel=0.05)
    assert s3["read"]["p95"] == pytest.approx(0.075, rel=0.10)
    # The slowest of a million reads lands in the seconds range
    # (paper: just over 10 s, 374x the median).
    assert s3["read"]["max"] > 100 * s3["read"]["p50"]
    assert s3["read"]["max"] <= 10.5
    # S3 Standard has both the highest median and tail latencies.
    for other in (express, ddb, efs):
        assert s3["read"]["p50"] > other["read"]["p50"]
        assert s3["read"]["max"] > other["read"]["max"]
    # S3 Express: ~5 ms, consistent (p95 close to the median).
    assert express["read"]["p50"] == pytest.approx(0.005, rel=0.1)
    assert express["read"]["p95"] < 1.5 * express["read"]["p50"]
    # DynamoDB: slightly lower median than Express, but more variable.
    assert ddb["read"]["p50"] < express["read"]["p50"]
    assert ddb["read"]["p95"] / ddb["read"]["p50"] > \
        express["read"]["p95"] / express["read"]["p50"]
    # EFS: reads in the low-latency group, writes 2-3x slower.
    assert efs["read"]["p50"] < 0.008
    ratio = efs["write"]["p50"] / efs["read"]["p50"]
    assert 2.0 <= ratio <= 3.5
