"""Figure 11: S3 IOPS scaling from one to five prefix partitions.

A Lambda cluster ramps from 20 to 100 instances (~300 read req/s each)
against a fresh bucket; the S3 client uses a 200 ms timeout with
exponential backoff. Paper shape: S3 scales nearly linearly from ~5.5K
to ~27.5K IOPS over ~26 minutes (five partitions); the overall error
rate stays around 10%; throughput dips appear when backoff turns
individual clients into stragglers.
"""

import pytest

from conftest import save_artifact
from repro.analysis import relative_std
from repro.core import CloudSim, ascii_timeseries
from repro.core.micro import run_s3_iops_scaling


def run_experiment():
    sim = CloudSim(seed=11)
    trace = run_s3_iops_scaling(sim)
    return sim, trace


def test_fig11_s3_iops_scaling(benchmark):
    sim, trace = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    chart = ascii_timeseries(
        list(zip([t / 60 for t in trace.times], trace.successful)),
        title="Figure 11: successful read IOPS over time (x in minutes)")
    save_artifact("fig11_s3_iops_scaling", chart)

    # Scaling 1 -> 5 partitions, ~5.5K -> ~27.5K IOPS.
    assert trace.partitions[0] == 1
    assert trace.partitions[-1] == 5
    assert trace.successful[0] <= 7_000
    assert trace.final_iops == pytest.approx(27_500, rel=0.1)
    # The overall process takes tens of minutes (paper: ~26 min).
    duration_min = trace.times[-1] / 60.0
    assert 20 <= duration_min <= 40
    # Overall error rate around 10%.
    assert 0.03 <= trace.error_rate() <= 0.25
    # While scaling out, IOPS shows high variance (paper: relative
    # standard deviation up to 29% for individual configurations) —
    # client backoff produces visible dips.
    mid = slice(len(trace.successful) // 4, 3 * len(trace.successful) // 4)
    assert relative_std(trace.successful[mid]) > 5.0
    # Tens of millions of requests were issued and counted by the hook.
    total_requests = sim.s3().stats.total()
    assert total_requests > 10_000_000
    # IOPS never exceeds what the partitions can serve.
    for iops, partitions in zip(trace.successful, trace.partitions):
        assert iops <= partitions * 5_500 + 1e-6


def test_fig11_write_iops_do_not_scale(benchmark):
    """Section 4.4.1: continuous write load cannot split partitions."""

    def run_writes():
        sim = CloudSim(seed=12)
        s3 = sim.s3()
        now = 0.0
        last = None
        while now < 2 * 3_600.0:  # two hours of continuous write load
            last = s3.offer_load(0.0, 12_000.0, elapsed=60.0, now=now)
            now += 60.0
        return s3, last

    s3, last = benchmark.pedantic(run_writes, rounds=1, iterations=1)
    assert s3.partition_count == 1
    assert last.accepted_write == pytest.approx(3_500)
