"""Benchmark-suite configuration.

Each benchmark module regenerates one table or figure of the paper:
it runs the corresponding experiment on the simulated infrastructure,
prints (and saves under ``benchmarks/results/``) a paper-style rendering,
and asserts the qualitative shape the paper reports.
"""

import sys
from pathlib import Path

SRC = Path(__file__).parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

RESULTS_DIR = Path(__file__).parent / "results"


def save_artifact(name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")
