"""Ablation: client retry/backoff policy in the S3 scaling experiment.

Figure 11's throughput dips come from the client configuration — clients
whose requests are repeatedly rejected back off exponentially and turn
into stragglers — not from S3 itself. Removing the backoff escalation
removes the dips but raises the error rate (every rejected request is
retried immediately and billed); the paper suspects exactly this client
artifact behind the drops reported by prior work [103].
"""

import pytest

from conftest import save_artifact
from repro.core import CloudSim, format_table
from repro.core.micro import run_s3_iops_scaling
from repro.core.micro.storage_io import ScalingTrace


def run_ramp(with_backoff: bool) -> ScalingTrace:
    """The Figure 11 ramp via the shared driver, with a long hold."""
    sim = CloudSim(seed=22)
    return run_s3_iops_scaling(sim, hold_final_s=600.0,
                               with_backoff=with_backoff)


def run_experiment():
    return {"backoff": run_ramp(True), "no-backoff": run_ramp(False)}


def client_dips(trace: ScalingTrace,
                quota_per_partition: float = 5_500.0) -> list[float]:
    """Client-caused throughput dips.

    At ticks where the nominal offered load meets or exceeds the current
    bucket capacity, a well-behaved swarm pins S3 at capacity; anything
    less is load the *clients* withheld (stragglers in backoff).
    """
    dips = []
    previous_partitions = None
    for ok, partitions, nominal in zip(trace.successful, trace.partitions,
                                       trace.nominal):
        changed = previous_partitions is not None \
            and partitions != previous_partitions
        previous_partitions = partitions
        if changed:
            continue  # the split instant itself is not a client dip
        capacity = partitions * quota_per_partition
        if nominal >= capacity:
            dips.append(capacity - ok)
    return dips


def test_ablation_retry_policy(benchmark):
    traces = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for label, trace in traces.items():
        dips = client_dips(trace)
        rows.append([label,
                     f"{trace.final_iops:,.0f}",
                     f"{max(dips):,.0f}",
                     f"{trace.error_rate() * 100:.1f}"])
    table = format_table(
        ["Policy", "Final IOPS", "Deepest dip [IOPS]", "Error rate [%]"],
        rows, title="Ablation: client retry/backoff during S3 scaling")
    save_artifact("ablation_retry_policy", table)

    backoff = traces["backoff"]
    plain = traces["no-backoff"]
    # Both policies reach the plateau eventually.
    assert backoff.final_iops >= 27_500 * 0.9
    assert plain.final_iops >= 27_500 * 0.9
    # Without backoff, clients always pin S3 at capacity: no dips.
    assert max(client_dips(plain)) == pytest.approx(0.0, abs=1.0)
    # With exponential backoff, straggling clients withhold significant
    # load — the dips of Figure 11 are a client artifact.
    assert max(client_dips(backoff)) > 1_500
    # But dropping backoff turns every excess request into an immediate,
    # billed rejection: a higher error rate overall.
    assert plain.error_rate() > backoff.error_rate()
