"""Figure 5: function network throughput at 20 ms intervals.

A Lambda function measures inbound throughput for five seconds, pauses
for three, and measures again. The paper's findings: an initial
~1.2 GiB/s burst sustained for ~250 ms from a ~300 MiB budget, a spiky
75 MiB/s baseline afterwards, and a shorter second burst because the
bucket refills only halfway on idle.
"""

import pytest

from conftest import save_artifact
from repro import units
from repro.core import CloudSim, ascii_timeseries
from repro.core.micro import run_function_network_burst


def run_experiment():
    sim = CloudSim(seed=11)
    inbound = run_function_network_burst(sim, duration=5.0, break_s=3.0,
                                         direction="download")
    sim_out = CloudSim(seed=11)
    outbound = run_function_network_burst(sim_out, duration=5.0,
                                          break_s=3.0, direction="upload")
    return inbound, outbound


def test_fig5_network_burst(benchmark):
    (first_in, second_in), (first_out, __) = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1)
    chart = ascii_timeseries(
        [(t, r / units.GiB) for t, r in
         zip(first_in.series.times(), first_in.series.rates())],
        title="Figure 5 (inbound, first run): GiB/s over time")
    save_artifact("fig5_network_burst", chart)

    profile = first_in.burst_profile()
    # Initial inbound burst: ~1.2 GiB/s for ~250 ms.
    assert profile.burst_rate == pytest.approx(1.2 * units.GiB, rel=0.08)
    assert 0.20 <= profile.burst_duration <= 0.30
    # Token budget ~300 MiB.
    assert profile.bucket_bytes == pytest.approx(300 * units.MiB, rel=0.25)
    # Baseline: 7.5 MiB per 100 ms interval -> 75 MiB/s.
    assert profile.baseline_rate == pytest.approx(75 * units.MiB, rel=0.15)
    # The baseline is spiky at 20 ms sampling: idle windows exist.
    tail = first_in.series.rates()[len(first_in.series.rates()) // 2:]
    assert min(tail) == 0.0

    # The burst is renewable but the second one is shorter (half refill).
    second_profile = second_in.burst_profile()
    assert second_profile.bucket_bytes < profile.bucket_bytes
    assert second_profile.bucket_bytes == pytest.approx(
        profile.bucket_bytes / 2, rel=0.35)

    # Outbound bandwidth is reduced relative to inbound.
    out_profile = first_out.burst_profile()
    assert out_profile.burst_rate < profile.burst_rate
