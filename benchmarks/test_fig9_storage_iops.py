"""Figure 9: operations per second per serverless storage system.

128 nodes x 32 threads send 1 KiB requests against fresh containers.
Paper shape: standard S3 serves roughly one prefix partition's worth
(lowest); S3 Express tops the field (~220K reads / 42K writes);
DynamoDB lands slightly above its documented on-demand quotas
(~16K / 9.6K); EFS misses its documented per-filesystem quotas by more
than an order of magnitude, and sharding over two filesystems doubles
read IOPS only.
"""

import pytest

from conftest import save_artifact
from repro.core import CloudSim, format_table
from repro.core.micro import run_storage_iops
from repro.storage.efs import EFS_READ_IOPS_QUOTA, EFS_WRITE_IOPS_QUOTA

SERVICES = ["s3-standard", "s3-express", "dynamodb", "efs-1", "efs-2"]


def run_experiment():
    outcomes = {}
    for service in SERVICES:
        outcomes[service] = run_storage_iops(CloudSim(seed=9), service)
    return outcomes


def test_fig9_storage_iops(benchmark):
    outcomes = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[name, f"{o.achieved_read:,.0f}", f"{o.achieved_write:,.0f}"]
            for name, o in outcomes.items()]
    table = format_table(["Service", "Read IOPS", "Write IOPS"], rows,
                         title="Figure 9: operations per second")
    save_artifact("fig9_storage_iops", table)

    # Standard S3: one prefix partition's request rates out of the box.
    assert outcomes["s3-standard"].achieved_read == pytest.approx(5_500)
    assert outcomes["s3-standard"].achieved_write == pytest.approx(3_500)
    # S3 Express: highest IOPS of the comparison.
    assert outcomes["s3-express"].achieved_read == pytest.approx(220_000)
    assert outcomes["s3-express"].achieved_write == pytest.approx(42_000)
    for other in ("s3-standard", "dynamodb", "efs-1", "efs-2"):
        assert outcomes["s3-express"].achieved_read > \
            outcomes[other].achieved_read
    # DynamoDB: slightly above the documented on-demand table quotas.
    assert outcomes["dynamodb"].achieved_read == pytest.approx(16_000)
    assert outcomes["dynamodb"].achieved_write == pytest.approx(9_600)
    # EFS misses its per-filesystem quotas by more than an order of
    # magnitude ...
    assert outcomes["efs-1"].achieved_read < EFS_READ_IOPS_QUOTA / 10
    assert outcomes["efs-1"].achieved_write < EFS_WRITE_IOPS_QUOTA / 10
    # ... read IOPS double with a second filesystem, writes do not.
    assert outcomes["efs-2"].achieved_read == pytest.approx(
        2 * outcomes["efs-1"].achieved_read)
    assert outcomes["efs-2"].achieved_write == pytest.approx(
        outcomes["efs-1"].achieved_write)
