"""Figure 12: required time and budget for S3 IOPS scaling.

From the measured scaling staircase (Figure 11), extract the time and
cumulative request cost at which each partition came online, fit
polynomials, and extrapolate to 20 prefix partitions (110K IOPS). Paper
shape: reaching 50K IOPS takes on the order of hours and hundreds of
dollars; 100K IOPS takes many hours and around a thousand dollars —
"a quickly growing expense while S3 only allocates resources linearly
and with delay".
"""

import pytest

from conftest import save_artifact
from repro.analysis import extrapolate_scaling
from repro.core import CloudSim, format_table
from repro.core.micro import run_s3_iops_scaling
from repro.pricing import STORAGE_PRICES


def run_experiment():
    sim = CloudSim(seed=12)
    trace = run_s3_iops_scaling(sim)
    price = STORAGE_PRICES["s3-standard"].read_request
    # Locate when each partition count was first reached and the request
    # budget burned up to that point.
    partitions_seen: dict[int, tuple[float, float]] = {}
    cumulative_requests = 0.0
    for t, ok, failed, partitions in zip(trace.times, trace.successful,
                                         trace.failed, trace.partitions):
        tick = trace.times[1] - trace.times[0]
        cumulative_requests += (ok + failed) * tick
        if partitions not in partitions_seen:
            partitions_seen[partitions] = (t, cumulative_requests * price)
    measured = sorted(partitions_seen.items())
    xs = [p for p, _ in measured]
    times = [tc[0] for _, tc in measured]
    costs = [tc[1] for _, tc in measured]
    rows = extrapolate_scaling(xs, times, costs,
                               target_partitions=range(1, 21))
    return rows


def test_fig12_scaling_cost(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["Partitions", "IOPS", "Time [h]", "Cost [$]", "Measured"],
        [[r["partitions"], f"{r['iops']:,.0f}", f"{r['time_s'] / 3600:.2f}",
          f"{r['cost_usd']:,.0f}", "yes" if r["measured"] else "no"]
         for r in rows],
        title="Figure 12: time and budget for S3 IOPS scaling")
    save_artifact("fig12_scaling_cost", table)

    by_partitions = {r["partitions"]: r for r in rows}
    # ~50K IOPS needs 10 partitions; ~100K needs 19.
    p10, p19 = by_partitions[10], by_partitions[19]
    assert p10["iops"] == pytest.approx(55_000)
    # Hours-scale to reach ~50K IOPS (paper: ~2 h), growing superlinearly
    # toward ~100K (paper: ~9 h).
    assert 0.5 * 3_600 <= p10["time_s"] <= 6 * 3_600
    assert p19["time_s"] > 1.8 * p10["time_s"]
    # Cost grows into the tens-to-hundreds of dollars range and keeps
    # accelerating (paper, with 10 repetitions per load level: $228 at
    # 50K and $1,094 at 100K).
    assert 10 <= p10["cost_usd"] <= 600
    assert p19["cost_usd"] > 2 * p10["cost_usd"]
    # Time and cost grow monotonically with partitions.
    for a, b in zip(rows, rows[1:]):
        assert b["time_s"] >= a["time_s"] - 1e-6
        assert b["cost_usd"] >= a["cost_usd"] - 1e-6
