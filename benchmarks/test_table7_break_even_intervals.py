"""Table 7: break-even intervals in the cloud storage hierarchy.

Gray's five-minute rule, revisited for cloud pricing: for each access
size and each (tier-1 / tier-2) pairing, the interval between accesses at
which caching in tier 1 costs the same as re-reading from tier 2.

Calibration (documented in EXPERIMENTS.md): RAM at its marginal EC2
price (~$2/GiB-month, from C6g/R6g deltas); the NVMe tier as a
C6gd-class local SSD (~427K read IOPS, 2 GiB/s, rent from the C6gd/C6g
price delta); EBS as a 1 TB gp3 volume at maximum provisioned
performance.

Paper shape: RAM/SSD break-evens are tens of seconds and flat beyond
16 KiB (the 2 GiB/s SSD bandwidth binds); RAM/EBS sits at minutes;
RAM/S3 spans days (4 KiB) down to seconds (16 MiB); transfer fees make
S3 Express and cross-region S3 lose the inverse proportionality.
"""

import pytest

from conftest import save_artifact
from repro import units
from repro.core import format_table
from repro.pricing import EBS_GP3, STORAGE_PRICES
from repro.pricing.breakeven import (
    CapacityTier,
    break_even_interval_capacity,
    break_even_interval_requests,
)
from repro.pricing.catalog import MARGINAL_RAM_PER_GIB_HOUR

ACCESS_SIZES = [4 * units.KiB, 16 * units.KiB, 4 * units.MiB, 16 * units.MiB]

RAM_PER_MIB_HOUR = MARGINAL_RAM_PER_GIB_HOUR / 1024.0

NVME = CapacityTier(name="nvme", rent_per_hour=0.17, iops=427_000,
                    bandwidth=2 * units.GiB)
EBS = CapacityTier(
    name="ebs-gp3", rent_per_hour=EBS_GP3.volume_hourly_usd(
        1_000 * units.GB, iops=EBS_GP3.max_iops,
        throughput=EBS_GP3.max_throughput),
    iops=EBS_GP3.max_iops, bandwidth=EBS_GP3.max_throughput)

#: SSD as tier 1: its rent spread over its capacity.
SSD_PER_MIB_HOUR = NVME.rent_per_hour / (3_539 * 1024)


def run_experiment():
    cells = {}
    for size in ACCESS_SIZES:
        cells[("RAM/SSD", size)] = break_even_interval_capacity(
            size, NVME, RAM_PER_MIB_HOUR)
        cells[("RAM/EBS", size)] = break_even_interval_capacity(
            size, EBS, RAM_PER_MIB_HOUR)
        for service, label in [("s3-standard", "RAM/S3 Standard"),
                               ("s3-express", "RAM/S3 Express")]:
            cells[(label, size)] = break_even_interval_requests(
                size, STORAGE_PRICES[service], RAM_PER_MIB_HOUR)
        for service, label in [("s3-standard", "SSD/S3 Standard"),
                               ("s3-express", "SSD/S3 Express"),
                               ("s3-x-region", "SSD/S3 X-Region")]:
            cells[(label, size)] = break_even_interval_requests(
                size, STORAGE_PRICES[service], SSD_PER_MIB_HOUR)
    return cells


def test_table7_break_even_intervals(benchmark):
    cells = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    tiers = ["RAM/SSD", "RAM/EBS", "RAM/S3 Standard", "RAM/S3 Express",
             "SSD/S3 Standard", "SSD/S3 Express", "SSD/S3 X-Region"]
    rows = [[tier] + [units.fmt_duration(cells[(tier, size)])
                      for size in ACCESS_SIZES] for tier in tiers]
    table = format_table(
        ["Tiers", "4 KiB", "16 KiB", "4 MiB", "16 MiB"], rows,
        title="Table 7: break-even intervals (us-east-1)")
    save_artifact("table7_break_even_intervals", table)

    # RAM/SSD: tens of seconds (paper: 38 s at 4 KiB) ...
    assert 20 <= cells[("RAM/SSD", 4 * units.KiB)] <= 60
    # ... and flat beyond the bandwidth knee (paper: 31 s from 16 KiB on).
    assert cells[("RAM/SSD", 16 * units.KiB)] == pytest.approx(
        cells[("RAM/SSD", 16 * units.MiB)], rel=0.01)
    # RAM/EBS: minutes (paper: 27 min at 4 KiB down to 3 min).
    assert 10 * 60 <= cells[("RAM/EBS", 4 * units.KiB)] <= 60 * 60
    assert cells[("RAM/EBS", 4 * units.MiB)] < \
        cells[("RAM/EBS", 4 * units.KiB)] / 4
    # RAM/S3: days at 4 KiB (paper: 2 d) down to well under two minutes
    # at 16 MiB (paper: 41 s) — the cold-data sweet spot.
    assert 1.0 <= cells[("RAM/S3 Standard", 4 * units.KiB)] / units.DAY <= 3.0
    assert cells[("RAM/S3 Standard", 16 * units.MiB)] <= 100
    # Transfer fees invalidate the inverse size proportionality: the
    # Express interval stops shrinking (paper: 36 -> 39 min).
    express_4m = cells[("RAM/S3 Express", 4 * units.MiB)]
    express_16m = cells[("RAM/S3 Express", 16 * units.MiB)]
    assert express_16m > 0.75 * express_4m
    standard_ratio = cells[("RAM/S3 Standard", 4 * units.MiB)] \
        / cells[("RAM/S3 Standard", 16 * units.MiB)]
    express_ratio = express_4m / express_16m
    assert standard_ratio > 3 * express_ratio
    # SSD caching is economical across a wide range: SSD/S3 break-evens
    # sit at days for small accesses (paper: 59 d at 4 KiB, 1 h at 4 MiB).
    assert cells[("SSD/S3 Standard", 4 * units.KiB)] > 20 * units.DAY
    assert cells[("SSD/S3 Standard", 4 * units.MiB)] < 6 * units.HOUR
    # Cross-region transfer fees push the break-even to weeks even for
    # large accesses (paper: 11 d at 16 MiB).
    assert cells[("SSD/S3 X-Region", 16 * units.MiB)] > 4 * units.DAY
