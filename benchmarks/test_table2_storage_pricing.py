"""Table 2: pricing of AWS serverless storage services."""

import pytest

from conftest import save_artifact
from repro import units
from repro.core import format_table
from repro.pricing import STORAGE_PRICES


def build_table2():
    rows = []
    for name in ("s3-standard", "s3-express", "dynamodb", "efs"):
        pricing = STORAGE_PRICES[name]
        rows.append([
            name,
            f"{pricing.read_request * 1e6 * 100:.0f}",
            f"{pricing.write_request * 1e6 * 100:.0f}",
            f"{pricing.read_transfer_per_gib * 100:.2f}",
            f"{pricing.write_transfer_per_gib * 100:.2f}",
            f"{pricing.storage_per_gib_month * 100:.1f}",
        ])
    return format_table(
        ["Service", "Read [c/M]", "Write [c/M]", "Read xfer [c/GiB]",
         "Write xfer [c/GiB]", "Storage [c/GiB-mo]"], rows,
        title="Table 2: serverless storage pricing (us-east-1)")


def test_table2_storage_pricing(benchmark):
    table = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    save_artifact("table2_storage_pricing", table)
    s3 = STORAGE_PRICES["s3-standard"]
    express = STORAGE_PRICES["s3-express"]
    ddb = STORAGE_PRICES["dynamodb"]
    efs = STORAGE_PRICES["efs"]
    # S3 is by an order of magnitude the cheapest at rest.
    assert ddb.storage_per_gib_month >= 10 * s3.storage_per_gib_month
    # S3 request prices are the highest among request-priced services.
    assert s3.read_request > express.read_request
    assert s3.read_request > ddb.read_request
    # EFS charges no requests but the highest transfer fees.
    assert efs.read_request == 0
    assert efs.read_transfer_per_gib > express.read_transfer_per_gib
    # Express charges 24 - 115x more than standard S3 in the 8-16 MiB
    # throughput-optimal range (Section 2.2).
    for size in (8 * units.MiB, 16 * units.MiB):
        ratio = express.read_cost(1, size) / s3.read_cost(1, size)
        assert 20 <= ratio <= 120
    # Keeping S3 warm at 100K IOPS costs ~$144/hour (Section 2.2).
    assert 100_000 * 3600 * s3.read_request == pytest.approx(144.0)
