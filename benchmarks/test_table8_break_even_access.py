"""Table 8: break-even access sizes for shuffling through object storage.

Object storage charges per request regardless of size; a provisioned
VM cluster's shuffle capacity is its aggregate network bandwidth. The
break-even access size (BEAS) is where object-storage shuffling becomes
the cheaper medium. Shuffle cost is dominated by the read requests
(every consumer reads from every producer), so the read price drives
the break-even.

Paper shape: ~2 MiB for C6g instances (constant within the family, since
network grows with price), larger for the network-optimized C6gn variant
(~7 MiB on-demand) and larger still under reserved pricing (~16 MiB);
S3 Express never breaks even because of its per-byte transfer fees.
"""

import pytest

from conftest import save_artifact
from repro import units
from repro.core import format_table
from repro.pricing import STORAGE_PRICES, break_even_access_size, ec2_instance

CONFIGS = [
    ("c6g.xlarge", False),
    ("c6g.8xlarge", False),
    ("c6gn.xlarge", False),
    ("c6gn.xlarge", True),
]


def run_experiment():
    cells = {}
    for instance_name, reserved in CONFIGS:
        instance = ec2_instance(instance_name)
        rent = (instance.reserved_hourly_usd if reserved
                else instance.hourly_usd)
        for service in ("s3-standard", "s3-express"):
            cells[(instance_name, reserved, service)] = \
                break_even_access_size(
                    STORAGE_PRICES[service],
                    server_bandwidth=instance.network_baseline,
                    server_rent_per_hour=rent, read=True)
    return cells


def test_table8_break_even_access(benchmark):
    cells = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for instance_name, reserved in CONFIGS:
        pricing = "reserved" if reserved else "on-demand"
        std = cells[(instance_name, reserved, "s3-standard")]
        express = cells[(instance_name, reserved, "s3-express")]
        rows.append([
            f"{instance_name} ({pricing})",
            f"{std / units.MiB:.1f} MiB" if std else "-",
            f"{express / units.MiB:.1f} MiB" if express else "-",
        ])
    table = format_table(["Instance", "S3 Standard", "S3 Express"], rows,
                         title="Table 8: shuffle break-even access sizes")
    save_artifact("table8_break_even_access", table)

    base = cells[("c6g.xlarge", False, "s3-standard")]
    big = cells[("c6g.8xlarge", False, "s3-standard")]
    network = cells[("c6gn.xlarge", False, "s3-standard")]
    reserved = cells[("c6gn.xlarge", True, "s3-standard")]
    # ~2 MiB for C6g (paper: 2 MiB), constant within the family.
    assert base == pytest.approx(2 * units.MiB, rel=0.5)
    assert big == pytest.approx(base, rel=0.35)
    # C6gn's 4x network at a modest premium raises the break-even
    # (paper: 7 MiB); reserved pricing raises it further (paper: 16 MiB).
    assert network > 2 * base
    assert reserved > 1.5 * network
    # S3 Express never breaks even with VM clusters (transfer fees).
    for instance_name, is_reserved in CONFIGS:
        assert cells[(instance_name, is_reserved, "s3-express")] is None
    # Typical distributed-query shuffle I/Os (KiB scale, Table 6) sit
    # below every break-even: the motivation for write combining.
    assert base > 100 * units.KiB
