"""Ablation: two-level function invocation (Section 3.2).

Starting a large worker cluster from the coordinator alone serializes
per-invocation dispatch overhead; fanning out through second-level
invoker functions parallelizes it ("scheduling 256 or more workers, the
coordinator parallelizes function calls across a subset of workers").
This ablation measures cluster startup makespan with and without the
second level.
"""

from conftest import save_artifact
from repro import units
from repro.core import CloudSim, format_table
from repro.engine.coordinator import INVOKE_DISPATCH_S, INVOKER_SLICE
from repro.faas.function import FunctionConfig

WORKERS = 320


def deploy(sim: CloudSim):
    def worker_handler(context, payload):
        yield context.env.timeout(0.05)
        return context.env.now

    def invoker_handler(context, payload):
        env = context.env
        processes = []
        for item in payload["slice"]:
            yield env.timeout(INVOKE_DISPATCH_S)
            processes.append(env.process(
                sim.platform.invoke("abl-worker", item)))
        done = []
        for process in processes:
            record = yield process
            done.append(record.response)
        return done

    sim.platform.deploy(FunctionConfig(name="abl-worker",
                                       handler=worker_handler,
                                       memory_bytes=1_769 * units.MiB))
    sim.platform.deploy(FunctionConfig(name="abl-invoker",
                                       handler=invoker_handler,
                                       memory_bytes=1_769 * units.MiB))


def startup_makespan(two_level: bool) -> float:
    sim = CloudSim(seed=21)
    deploy(sim)

    def warm(env):
        # Pre-warm sandboxes so coldstart tails do not mask the dispatch
        # overhead this ablation isolates.
        processes = [env.process(sim.platform.invoke("abl-worker", i))
                     for i in range(WORKERS)]
        processes += [env.process(sim.platform.invoke(
            "abl-invoker", {"slice": []})) for _ in range(16)]
        for process in processes:
            yield process
        yield env.timeout(30.0)

    sim.run(warm(sim.env))

    def scenario(env):
        start = env.now
        processes = []
        if two_level:
            slices = [list(range(i, min(i + INVOKER_SLICE, WORKERS)))
                      for i in range(0, WORKERS, INVOKER_SLICE)]
            for chunk in slices:
                yield env.timeout(INVOKE_DISPATCH_S)
                processes.append(env.process(
                    sim.platform.invoke("abl-invoker", {"slice": chunk})))
        else:
            for item in range(WORKERS):
                yield env.timeout(INVOKE_DISPATCH_S)
                processes.append(env.process(
                    sim.platform.invoke("abl-worker", item)))
        for process in processes:
            yield process
        return env.now - start

    proc = sim.env.process(scenario(sim.env))
    sim.env.run(until=proc)
    return proc.value


def run_experiment():
    return {"one-level": startup_makespan(False),
            "two-level": startup_makespan(True)}


def test_ablation_two_level_invocation(benchmark):
    outcome = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = format_table(
        ["Strategy", "Cluster startup [s]"],
        [[label, f"{value:.3f}"] for label, value in outcome.items()],
        title=f"Ablation: invoking {WORKERS} workers")
    save_artifact("ablation_two_level_invocation", table)

    one = outcome["one-level"]
    two = outcome["two-level"]
    # One level serializes >= WORKERS x dispatch overhead.
    assert one >= WORKERS * INVOKE_DISPATCH_S
    # Two levels parallelize dispatch across invokers: substantially
    # faster startup for wide stages.
    assert two < 0.6 * one
