"""Benchmark: serving latency and cost for a Poisson tenant mix.

The serving-layer counterpart of the paper's economics: the 3-tenant
mix (interactive / analytics / batch) runs at three arrival-rate scales
against a concurrency-governed platform, under weighted fair share.
Reported per tenant and rate: p50/p95/p99 end-to-end latency, mean
queue wait, shed count, SLO attainment, and cost per query — the SLO
numbers an operator of a multi-tenant Skyrise deployment would watch.
"""

import math

import pytest

from conftest import save_artifact
from repro.core import format_table
from repro.serve import default_tenant_mix, run_serving_workload

WINDOW_S = 300.0
SEED = 2
#: One query admitted at a time: saturation sets in as rates scale.
MAX_QUERIES = 1
RATE_SCALES = (1.0, 4.0, 8.0)


def run_experiment():
    outcomes = {}
    for scale in RATE_SCALES:
        outcomes[scale] = run_serving_workload(
            default_tenant_mix(rate_scale=scale), policy="fair",
            window_s=WINDOW_S, seed=SEED,
            max_concurrent_queries=MAX_QUERIES)
    return outcomes


def test_serving_latency(benchmark):
    outcomes = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for scale, outcome in outcomes.items():
        for name, report in outcome.reports.items():
            cpq = report.cost_per_query
            rows.append([
                f"{scale:.0f}x", name, report.offered, report.completed,
                report.shed, f"{report.latency_p50:.2f}",
                f"{report.latency_p95:.2f}", f"{report.latency_p99:.2f}",
                f"{report.mean_queue_wait:.2f}",
                f"{report.slo_attainment * 100:.0f}%",
                "inf" if math.isinf(cpq) else f"{cpq * 100:.3f}"])
    table = format_table(
        ["Rate", "Tenant", "Offered", "Done", "Shed", "p50 [s]",
         "p95 [s]", "p99 [s]", "Wait [s]", "SLO", "¢/query"], rows,
        title=(f"Multi-tenant serving latency (fair share, window "
               f"{WINDOW_S:.0f}s, {MAX_QUERIES} concurrent quer"
               f"{'y' if MAX_QUERIES == 1 else 'ies'})"))
    save_artifact("serving_latency", table)
    # Canonical JSON companion artifact (shared writer, byte-stable).
    save_artifact("serving_latency_high_rate",
                  outcomes[RATE_SCALES[-1]].to_json())

    low, high = outcomes[RATE_SCALES[0]], outcomes[RATE_SCALES[-1]]
    # Offered load actually scales with the rate knob.
    assert high.total_offered > 4 * low.total_offered
    # Saturation: the batch tenant's p95 latency degrades with load...
    assert (high.reports["batch"].latency_p95
            > low.reports["batch"].latency_p95)
    # ...and overload sheds traffic that an idle system would serve.
    assert low.total_shed == 0
    assert high.total_shed > 0
    # Fair share shields the interactive tenant: its SLO holds at every
    # rate even as the batch tenant's collapses at the highest one.
    for outcome in outcomes.values():
        assert outcome.reports["interactive"].slo_attainment >= 0.95
    assert high.reports["batch"].slo_attainment < 0.8
    # Cost per served query stays finite and positive wherever traffic
    # was served.
    for outcome in outcomes.values():
        for report in outcome.reports.values():
            if report.completed:
                assert 0.0 < report.cost_per_query < math.inf
    # The governor never exceeds its cap.
    assert all(o.peak_concurrent_queries <= MAX_QUERIES
               for o in outcomes.values())


def test_serving_is_deterministic(benchmark):
    """Fixed seed -> identical serving metrics, per the acceptance bar."""

    def run_twice():
        mix = default_tenant_mix(rate_scale=2.0)
        return [run_serving_workload(mix, policy="fair", window_s=120.0,
                                     seed=SEED,
                                     max_concurrent_queries=2).summary()
                for _ in range(2)]

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert first == second


def test_priority_tenant_prefers_fair_share(benchmark):
    """Same overload trace: fair share beats FIFO for the premium tenant."""

    def run_pair():
        results = {}
        for policy in ("fifo", "fair"):
            results[policy] = run_serving_workload(
                default_tenant_mix(rate_scale=8.0), policy=policy,
                window_s=WINDOW_S, seed=SEED,
                max_concurrent_queries=MAX_QUERIES)
        return results

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    fifo = results["fifo"].reports["interactive"]
    fair = results["fair"].reports["interactive"]
    assert fair.latency_p99 < fifo.latency_p99
    assert fair.slo_attainment >= fifo.slo_attainment
