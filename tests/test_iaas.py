"""Tests for the EC2 fleet and the Lambda-compatible VM shim."""

import pytest

from repro import units
from repro.faas import FunctionConfig
from repro.iaas import Ec2Fleet, VmShim
from repro.network import Fabric
from repro.sim import Environment, RandomStreams


def make_stack():
    env = Environment()
    fabric = Fabric(env)
    rng = RandomStreams(seed=3)
    fleet = Ec2Fleet(env, fabric, rng)
    return env, fabric, rng, fleet


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


class TestFleet:
    def test_provisioning_takes_boot_time(self):
        env, fabric, rng, fleet = make_stack()
        instances = run(env, fleet.provision("c6g.xlarge", count=4))
        assert len(instances) == 4
        assert 10.0 <= env.now <= 200.0  # tens of seconds of boot

    def test_invalid_count_rejected(self):
        env, fabric, rng, fleet = make_stack()
        with pytest.raises(ValueError):
            run(env, fleet.provision("c6g.xlarge", count=0))

    def test_instances_have_catalog_network_personality(self):
        env, fabric, rng, fleet = make_stack()
        instances = run(env, fleet.provision("c6g.xlarge", count=1))
        shaper = instances[0].endpoint.ingress
        assert shaper.refill_rate == pytest.approx(1.25 * units.Gbps)
        assert shaper.burst_rate == pytest.approx(10 * units.Gbps)
        assert shaper.capacity == pytest.approx(490 * units.GiB)
        # Burst duration (bucket / net drain) sits in the minutes range,
        # matching Figure 6.
        drain = shaper.burst_rate - shaper.refill_rate
        assert 120 <= shaper.capacity / drain <= 2700

    def test_large_instances_have_no_burst(self):
        env, fabric, rng, fleet = make_stack()
        instances = run(env, fleet.provision("c6g.16xlarge", count=1))
        shaper = instances[0].endpoint.ingress
        assert shaper.burst_rate == pytest.approx(shaper.refill_rate)

    def test_terminate_tracks_uptime(self):
        env, fabric, rng, fleet = make_stack()
        instances = run(env, fleet.provision("c6g.xlarge", count=2))
        start = env.now

        def later(env):
            yield env.timeout(100.0)
            fleet.terminate_all()

        run(env, later(env))
        assert fleet.running_count() == 0
        assert instances[0].uptime(env.now) == pytest.approx(
            env.now - start, abs=1.0)


class TestShim:
    def make_shim(self, vm_count=2, slots=1):
        env, fabric, rng, fleet = make_stack()
        instances = run(env, fleet.provision("c6g.xlarge", count=vm_count))
        shim = VmShim(env, instances, slots_per_vm=slots)
        return env, shim

    def test_handler_runs_without_coldstart(self):
        env, shim = self.make_shim()

        def handler(context, payload):
            yield context.env.timeout(0.5)
            return payload * 2

        shim.deploy(FunctionConfig(name="double", handler=handler))
        record = run(env, shim.invoke("double", 21))
        assert record.response == 42
        assert not record.cold
        # No coldstart: init time is pure queueing (zero when idle).
        assert record.init_duration == pytest.approx(0.0, abs=1e-9)

    def test_fragments_queue_on_busy_slots(self):
        env, shim = self.make_shim(vm_count=1, slots=1)

        def handler(context, payload):
            yield context.env.timeout(1.0)
            return payload

        shim.deploy(FunctionConfig(name="task", handler=handler))

        def scenario(env):
            procs = [env.process(shim.invoke("task", i)) for i in range(3)]
            records = []
            for proc in procs:
                records.append((yield proc))
            return records

        start = env.now
        records = run(env, scenario(env))
        assert env.now - start == pytest.approx(3.0, abs=0.01)
        # The queued invocations accumulated waiting time.
        waits = sorted(record.init_duration for record in records)
        assert waits == pytest.approx([0.0, 1.0, 2.0], abs=0.01)

    def test_round_robin_across_vms(self):
        env, shim = self.make_shim(vm_count=3, slots=1)

        def handler(context, payload):
            yield context.env.timeout(0.1)
            return context.sandbox_id

        shim.deploy(FunctionConfig(name="where", handler=handler))

        def scenario(env):
            procs = [env.process(shim.invoke("where")) for _ in range(3)]
            ids = []
            for proc in procs:
                record = yield proc
                ids.append(record.response)
            return ids

        ids = run(env, scenario(env))
        assert len(set(ids)) == 3

    def test_shim_requires_instances(self):
        env = Environment()
        with pytest.raises(ValueError):
            VmShim(env, [])

    def test_handler_error_raised(self):
        env, shim = self.make_shim()

        def failing(context, payload):
            yield context.env.timeout(0.01)
            raise ValueError("bad fragment")

        shim.deploy(FunctionConfig(name="bad", handler=failing))

        def scenario(env):
            try:
                yield from shim.invoke("bad")
            except ValueError as exc:
                return str(exc)

        assert run(env, scenario(env)) == "bad fragment"
