"""Cross-cutting property-based tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.engine.shuffle import _hash_partition
from repro.formats.batch import RecordBatch
from repro.formats.schema import DataType, Field, Schema
from repro.network import Fabric
from repro.network.shaper import TokenBucketShaper
from repro.pricing import STORAGE_PRICES
from repro.pricing.breakeven import (
    CapacityTier,
    break_even_interval_capacity,
    break_even_interval_requests,
)
from repro.sim import Environment
from repro.storage.latency import LatencyModel


class TestFabricConservation:
    @given(sizes=st.lists(st.floats(min_value=1.0, max_value=1e4),
                          min_size=1, max_size=10),
           capacity=st.floats(min_value=10.0, max_value=1e4))
    @settings(max_examples=40, deadline=None)
    def test_link_never_exceeded_and_all_bytes_delivered(self, sizes,
                                                         capacity):
        """Flows through a shared link finish with exact byte counts and
        never before total_bytes / capacity."""
        env = Environment()
        fabric = Fabric(env)
        link = fabric.link(capacity=capacity)
        flows = [fabric.transfer(fabric.endpoint(f"s{i}"),
                                 fabric.endpoint(f"d{i}"),
                                 size=size, links=(link,))
                 for i, size in enumerate(sizes)]
        env.run()
        total = sum(sizes)
        for flow, size in zip(flows, sizes):
            assert flow.transferred == pytest.approx(size, rel=1e-6)
            assert flow.finished_at is not None
        makespan = max(flow.finished_at for flow in flows)
        # The link cannot move bytes faster than its capacity.
        assert makespan >= total / capacity * (1 - 1e-9)

    @given(capacity=st.floats(min_value=10.0, max_value=1e5),
           burst=st.floats(min_value=10.0, max_value=1e4),
           refill=st.floats(min_value=0.1, max_value=100.0),
           horizon=st.floats(min_value=0.5, max_value=20.0))
    @settings(max_examples=40, deadline=None)
    def test_shaped_flow_never_exceeds_token_budget(self, capacity, burst,
                                                    refill, horizon):
        """Transferred bytes never exceed initial tokens + refill."""
        env = Environment()
        fabric = Fabric(env)
        shaper = TokenBucketShaper(capacity=capacity, burst_rate=burst,
                                   refill_rate=refill, mode="continuous",
                                   initial_level=capacity)
        dst = fabric.endpoint("fn", ingress=shaper)
        flow = fabric.open_flow(fabric.endpoint("src"), dst)
        env.run(until=horizon)
        fabric.sync_now()
        budget = capacity + refill * horizon
        assert flow.transferred <= budget * (1 + 1e-6)


class TestShufflePartitioning:
    @given(keys=st.lists(st.integers(min_value=-10**9, max_value=10**9),
                         min_size=1, max_size=300),
           partitions=st.integers(min_value=1, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_partitioning_is_total_stable_and_consistent(self, keys,
                                                         partitions):
        array = np.array(keys, dtype=np.int64)
        first = _hash_partition(array, partitions)
        second = _hash_partition(array, partitions)
        np.testing.assert_array_equal(first, second)
        assert ((first >= 0) & (first < partitions)).all()
        # Equal keys always colocate.
        by_key = {}
        for key, partition in zip(keys, first):
            if key in by_key:
                assert by_key[key] == partition
            by_key[key] = partition


class TestLatencyModelProperties:
    @given(median=st.floats(min_value=1e-4, max_value=1.0),
           spread=st.floats(min_value=1.0, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_sampled_median_matches_parameter(self, median, spread):
        model = LatencyModel(median=median, p95=median * spread,
                             ceiling=1e6)
        rng = np.random.default_rng(0)
        samples = model.sample(rng, size=20_000)
        assert np.median(samples) == pytest.approx(median, rel=0.1)
        assert (samples > 0).all()

    @given(median=st.floats(min_value=1e-3, max_value=0.1))
    @settings(max_examples=20, deadline=None)
    def test_ceiling_respected(self, median):
        model = LatencyModel(median=median, p95=median * 3,
                             tail_probability=0.05, tail_alpha=1.01,
                             ceiling=median * 10)
        rng = np.random.default_rng(1)
        samples = model.sample(rng, size=5_000)
        assert samples.max() <= median * 10 + 1e-12


class TestBreakEvenProperties:
    @given(size=st.floats(min_value=1024, max_value=64 * 1024**2))
    @settings(max_examples=30, deadline=None)
    def test_capacity_bei_decreases_with_access_size(self, size):
        """Larger accesses never lengthen the capacity-priced interval."""
        tier = CapacityTier(name="d", rent_per_hour=0.2, iops=100_000,
                            bandwidth=2 * units.GiB)
        small = break_even_interval_capacity(size, tier, 1e-6)
        larger = break_even_interval_capacity(size * 2, tier, 1e-6)
        assert larger <= small * (1 + 1e-9)

    @given(size=st.floats(min_value=1024, max_value=64 * 1024**2),
           ram=st.floats(min_value=1e-9, max_value=1e-3))
    @settings(max_examples=30, deadline=None)
    def test_request_bei_positive_and_scales_with_ram_price(self, size, ram):
        bei = break_even_interval_requests(
            size, STORAGE_PRICES["s3-standard"], ram)
        cheaper_ram = break_even_interval_requests(
            size, STORAGE_PRICES["s3-standard"], ram / 2)
        assert bei > 0
        # Cheaper RAM keeps pages cached longer: interval grows.
        assert cheaper_ram == pytest.approx(2 * bei, rel=1e-9)


class TestChaosDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=3, deadline=None)
    def test_same_seed_and_plan_give_byte_identical_reports(self, seed):
        """The resilience report's determinism contract is byte-exact:
        the whole run — arrivals, injections, retries, hedges, billing —
        replays identically from (seed, plan)."""
        from repro.chaos.runner import run_chaos_suite

        first = run_chaos_suite("smoke", queries=("tpch-q6",), repeats=1,
                                seed=seed, baseline=False)
        second = run_chaos_suite("smoke", queries=("tpch-q6",), repeats=1,
                                 seed=seed, baseline=False)
        assert first.to_json() == second.to_json()


class TestBatchInvariants:
    @given(n=st.integers(min_value=0, max_value=200),
           take_seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_take_preserves_row_content(self, n, take_seed):
        rng = np.random.default_rng(take_seed)
        batch = RecordBatch(
            Schema([Field("a", DataType.INT64)]),
            {"a": np.arange(n, dtype=np.int64)})
        mask = rng.random(n) < 0.5
        subset = batch.take(mask)
        np.testing.assert_array_equal(subset.column("a"),
                                      np.arange(n)[mask])
        assert subset.logical_bytes <= batch.logical_bytes + 1e-9

    @given(pieces=st.lists(st.integers(min_value=0, max_value=50),
                           min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_concat_preserves_order_and_counts(self, pieces):
        schema = Schema([Field("a", DataType.INT64)])
        batches = []
        offset = 0
        for count in pieces:
            batches.append(RecordBatch(
                schema,
                {"a": np.arange(offset, offset + count, dtype=np.int64)}))
            offset += count
        merged = RecordBatch.concat(batches)
        np.testing.assert_array_equal(merged.column("a"),
                                      np.arange(offset))


class TestFabricIncrementalEquivalence:
    """The incremental max-min allocator must be bit-for-bit identical
    to the from-scratch reference under random arrival/departure mixes.
    """

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_incremental_matches_full_recompute(self, data):
        n_links = data.draw(st.integers(min_value=1, max_value=4),
                            label="n_links")
        caps = data.draw(st.lists(
            st.floats(min_value=10.0, max_value=1e4),
            min_size=n_links, max_size=n_links), label="capacities")
        shaped = data.draw(st.booleans(), label="shaped_endpoints")
        n_flows = data.draw(st.integers(min_value=1, max_value=12),
                            label="n_flows")
        specs = []
        for i in range(n_flows):
            start = data.draw(st.floats(min_value=0.0, max_value=5.0),
                              label=f"start_{i}")
            size = data.draw(st.floats(min_value=1.0, max_value=5e3),
                             label=f"size_{i}")
            link_ids = data.draw(st.lists(
                st.integers(min_value=0, max_value=n_links - 1),
                min_size=0, max_size=n_links, unique=True),
                label=f"links_{i}")
            # Open-ended flows are stopped explicitly, covering the
            # departure path; bounded flows depart by finishing.
            stop_after = data.draw(
                st.one_of(st.none(),
                          st.floats(min_value=0.1, max_value=3.0)),
                label=f"stop_{i}")
            specs.append((start, size, tuple(link_ids), stop_after))

        def run(force_full):
            env = Environment()
            fabric = Fabric(env)
            fabric._force_full = force_full
            links = [fabric.link(capacity=cap, name=f"l{j}")
                     for j, cap in enumerate(caps)]

            def endpoint(name):
                if not shaped:
                    return fabric.endpoint(name)
                return fabric.endpoint(name, egress=TokenBucketShaper(
                    capacity=2e3, burst_rate=1e3, refill_rate=200.0,
                    mode="continuous"))

            flows = []

            def starter(start, size, link_ids, stop_after, i):
                yield env.timeout(start)
                chosen = tuple(links[j] for j in link_ids)
                if stop_after is None:
                    flow = fabric.transfer(endpoint(f"s{i}"),
                                           endpoint(f"d{i}"),
                                           size=size, links=chosen)
                    flows.append(flow)
                    return
                flow = fabric.open_flow(endpoint(f"s{i}"),
                                        endpoint(f"d{i}"), links=chosen)
                flows.append(flow)
                yield env.timeout(stop_after)
                fabric.stop_flow(flow)

            for i, spec in enumerate(specs):
                env.process(starter(*spec, i), name=f"flow-{i}")
            env.run()
            return [(f.transferred, f.finished_at) for f in flows]

        assert run(False) == run(True)
