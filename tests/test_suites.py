"""Tests for the predefined experiment suites."""

import pytest

from repro.core import Driver
from repro.core.suites import (
    full_evaluation,
    network_suite,
    query_suite,
    startup_suite,
    storage_suite,
)


class TestSuiteDefinitions:
    def test_full_evaluation_covers_all_sections(self):
        configs = full_evaluation()
        kinds = {config.kind for config in configs}
        assert kinds >= {"network-burst", "network-comparison",
                         "network-scaling", "storage-throughput",
                         "storage-iops", "storage-latency",
                         "s3-iops-scaling", "s3-downscaling", "query",
                         "function-startup"}

    def test_config_names_unique(self):
        names = [config.name for config in full_evaluation()]
        assert len(names) == len(set(names))

    def test_every_config_json_roundtrips(self):
        from repro.core.config import ExperimentConfig
        for config in full_evaluation():
            assert ExperimentConfig.from_json(config.to_json()) == config

    def test_storage_suite_covers_all_services(self):
        names = {config.parameters.get("service")
                 for config in storage_suite()
                 if "service" in config.parameters}
        assert names == {"s3-standard", "s3-express", "dynamodb", "efs-1"}

    def test_query_suite_covers_paper_queries(self):
        queries = {config.parameters["query"] for config in query_suite()}
        assert queries == {"tpch-q1", "tpch-q6", "tpch-q12", "tpcxbb-q3"}

    def test_vpc_variant_present(self):
        vpc = [config for config in network_suite()
               if config.parameters.get("vpc")]
        assert vpc


class TestSuiteExecution:
    """Smoke-run one config per kind through the driver."""

    @pytest.mark.parametrize("config", [
        network_suite()[0],
        storage_suite()[1],   # fig9 s3-standard
        storage_suite()[2],   # fig10 s3-standard
        startup_suite()[0],
    ], ids=lambda config: config.name)
    def test_driver_executes_suite_config(self, config):
        if config.kind == "storage-latency":
            config.parameters["requests"] = 20_000  # keep the test fast
        result = Driver().run(config)
        assert result.kind == config.kind
        assert result.metrics
