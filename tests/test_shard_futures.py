"""Futures + sharding interop: admission through the shard router."""

import math

import pytest

from repro.faas import LambdaPlatform
from repro.futures import AdmissionShed, FunctionExecutor
from repro.network import Fabric
from repro.serve.gateway import Tenant
from repro.shard import ShardRouter
from repro.sim import Environment, RandomStreams

LAZY = Tenant(name="__default__", max_queue_depth=math.inf)


def make_env(max_pending=math.inf, tenant="acme"):
    env = Environment()
    fabric = Fabric(env)
    rng = RandomStreams(seed=11)
    platform = LambdaPlatform(env, fabric, rng)
    router = ShardRouter(env, shards=2, max_pending=max_pending,
                         default_tenant=LAZY)
    executor = FunctionExecutor(env, platform, rng, router=router,
                                tenant=tenant)
    return env, router, executor


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def square(context, x):
    yield context.env.timeout(0.01)
    return x * x


def total(context, values):
    yield context.env.timeout(0.001)
    return sum(values)


class TestAdmittedCalls:
    def test_call_holds_shard_capacity_until_done(self):
        env, router, executor = make_env()
        future = executor.call_async(square, 6)
        shard = router.route("acme").shard
        assert router.gateways[shard].external_pending == 1
        assert run(env, executor.get_result(future)) == 36
        env.run()  # let the release process observe completion
        assert router.gateways[shard].external_pending == 0
        assert executor.shed_calls == 0
        # The shard counted the call like any offered-and-served unit.
        assert router.shard_metrics[shard].offered == 1

    def test_map_reduce_routes_every_call(self):
        env, router, executor = make_env()
        future = executor.map_reduce(square, [1, 2, 3], total)
        assert run(env, executor.get_result(future)) == 14
        env.run()
        offered = sum(m.offered for m in router.shard_metrics.values())
        assert offered == 4  # three maps + the reducer
        assert router.pending_total() == 0
        assert router.roll_up().balanced


class TestShedCalls:
    def test_over_bound_calls_are_rejected_not_invoked(self):
        env, router, executor = make_env(max_pending=0)
        future = executor.call_async(square, 5)
        assert future.done
        assert future.state == "error"
        assert executor.shed_calls == 1
        with pytest.raises(AdmissionShed):
            run(env, executor.get_result(future))
        assert len(future.attempts) == 0  # never reached the invoker
        report = router.roll_up().to_dict()
        assert report["shed"] == 1 and report["balanced"]

    def test_admission_shed_is_not_retryable(self):
        assert AdmissionShed("shed").retryable is False

    def test_partial_map_sheds_only_the_overflow(self):
        env, router, executor = make_env(max_pending=1)
        futures = executor.map(square, [2, 3, 4])
        outcomes = []
        for future in futures:
            try:
                outcomes.append(run(env, executor.get_result(future)))
            except AdmissionShed:
                outcomes.append("shed")
        env.run()
        assert "shed" in outcomes
        assert any(isinstance(value, int) for value in outcomes)
        assert executor.shed_calls == outcomes.count("shed")
        assert router.roll_up().balanced


class TestUnrouted:
    def test_executor_without_router_is_unchanged(self):
        env = Environment()
        fabric = Fabric(env)
        rng = RandomStreams(seed=11)
        platform = LambdaPlatform(env, fabric, rng)
        executor = FunctionExecutor(env, platform, rng)
        future = executor.call_async(square, 4)
        assert run(env, executor.get_result(future)) == 16
        assert executor.shed_calls == 0
