"""Serving-layer integration under fault injection.

Drives the multi-tenant gateway with the ``throttle-storm`` plan at a
traffic level that pressures the (deliberately shallow) queue bounds, so
the run exhibits both *shed* queries — turned away at admission, a
deliberate decision — and *recovered* queries — served, but only after
the recovery layer retried a crashed fragment. The metrics must keep the
two (and outright *failures*) distinct.
"""

import pytest

from repro.serve.gateway import Tenant
from repro.serve.service import TenantWorkload, run_serving_workload


def storm_workloads():
    # max_concurrent=1 with a 2-deep queue at 900 arrivals/hour: the
    # backlog bound binds quickly once throttle delays stretch service
    # times, so admission control sheds while retries recover crashes.
    return [
        TenantWorkload(
            tenant=Tenant(name="interactive", priority=0, weight=4.0,
                          max_concurrent=1, max_queue_depth=2,
                          slo_latency_s=30.0),
            query="tpch-q6", rate_per_hour=900.0,
            plan_kwargs={"scan_fragments": 2}),
        TenantWorkload(
            tenant=Tenant(name="batch", priority=2, weight=1.0,
                          max_concurrent=1, max_queue_depth=2,
                          slo_latency_s=300.0),
            query="tpch-q6", rate_per_hour=900.0,
            plan_kwargs={"scan_fragments": 2}),
    ]


@pytest.fixture(scope="module")
def outcome():
    return run_serving_workload(storm_workloads(), policy="fair",
                                window_s=180.0, seed=1,
                                fault_plan="throttle-storm")


class TestServingUnderThrottleStorm:
    def test_shed_and_recovered_are_both_present_and_distinct(self, outcome):
        summary = outcome.summary()
        # Overload sheds at admission *and* crashes recover via retry —
        # the run must exhibit both, as different metrics.
        assert summary["shed"] > 0
        assert summary["recovered"] > 0
        assert summary["shed"] != summary["recovered"]
        # Recovered queries were served: they count in completed too.
        assert summary["recovered"] <= summary["completed"]

    def test_every_offered_query_is_accounted_once(self, outcome):
        summary = outcome.summary()
        assert summary["offered"] == (summary["completed"] + summary["shed"]
                                      + summary["failed"])

    def test_per_tenant_reports_carry_all_three_outcomes(self, outcome):
        for name in ("interactive", "batch"):
            report = outcome.reports[name]
            assert report.shed >= 0
            assert report.failed >= 0
            assert report.recovered >= 0
        summary = outcome.summary()
        for name in ("interactive", "batch"):
            for metric in ("shed", "failed", "recovered"):
                assert f"{name}.{metric}" in summary

    def test_report_text_names_failed_and_recovered(self, outcome):
        text = outcome.format_report()
        assert "failed" in text
        assert "recovered" in text

    def test_same_seed_reproduces_the_storm(self):
        first = run_serving_workload(storm_workloads(), policy="fair",
                                     window_s=180.0, seed=1,
                                     fault_plan="throttle-storm")
        second = run_serving_workload(storm_workloads(), policy="fair",
                                      window_s=180.0, seed=1,
                                      fault_plan="throttle-storm")
        assert first.summary() == second.summary()
