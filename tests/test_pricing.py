"""Tests for the price catalog, cost calculator, and break-even math."""

import pytest

from repro import units
from repro.pricing import (
    LAMBDA_PRICING,
    STORAGE_PRICES,
    CostCalculator,
    break_even_access_size,
    break_even_interval_capacity,
    break_even_interval_requests,
    ec2_instance,
    faas_break_even_queries_per_hour,
)
from repro.pricing.breakeven import CapacityTier, peak_to_average_node_ratio
from repro.pricing.calculator import cost_per_gib_per_s_read
from repro.pricing.catalog import MARGINAL_RAM_PER_GIB_HOUR
from repro.storage.base import RequestStats, RequestType


class TestCatalog:
    def test_c6g_xlarge_shape(self):
        instance = ec2_instance("c6g.xlarge")
        assert instance.vcpus == 4
        assert instance.memory_bytes == 8 * units.GiB
        assert instance.hourly_usd == pytest.approx(0.136)

    def test_per_gib_hour_within_table1_range(self):
        # Table 1: EC2 memory at 0.65 - 1.70 cents/GiB-h.
        for name in ("c6g.medium", "c6g.xlarge", "c6g.16xlarge"):
            instance = ec2_instance(name)
            assert 0.0065 <= instance.per_gib_hour <= 0.0170 + 1e-9

    def test_lambda_unit_price_premium_over_ec2(self):
        # Table 1: Lambda is 2.5 - 5.9x more expensive per resource unit.
        lambda_per_gib_hour = LAMBDA_PRICING.per_gib_second * 3600
        ec2_per_gib_hour = ec2_instance("c6g.xlarge").per_gib_hour
        assert 2.5 <= lambda_per_gib_hour / ec2_per_gib_hour <= 5.9

    def test_unknown_instance_raises(self):
        with pytest.raises(KeyError, match="unknown instance"):
            ec2_instance("m5.large")

    def test_c6gn_has_four_times_network(self):
        base = ec2_instance("c6g.xlarge")
        network = ec2_instance("c6gn.xlarge")
        assert network.network_baseline == pytest.approx(4 * base.network_baseline)

    def test_c6gd_has_nvme(self):
        assert ec2_instance("c6gd.xlarge").nvme_bytes > 200 * units.GB
        assert ec2_instance("c6g.xlarge").nvme_bytes is None

    def test_s3_is_cheapest_at_rest_by_an_order(self):
        s3 = STORAGE_PRICES["s3-standard"].storage_per_gib_month
        others = [STORAGE_PRICES[name].storage_per_gib_month
                  for name in ("s3-express", "dynamodb", "efs")]
        assert all(other >= 6 * s3 for other in others)

    def test_s3_request_price_size_independent(self):
        pricing = STORAGE_PRICES["s3-standard"]
        assert pricing.read_cost(1000, total_bytes=units.GiB) == \
            pytest.approx(pricing.read_cost(1000, total_bytes=units.KiB))

    def test_express_charges_transfers_beyond_512kib(self):
        pricing = STORAGE_PRICES["s3-express"]
        small = pricing.read_cost(1, total_bytes=256 * units.KiB)
        large = pricing.read_cost(1, total_bytes=8 * units.MiB)
        assert small == pytest.approx(pricing.read_request)
        assert large > 10 * small


class TestLambdaPricing:
    def test_invocation_cost_components(self):
        # 1 GiB for 1 s: request price + one GiB-second.
        cost = LAMBDA_PRICING.invocation_cost(units.GiB, 1.0)
        assert cost == pytest.approx(0.20 / 1e6 + 1.33334e-5)

    def test_ephemeral_storage_free_tier(self):
        base = LAMBDA_PRICING.invocation_cost(units.GiB, 1.0)
        with_free = LAMBDA_PRICING.invocation_cost(
            units.GiB, 1.0, ephemeral_bytes=512 * units.MiB)
        assert with_free == pytest.approx(base)
        with_extra = LAMBDA_PRICING.invocation_cost(
            units.GiB, 1.0, ephemeral_bytes=1536 * units.MiB)
        assert with_extra > base

    def test_memory_for_vcpus(self):
        assert LAMBDA_PRICING.memory_for_vcpus(4) == 4 * 1769 * units.MiB


class TestCostCalculator:
    def test_vm_minimum_billing_minute(self):
        calc = CostCalculator()
        cost = calc.add_vm_time("c6g.xlarge", duration_s=5.0)
        assert cost == pytest.approx(0.136 * 60 / 3600)

    def test_vm_reserved_discount(self):
        calc = CostCalculator()
        on_demand = calc.add_vm_time("c6g.xlarge", duration_s=3600.0)
        reserved = calc.add_vm_time("c6g.xlarge", duration_s=3600.0,
                                    reserved=True)
        assert reserved < on_demand

    def test_storage_request_accounting_counts_failures(self):
        calc = CostCalculator()
        stats = RequestStats()
        stats.record(RequestType.GET, "ok", count=900)
        stats.record(RequestType.GET, "throttled", count=100)
        cost = calc.add_storage_requests("s3-standard", stats)
        assert cost == pytest.approx(1000 * 0.40 / 1e6)

    def test_total_is_sum_of_components(self):
        calc = CostCalculator()
        calc.add_function_invocation(units.GiB, 10.0)
        calc.add_vm_time("c6g.xlarge", 3600.0)
        stats = RequestStats()
        stats.record(RequestType.GET, "ok", count=1_000_000)
        calc.add_storage_requests("s3-standard", stats)
        total = (calc.cost.compute_faas + calc.cost.compute_iaas
                 + calc.cost.storage_requests + calc.cost.storage_transfer
                 + calc.cost.storage_capacity)
        assert calc.cost.total == pytest.approx(total)

    def test_s3_warm_iops_cost_matches_paper(self):
        """Section 2.2: keeping S3 warm for 100K IOPS costs $144/hour."""
        calc = CostCalculator()
        assert calc.s3_warm_iops_cost_per_hour(100_000) == pytest.approx(144.0)

    def test_throughput_cost_ranking_matches_section_431(self):
        """S3 is by far the most cost-efficient for throughput."""
        s3 = cost_per_gib_per_s_read("s3-standard", 64 * units.MiB)
        ddb = cost_per_gib_per_s_read("dynamodb", 400 * units.KiB)
        efs = cost_per_gib_per_s_read("efs", 4 * units.MiB)
        assert s3 == pytest.approx(0.00064, rel=0.05)
        assert ddb == pytest.approx(6.55, rel=0.05)
        assert efs == pytest.approx(3.00, rel=0.05)
        assert s3 < efs < ddb


class TestBreakEvenIntervals:
    """Table 7 shape checks (exact values are in the benchmark)."""

    def ram_rent_per_mib_hour(self):
        return MARGINAL_RAM_PER_GIB_HOUR / 1024.0

    def nvme_tier(self):
        # Calibrated NVMe: c6gd-class local SSD (see benchmarks/table7).
        return CapacityTier(name="nvme", rent_per_hour=0.17,
                            iops=427_000, bandwidth=2 * units.GiB)

    def test_ram_ssd_break_even_tens_of_seconds(self):
        bei = break_even_interval_capacity(4 * units.KiB, self.nvme_tier(),
                                           self.ram_rent_per_mib_hour())
        assert 20 <= bei <= 60  # paper: 38 s

    def test_ram_ssd_flat_beyond_bandwidth_knee(self):
        """Larger accesses don't shorten the interval: bandwidth binds."""
        tier = self.nvme_tier()
        ram = self.ram_rent_per_mib_hour()
        bei_16k = break_even_interval_capacity(16 * units.KiB, tier, ram)
        bei_16m = break_even_interval_capacity(16 * units.MiB, tier, ram)
        assert bei_16k == pytest.approx(bei_16m, rel=0.01)

    def test_ram_s3_day_scale_at_4kib(self):
        bei = break_even_interval_requests(
            4 * units.KiB, STORAGE_PRICES["s3-standard"],
            self.ram_rent_per_mib_hour())
        assert 1.0 <= bei / units.DAY <= 3.0  # paper: 2 d

    def test_ram_s3_seconds_at_16mib(self):
        bei = break_even_interval_requests(
            16 * units.MiB, STORAGE_PRICES["s3-standard"],
            self.ram_rent_per_mib_hour())
        assert 20 <= bei <= 80  # paper: 41 s

    def test_transfer_fees_break_inverse_proportionality(self):
        """Section 5.3.1: S3 Express BEI stops shrinking with size."""
        ram = self.ram_rent_per_mib_hour()
        express = STORAGE_PRICES["s3-express"]
        bei_4m = break_even_interval_requests(4 * units.MiB, express, ram)
        bei_16m = break_even_interval_requests(16 * units.MiB, express, ram)
        # Standard S3 shrinks 4x over this range; Express must not.
        assert bei_16m > bei_4m / 2

    def test_invalid_access_size_rejected(self):
        with pytest.raises(ValueError):
            break_even_interval_requests(0, STORAGE_PRICES["s3-standard"], 1.0)


class TestBreakEvenAccessSize:
    def test_c6g_xlarge_s3_standard_about_2_mib(self):
        instance = ec2_instance("c6g.xlarge")
        beas = break_even_access_size(STORAGE_PRICES["s3-standard"],
                                      server_bandwidth=instance.network_baseline,
                                      server_rent_per_hour=instance.hourly_usd)
        assert beas == pytest.approx(2 * units.MiB, rel=0.35)

    def test_constant_within_instance_family(self):
        xlarge = ec2_instance("c6g.xlarge")
        big = ec2_instance("c6g.8xlarge")
        beas_xl = break_even_access_size(STORAGE_PRICES["s3-standard"],
                                         xlarge.network_baseline,
                                         xlarge.hourly_usd)
        beas_big = break_even_access_size(STORAGE_PRICES["s3-standard"],
                                          big.network_baseline,
                                          big.hourly_usd)
        assert beas_big == pytest.approx(beas_xl, rel=0.35)

    def test_s3_express_never_breaks_even(self):
        instance = ec2_instance("c6gn.xlarge")
        beas = break_even_access_size(STORAGE_PRICES["s3-express"],
                                      instance.network_baseline,
                                      instance.hourly_usd, read=False)
        assert beas is None

    def test_reserved_pricing_raises_break_even(self):
        instance = ec2_instance("c6gn.xlarge")
        on_demand = break_even_access_size(STORAGE_PRICES["s3-standard"],
                                           instance.network_baseline,
                                           instance.hourly_usd)
        reserved = break_even_access_size(STORAGE_PRICES["s3-standard"],
                                          instance.network_baseline,
                                          instance.reserved_hourly_usd)
        assert reserved > on_demand


class TestFaasBreakEven:
    def test_paper_q6_figures(self):
        """Table 6: Q6 at 4.87 cents/query vs 201 C6g.xlarge VMs -> 558 Q/h."""
        qph = faas_break_even_queries_per_hour(
            faas_cost_per_query=0.0487, vm_hourly_usd=0.136, peak_vms=201)
        assert qph == pytest.approx(561, rel=0.02)

    def test_paper_q12_figures(self):
        qph = faas_break_even_queries_per_hour(
            faas_cost_per_query=0.2119, vm_hourly_usd=0.136, peak_vms=284)
        assert qph == pytest.approx(182, rel=0.45)  # paper reports 128

    def test_zero_cost_rejected(self):
        with pytest.raises(ValueError):
            faas_break_even_queries_per_hour(0.0, 0.136, 10)


class TestPeakToAverage:
    def test_uniform_stages_give_ratio_one(self):
        assert peak_to_average_node_ratio([10, 10], [1.0, 1.0]) == 1.0

    def test_skewed_stages(self):
        # 284 nodes for 10 s then 1 node for 10 s -> avg 142.5, peak 284.
        ratio = peak_to_average_node_ratio([284, 1], [10.0, 10.0])
        assert ratio == pytest.approx(284 / 142.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            peak_to_average_node_ratio([1], [])
        with pytest.raises(ValueError):
            peak_to_average_node_ratio([1], [0.0])


class TestAdaptiveProvisioning:
    """Section 5.2: adaptive clusters lower the break-even proportionally."""

    def test_fraction_scales_break_even_linearly(self):
        base = faas_break_even_queries_per_hour(0.05, 0.136, 100)
        adaptive = faas_break_even_queries_per_hour(
            0.05, 0.136, 100, provisioned_cost_fraction=0.41)
        assert adaptive == pytest.approx(0.41 * base)

    def test_peak_to_average_gives_the_adaptive_fraction(self):
        """A cluster sized by the time-weighted average rather than the
        peak pays 1/ratio of the peak-provisioned cost."""
        ratio = peak_to_average_node_ratio([284, 1], [10.0, 10.0])
        base = faas_break_even_queries_per_hour(0.2119, 0.136, 284)
        adaptive = faas_break_even_queries_per_hour(
            0.2119, 0.136, 284, provisioned_cost_fraction=1.0 / ratio)
        assert adaptive == pytest.approx(base / ratio)

    def test_fraction_bounds_validated(self):
        with pytest.raises(ValueError):
            faas_break_even_queries_per_hour(
                0.05, 0.136, 10, provisioned_cost_fraction=0.0)
        with pytest.raises(ValueError):
            faas_break_even_queries_per_hour(
                0.05, 0.136, 10, provisioned_cost_fraction=1.5)
