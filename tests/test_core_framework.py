"""Tests for the Skyrise evaluation framework (configs, driver, plotter)."""

import json

import pytest

from repro import units
from repro.core import (
    CloudSim,
    Driver,
    ExperimentConfig,
    ExperimentResult,
    ascii_bars,
    ascii_timeseries,
    format_table,
)
from repro.core.micro import (
    measure_idle_lifetime,
    measure_startup_latency,
    run_function_network_burst,
    run_storage_iops,
    run_storage_latency,
    run_storage_throughput,
)


class TestConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment kind"):
            ExperimentConfig(name="x", kind="quantum-annealing")

    def test_json_roundtrip(self):
        config = ExperimentConfig(name="net", kind="network-burst",
                                  parameters={"duration": 5.0}, seed=3)
        back = ExperimentConfig.from_json(config.to_json())
        assert back == config


class TestResults:
    def test_save_and_load(self, tmp_path):
        result = ExperimentResult(name="r", kind="network-burst",
                                  metrics={"x": 1.5}, cost_usd=0.2)
        result.add_series("s", [0, 1], [2.0, 3.0])
        path = result.save(tmp_path / "out" / "r.json")
        loaded = ExperimentResult.load(path)
        assert loaded.metrics == {"x": 1.5}
        assert loaded.series["s"] == [(0.0, 2.0), (1.0, 3.0)]
        assert json.loads(path.read_text())["cost_usd"] == 0.2


class TestPlotter:
    def test_timeseries_renders(self):
        chart = ascii_timeseries([(0, 0.0), (1, 5.0), (2, 2.5)],
                                 width=20, height=5, title="demo")
        assert "demo" in chart
        assert "*" in chart

    def test_timeseries_empty(self):
        assert "(no data)" in ascii_timeseries([])

    def test_bars_render(self):
        chart = ascii_bars({"a": 10.0, "b": 5.0}, title="bars")
        assert "a" in chart and "#" in chart

    def test_table_alignment_and_validation(self):
        table = format_table(["q", "runtime"], [["q6", 5.2], ["q12", 18.1]])
        assert "q6" in table and "18.1" in table
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestCloudSim:
    def test_services_cached(self):
        sim = CloudSim(seed=0)
        assert sim.s3() is sim.s3()
        assert sim.service("s3-standard") is sim.s3()
        assert sim.efs(2) is sim.service("efs-2")

    def test_unknown_service_rejected(self):
        with pytest.raises(KeyError):
            CloudSim().service("glacier")

    def test_vpc_link_created_on_demand(self):
        assert CloudSim(use_vpc=True).vpc_link is not None
        assert CloudSim().vpc_link is None


class TestNetworkMicrobenchmarks:
    def test_function_burst_profile(self):
        sim = CloudSim(seed=1)
        first, second = run_function_network_burst(sim, duration=3.0,
                                                   break_s=2.0)
        profile = first.burst_profile()
        assert profile.burst_rate == pytest.approx(1.2 * units.GiB, rel=0.1)
        assert profile.baseline_rate == pytest.approx(75 * units.MiB,
                                                      rel=0.25)
        # Second burst is smaller: half-refilled bucket.
        assert second.burst_profile().bucket_bytes < profile.bucket_bytes


class TestStorageMicrobenchmarks:
    def test_throughput_s3_scales_linearly(self):
        sim = CloudSim(seed=2)
        one = run_storage_throughput(sim, "s3-standard", clients=1,
                                     object_bytes=64 * units.MiB)
        many = run_storage_throughput(sim, "s3-standard", clients=128,
                                      object_bytes=64 * units.MiB)
        assert many.achieved == pytest.approx(128 * one.achieved, rel=0.01)
        assert 150 <= many.achieved_gib_s <= 400  # ~250 GiB/s scale

    def test_throughput_dynamodb_saturated_by_one_client(self):
        sim = CloudSim(seed=2)
        one = run_storage_throughput(sim, "dynamodb", clients=1,
                                     object_bytes=400 * units.KiB)
        many = run_storage_throughput(sim, "dynamodb", clients=16,
                                      object_bytes=400 * units.KiB)
        assert one.achieved == pytest.approx(380 * units.MiB, rel=0.05)
        assert many.achieved == pytest.approx(one.achieved, rel=0.05)

    def test_throughput_efs_converges_to_quota(self):
        sim = CloudSim(seed=2)
        result = run_storage_throughput(sim, "efs-1", clients=64,
                                        object_bytes=4 * units.MiB)
        assert result.achieved == pytest.approx(20 * units.GiB, rel=0.05)
        writes = run_storage_throughput(sim, "efs-1", clients=64,
                                        object_bytes=4 * units.MiB,
                                        direction="write")
        assert writes.achieved == pytest.approx(5 * units.GiB, rel=0.05)

    def test_iops_ordering_matches_figure9(self):
        sim = CloudSim(seed=3)
        express = run_storage_iops(sim, "s3-express")
        standard = run_storage_iops(CloudSim(seed=3), "s3-standard")
        ddb = run_storage_iops(CloudSim(seed=3), "dynamodb")
        efs = run_storage_iops(CloudSim(seed=3), "efs-1")
        assert express.achieved_read > ddb.achieved_read > efs.achieved_read
        assert efs.achieved_read > standard.achieved_read
        assert express.achieved_read == pytest.approx(220_000)
        assert standard.achieved_read == pytest.approx(5_500)

    def test_latency_experiment_percentiles(self):
        sim = CloudSim(seed=4)
        outcome = run_storage_latency(sim, "s3-standard",
                                      request_count=200_000)
        assert outcome["read"]["p50"] == pytest.approx(0.027, rel=0.1)
        assert outcome["read"]["max"] > 20 * outcome["read"]["p50"]


class TestMinimalFunction:
    def test_startup_latency_cold_exceeds_warm(self):
        sim = CloudSim(seed=5)
        result = measure_startup_latency(sim, binary_bytes=units.MiB,
                                         repetitions=10)
        # Coldstarts (~0.1 s for a 1 MiB binary) dominate the ~25 ms
        # warm routing overhead.
        assert result.cold_median > 3 * result.warm_median
        assert result.warm_median < 0.04

    def test_idle_lifetime_decreases_with_gap(self):
        sim = CloudSim(seed=6)
        fractions = measure_idle_lifetime(sim, gaps_s=[30.0, 3600.0],
                                          probes_per_gap=8)
        assert fractions[30.0] >= fractions[3600.0]
        assert fractions[30.0] >= 0.8
        assert fractions[3600.0] <= 0.2


class TestDriver:
    def test_driver_runs_network_burst_config(self):
        driver = Driver()
        result = driver.run(ExperimentConfig(
            name="fig5", kind="network-burst",
            parameters={"duration": 2.0, "break_s": 1.0}))
        assert result.metrics["burst_rate_gib_s"] == pytest.approx(1.2,
                                                                   rel=0.1)
        assert "first_burst" in result.series
        assert result.cost_usd > 0

    def test_driver_runs_storage_latency_config(self):
        driver = Driver()
        result = driver.run(ExperimentConfig(
            name="fig10", kind="storage-latency",
            parameters={"service": "dynamodb", "requests": 50_000}))
        assert result.metrics["read_p50_ms"] == pytest.approx(4.0, rel=0.15)

    def test_driver_rejects_unhandled_kind(self):
        driver = Driver()
        config = ExperimentConfig(name="x", kind="query")
        config.kind = "mystery"  # bypass validation to hit the driver path
        with pytest.raises(ValueError, match="cannot run"):
            driver.run(config)
