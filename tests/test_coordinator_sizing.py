"""Unit tests for the coordinator's distributed-plan compilation."""

import pytest

from repro import units
from repro.datagen.datasets import PartitionInfo, TableMetadata
from repro.datagen.tpch import LINEITEM_SCHEMA
from repro.engine.coordinator import (
    CoordinatorRuntime,
    _compile_fragments,
    _consumer_fragments,
    _fragment_payloads,
    _read_fraction,
)
from repro.engine.queries import tpch_q6


def make_table(partitions: int, partition_mib: float = 182.4
               ) -> TableMetadata:
    metadata = TableMetadata(name="lineitem", schema=LINEITEM_SCHEMA)
    for index in range(partitions):
        metadata.partitions.append(PartitionInfo(
            key=f"tables/lineitem/part-{index:05d}",
            logical_bytes=partition_mib * units.MiB,
            physical_bytes=10_000, rows=64))
    return metadata


def make_runtime(partitions: int = 996) -> CoordinatorRuntime:
    return CoordinatorRuntime(
        catalog={"lineitem": make_table(partitions)},
        backend=None, worker_function="w", invoker_function="i")


class TestReadFraction:
    def test_q6_projection_fraction(self):
        """Q6 reads 4 fixed-width columns of lineitem's 11: 28/100 bytes."""
        table = make_table(1)
        fraction = _read_fraction(table, ["l_shipdate", "l_discount",
                                          "l_quantity", "l_extendedprice"])
        assert fraction == pytest.approx(0.28)

    def test_full_projection_is_one(self):
        table = make_table(1)
        assert _read_fraction(table, table.schema.names()) == 1.0


class TestBurstAwareSizing:
    def test_q6_at_sf1000_lands_near_the_paper_fleet(self):
        """996 partitions x 51 MiB effective / 270 MiB budget ~ 189
        workers — the same regime as the paper's 201."""
        runtime = make_runtime(996)
        fragments = _compile_fragments(runtime, tpch_q6())
        assert 150 <= fragments["scan"] <= 220
        assert fragments["final"] == 1

    def test_fragments_never_exceed_partitions(self):
        runtime = make_runtime(4)
        fragments = _compile_fragments(runtime, tpch_q6())
        assert fragments["scan"] <= 4

    def test_explicit_override_wins(self):
        runtime = make_runtime(996)
        fragments = _compile_fragments(runtime, tpch_q6(scan_fragments=42))
        assert fragments["scan"] == 42

    def test_per_worker_volume_stays_within_budget(self):
        runtime = make_runtime(996)
        plan = tpch_q6()
        fragments = _compile_fragments(runtime, plan)
        table = runtime.catalog["lineitem"]
        fraction = _read_fraction(table, plan.pipeline("scan").source.columns)
        per_worker = (table.total_logical_bytes * fraction
                      / fragments["scan"])
        assert per_worker <= 300 * units.MiB


class TestFragmentPayloads:
    def test_partition_assignment_is_a_partition_of_the_table(self):
        runtime = make_runtime(10)
        plan = tpch_q6(scan_fragments=3)
        fragments = _compile_fragments(runtime, plan)
        payloads = _fragment_payloads(runtime, plan, plan.pipeline("scan"),
                                      fragments)
        assert len(payloads) == 3
        assigned = [p["key"] for payload in payloads
                    for p in payload["partitions"]]
        table = runtime.catalog["lineitem"]
        assert sorted(assigned) == sorted(p.key for p in table.partitions)
        counts = [len(payload["partitions"]) for payload in payloads]
        assert max(counts) - min(counts) <= 1  # even distribution

    def test_consumer_fragment_count_reaches_producers(self):
        runtime = make_runtime(10)
        plan = tpch_q6(scan_fragments=5)
        fragments = _compile_fragments(runtime, plan)
        scan = plan.pipeline("scan")
        assert _consumer_fragments(plan, scan, fragments) \
            == fragments["final"]
        payloads = _fragment_payloads(runtime, plan, scan, fragments)
        assert all(p["out_partitions"] == fragments["final"]
                   for p in payloads)

    def test_shuffle_consumer_payload_names_producers(self):
        runtime = make_runtime(10)
        plan = tpch_q6(scan_fragments=5)
        fragments = _compile_fragments(runtime, plan)
        final = plan.pipeline("final")
        payloads = _fragment_payloads(runtime, plan, final, fragments)
        assert payloads[0]["producer_fragments"] == {"scan": 5}
