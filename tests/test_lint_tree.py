"""The repository-wide lint gate, and sanity checks on the layer DAG."""

from pathlib import Path

import pytest

from repro.lint import all_checkers, all_project_checkers, lint_tree
from repro.lint.arch import layer_of
from repro.lint.baseline import Baseline, diff_against_baseline
from repro.lint.cli import DEFAULT_BASELINE
from repro.lint.framework import iter_python_files, module_name_from_path
from repro.lint.layer_dag import ALLOWED, LAYERS

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


class TestTreeGate:
    def test_source_tree_is_lint_clean(self, monkeypatch):
        """The committed tree passes the CI gate: no new findings, no
        stale baseline entries. (Same check `repro lint --strict` runs.)
        """
        monkeypatch.chdir(REPO_ROOT)
        findings = lint_tree([Path("src/repro")], all_checkers(),
                             all_project_checkers())
        baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE)
        new, _, stale = diff_against_baseline(findings, baseline)
        assert new == [], "\n".join(f.format() for f in new)
        assert stale == []

    def test_every_source_module_has_a_layer(self):
        unmapped = []
        for file in iter_python_files([SRC]):
            module = module_name_from_path(file.as_posix())
            if module is not None and layer_of(module) is None:
                unmapped.append(module)
        assert unmapped == []


class TestLayerDag:
    def test_layers_and_allowed_keys_match(self):
        assert set(LAYERS) == set(ALLOWED)

    def test_allowed_references_exist(self):
        for layer, deps in ALLOWED.items():
            unknown = [d for d in deps if d not in LAYERS]
            assert unknown == [], f"{layer} allows unknown layers {unknown}"
            assert layer not in deps, f"{layer} lists itself (implicit)"

    def test_prefixes_unique(self):
        seen = {}
        for layer, prefixes in LAYERS.items():
            for prefix in prefixes:
                assert prefix not in seen, \
                    f"{prefix} claimed by both {seen[prefix]} and {layer}"
                seen[prefix] = layer

    def test_dag_is_acyclic(self):
        """Kahn's algorithm must consume every layer — a leftover means
        the "DAG" has a cycle and the layering contract is meaningless.
        """
        indegree = {layer: len(ALLOWED[layer]) for layer in LAYERS}
        dependants = {layer: [] for layer in LAYERS}
        for layer, deps in ALLOWED.items():
            for dep in deps:
                dependants[dep].append(layer)
        ready = sorted(layer for layer, n in indegree.items() if n == 0)
        order = []
        while ready:
            layer = ready.pop()
            order.append(layer)
            for dependant in dependants[layer]:
                indegree[dependant] -= 1
                if indegree[dependant] == 0:
                    ready.append(dependant)
        cyclic = sorted(set(LAYERS) - set(order))
        assert cyclic == [], f"cycle through layers {cyclic}"

    @pytest.mark.parametrize("module,layer", [
        ("repro", "util"),
        ("repro.units", "util"),
        ("repro.sim.kernel", "sim"),
        ("repro.serve", "service"),
        ("repro.serve.service", "service"),
        ("repro.serve.gateway", "serve"),
        ("repro.chaos.runner", "service"),
        ("repro.chaos.faults", "chaos"),
        ("repro.cli", "app"),
        ("repro.unknown_package.x", None),
    ])
    def test_layer_assignment_most_specific_prefix(self, module, layer):
        assert layer_of(module) == layer
