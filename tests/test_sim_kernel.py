"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 5.0
    assert env.now == 5.0


def test_timeout_value_passthrough():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1.0, value="payload")
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == "payload"


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_sequential_timeouts_accumulate():
    env = Environment()
    trace = []

    def proc(env):
        for delay in (1.0, 2.0, 3.0):
            yield env.timeout(delay)
            trace.append(env.now)

    env.process(proc(env))
    env.run()
    assert trace == [1.0, 3.0, 6.0]


def test_two_processes_interleave():
    env = Environment()
    trace = []

    def ticker(env, name, period):
        for _ in range(3):
            yield env.timeout(period)
            trace.append((name, env.now))

    env.process(ticker(env, "a", 1.0))
    env.process(ticker(env, "b", 1.5))
    env.run()
    # At t=3.0 both tick; "b" scheduled its timeout earlier (at t=1.5),
    # so FIFO tie-breaking runs it first.
    assert trace == [
        ("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0), ("a", 3.0), ("b", 4.5),
    ]


def test_run_until_time_stops_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(100.0)

    env.process(proc(env))
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return 42

    p = env.process(proc(env))
    result = env.run(until=p)
    assert result == 42
    assert env.now == 2.0


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_wait_on_process_event():
    env = Environment()

    def child(env):
        yield env.timeout(3.0)
        return "done"

    def parent(env):
        value = yield env.process(child(env))
        return (value, env.now)

    p = env.process(parent(env))
    env.run()
    assert p.value == ("done", 3.0)


def test_uncaught_exception_propagates_from_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_waiting_process_receives_failure():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("inner")

    def parent(env):
        try:
            yield env.process(bad(env))
        except ValueError as exc:
            return str(exc)

    p = env.process(parent(env))
    env.run()
    assert p.value == "inner"


def test_interrupt_delivers_cause():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            return (interrupt.cause, env.now)

    def interrupter(env, victim):
        yield env.timeout(5.0)
        victim.interrupt(cause="wakeup")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == ("wakeup", 5.0)


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_event_succeed_once_only():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="one")
        t2 = env.timeout(4.0, value="four")
        values = yield AllOf(env, [t1, t2])
        return (sorted(values.values()), env.now)

    p = env.process(proc(env))
    env.run()
    assert p.value == (["four", "one"], 4.0)


def test_any_of_triggers_on_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(10.0, value="slow")
        values = yield AnyOf(env, [t1, t2])
        return (list(values.values()), env.now)

    p = env.process(proc(env))
    env.run()
    assert p.value == (["fast"], 1.0)


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def proc(env):
        yield AllOf(env, [])
        return env.now

    p = env.process(proc(env))
    env.run()
    assert p.value == 0.0


def test_deterministic_tie_breaking_is_fifo():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for name in ("first", "second", "third"):
        env.process(proc(env, name))
    env.run()
    assert order == ["first", "second", "third"]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0
    env.run()
    assert env.peek() == float("inf")


def test_condition_absorbs_late_concurrent_failures():
    """A second process failing after AnyOf/AllOf already triggered must
    not crash the simulation (its failure is absorbed by the condition)."""
    env = Environment()

    def fail_at(env, t, message):
        yield env.timeout(t)
        raise RuntimeError(message)

    def parent(env):
        first = env.process(fail_at(env, 1.0, "first"))
        second = env.process(fail_at(env, 2.0, "second"))
        try:
            yield AllOf(env, [first, second])
        except RuntimeError as exc:
            caught = str(exc)
        # Let the second failure land while nobody is waiting on it.
        yield env.timeout(5.0)
        return caught

    p = env.process(parent(env))
    env.run()
    assert p.value == "first"


def test_any_of_with_failure_fails_fast():
    env = Environment()

    def ok(env):
        yield env.timeout(10.0)
        return "late"

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("early failure")

    def parent(env):
        try:
            yield AnyOf(env, [env.process(ok(env)), env.process(bad(env))])
        except ValueError as exc:
            return (str(exc), env.now)

    p = env.process(parent(env))
    env.run()
    assert p.value == ("early failure", 1.0)
