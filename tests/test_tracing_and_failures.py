"""Tests for query tracing, failure injection, and straggler handling."""

import pytest

from repro import units
from repro.core import CloudSim
from repro.datagen import load_table, scaled_spec
from repro.engine import SkyriseEngine
from repro.engine.io import IoStack
from repro.engine.queries import tpch_q6, tpch_q12
from repro.engine.tracing import QueryTrace, WorkerSpan, trace_from_records
from repro.network import Fabric
from repro.sim import Environment, RandomStreams
from repro.storage import S3Standard
from repro.storage.errors import ItemTooLarge, NoSuchKey


def build_engine(sim, partitions=4, rows=128):
    s3 = sim.s3()
    metadata = sim.run(load_table(
        sim.env, s3, scaled_spec("lineitem", partitions,
                                 rows_per_partition=rows)))
    engine = SkyriseEngine(sim.env, sim.platform,
                           storage={"s3-standard": s3})
    engine.register_table(metadata)
    engine.deploy()
    return engine


class TestTracing:
    def test_trace_from_engine_records(self):
        sim = CloudSim(seed=40)
        engine = build_engine(sim)
        sim.run(engine.run_query(tpch_q6(scan_fragments=4)))
        trace = trace_from_records("tpch-q6", sim.platform.records)
        assert set(trace.pipelines()) == {"scan", "final"}
        assert len(trace.stage("scan")) == 4
        assert trace.makespan() > 0
        for span in trace.spans:
            assert span.finished_at >= span.started_at >= span.requested_at

    def test_gantt_renders_stage_rows(self):
        sim = CloudSim(seed=40)
        engine = build_engine(sim)
        sim.run(engine.run_query(tpch_q6(scan_fragments=3)))
        trace = trace_from_records("tpch-q6", sim.platform.records)
        chart = trace.render_gantt(width=40)
        assert "[scan]" in chart and "[final]" in chart
        assert "#" in chart
        # First run: every worker is a coldstart.
        assert "C" in chart

    def test_skew_and_stragglers(self):
        trace = QueryTrace(query_id="q")
        for fragment, duration in enumerate([1.0, 1.0, 1.0, 5.0]):
            trace.spans.append(WorkerSpan(
                pipeline="scan", fragment=fragment, requested_at=0.0,
                started_at=0.0, finished_at=duration, cold=False))
        assert trace.skew("scan") == pytest.approx(5.0)
        stragglers = trace.stragglers("scan", factor=2.0)
        assert [span.fragment for span in stragglers] == [3]

    def test_empty_trace_degrades_gracefully(self):
        trace = QueryTrace(query_id="empty")
        assert trace.makespan() == 0.0
        assert trace.skew("scan") == 1.0
        assert "(no spans)" in trace.render_gantt()


class TestFailureInjection:
    def test_missing_partition_fails_query_with_context(self):
        sim = CloudSim(seed=41)
        engine = build_engine(sim)
        # Inject: delete a base-table partition behind the catalog's back.
        victim = engine.catalog["lineitem"].partitions[2].key
        sim.s3().delete(victim)

        def scenario(env):
            try:
                yield from engine.run_query(tpch_q6(scan_fragments=4))
            except NoSuchKey as exc:
                return str(exc)

        outcome = sim.run(sim.env.process(scenario(sim.env)))
        assert victim in outcome

    def test_worker_crash_propagates_to_caller(self):
        sim = CloudSim(seed=41)
        engine = build_engine(sim)
        plan = tpch_q12(join_fragments=2)  # orders table never registered

        def scenario(env):
            try:
                yield from engine.run_query(plan)
            except KeyError as exc:
                return str(exc)

        outcome = sim.run(sim.env.process(scenario(sim.env)))
        assert "orders" in outcome

    def test_oversized_shuffle_slice_to_dynamodb_rejected(self):
        """Why object storage: key-value stores cap items at 400 KiB."""
        sim = CloudSim(seed=41)
        ddb = sim.dynamodb()

        def attempt(env):
            try:
                yield from ddb.put("shuffle/slice", b"",
                                   size=2 * units.MiB)
            except ItemTooLarge:
                return "rejected"

        assert sim.run(sim.env.process(attempt(sim.env))) == "rejected"


class TestStragglerRetrigger:
    def test_slow_first_byte_is_retriggered(self):
        """A chunk whose first-byte latency exceeds the size-based
        timeout is abandoned and re-issued (Section 3.2)."""
        env = Environment()
        fabric = Fabric(env)
        rng = RandomStreams(seed=9)
        s3 = S3Standard(env, fabric, rng)

        def put(env):
            yield from s3.put("k", b"v", size=units.KiB)

        proc = env.process(put(env))
        env.run(until=proc)

        # Rig the latency sampler: first draw a pathological straggler,
        # then normal latencies.
        draws = iter([30.0, 0.02, 0.02, 0.02])
        s3.read_latency = type(s3.read_latency)(
            median=0.02, p95=0.03, ceiling=60.0)
        original = s3.read_latency.sample_one
        s3.read_latency = s3.read_latency  # keep the dataclass
        sampler_calls = []

        class RiggedModel:
            median = 0.02

            def sample_one(self, _rng):
                sampler_calls.append(1)
                return next(draws)

        rigged = RiggedModel()
        s3.read_latency = rigged
        del original

        io = IoStack(env, s3, fabric.endpoint("w"))
        proc = env.process(io.read_object("k", logical_bytes=units.KiB))
        env.run(until=proc)
        # The straggler was abandoned (retried) and the retry succeeded
        # far sooner than the 30 s pathological draw.
        assert io.stats.retried >= 1
        assert env.now < 10.0
        assert len(sampler_calls) >= 2
