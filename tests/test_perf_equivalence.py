"""Perf-refactor equivalence: optimized hot paths change no simulated outcome.

PR 5 rewires the simulator's hot paths (kernel fast path, incremental
max-min fabric, columnar chunk cache). These tests pin the *simulated*
results to goldens generated before the optimization: byte-identical
canonical JSON for the Q6 telemetry artifacts, the chaos resilience
report, and a serving-window outcome. Only real (wall-clock) time is
allowed to change.

Regenerate after an *intentional* model change::

    PYTHONPATH=src python tests/golden/regen_perf_goldens.py
"""

from pathlib import Path

from tests.test_telemetry_export import record_q6

from repro.chaos.runner import run_chaos_suite
from repro.serve import default_tenant_mix, run_serving_workload
from repro.telemetry import canonical_json, metrics_snapshot

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN_HINT = ("golden file missing; generate with "
              "PYTHONPATH=src python tests/golden/regen_perf_goldens.py")


def _golden(name: str) -> str:
    path = GOLDEN_DIR / name
    assert path.exists(), REGEN_HINT
    return path.read_text()


def test_q6_metrics_snapshot_matches_golden():
    _, recorder = record_q6()
    snapshot = canonical_json(metrics_snapshot(recorder)) + "\n"
    assert snapshot == _golden("tpch_q6_metrics.json")


def test_smoke_resilience_report_matches_golden():
    report = run_chaos_suite("smoke", queries=("tpch-q6",), repeats=2,
                             seed=0, baseline=False)
    assert report.to_json() + "\n" == _golden("smoke_resilience.json")


def test_serving_outcome_matches_golden():
    outcome = run_serving_workload(
        default_tenant_mix(rate_scale=6.0), policy="fair", window_s=180.0,
        seed=1, max_concurrent_queries=1)
    assert outcome.to_json() + "\n" == _golden("serving_fair_180s.json")
