"""Whole-program lint: project index, the five new checkers, and the
byte-determinism property over bundle orderings."""

import textwrap
from pathlib import Path

from hypothesis import given
from hypothesis import strategies as st

from repro.lint import (
    all_checkers,
    all_project_checkers,
    lint_bundle,
)
from repro.lint.concurrency import (
    CrossDomainAliasChecker,
    SharedStateChecker,
)
from repro.lint.framework import SourceModule
from repro.lint.lifecycle import (
    ResourceLifecycleChecker,
    SwallowedExceptionChecker,
)
from repro.lint.project import ProjectIndex, build_module_index
from repro.lint.provenance import SeedProvenanceChecker
from repro.lint.selftest import FIXTURES, fixture_path

REPO_ROOT = Path(__file__).resolve().parent.parent


def mod(module, source):
    return SourceModule(path=f"<t:{module}>",
                        source=textwrap.dedent(source), module=module)


def checks(findings):
    return [f.check for f in findings]


class TestProjectIndex:
    def test_import_graph_and_reachability(self):
        bundle = [
            mod("repro.sim.root", "import repro.formats.leaf\n"),
            mod("repro.formats.leaf", "X = 1\n"),
            mod("repro.formats.island", "Y = 2\n"),
        ]
        index = ProjectIndex([build_module_index(m) for m in bundle])
        assert "repro.sim.root" in index.domain_reachable
        assert "repro.formats.leaf" in index.domain_reachable
        assert "repro.formats.island" not in index.domain_reachable

    def test_importing_a_domain_package_makes_a_root(self):
        bundle = [
            mod("repro.serve.gw", "import repro.shard\n"
                                  "import repro.formats.leaf\n"),
            mod("repro.formats.leaf", "X = 1\n"),
        ]
        index = ProjectIndex([build_module_index(m) for m in bundle])
        assert "repro.serve.gw" in index.domain_reachable
        assert "repro.formats.leaf" in index.domain_reachable


class TestSeedProvenance:
    OWNER = """\
        import numpy as np
        GEN = np.random.default_rng(7)
    """

    def test_cross_layer_draw_flagged(self):
        bundle = [
            mod("repro.sim.owner_mod", self.OWNER),
            mod("repro.engine.drawer", """\
                from repro.sim.owner_mod import GEN

                def f():
                    return GEN.random()
            """),
        ]
        findings = lint_bundle(bundle, [], [SeedProvenanceChecker()])
        assert checks(findings) == ["DET005"]
        assert findings[0].path == "<t:repro.engine.drawer>"
        assert "repro.sim.owner_mod" in findings[0].message

    def test_same_layer_draw_ok(self):
        bundle = [
            mod("repro.sim.owner_mod", self.OWNER),
            mod("repro.sim.peer", """\
                from repro.sim.owner_mod import GEN

                def f():
                    return GEN.random()
            """),
        ]
        assert lint_bundle(bundle, [], [SeedProvenanceChecker()]) == []

    def test_unstable_seed_flagged(self):
        bundle = [mod("repro.sim.seeds", """\
            import numpy as np
            import random

            def f(x, name):
                a = np.random.default_rng(id(x))
                b = random.Random(hash(name))
                c = np.random.default_rng(7)
                return a, b, c
        """)]
        findings = lint_bundle(bundle, [], [SeedProvenanceChecker()])
        assert checks(findings) == ["DET005", "DET005"]
        assert "id()" in findings[0].message
        assert "hash()" in findings[1].message


class TestSharedState:
    MUTATOR = """\
        REG = {}
        MODE = "idle"

        def put(k, v):
            REG[k] = v

        def set_mode(m):
            global MODE
            MODE = m
    """

    def test_domain_reachable_mutations_flagged(self):
        findings = lint_bundle([mod("repro.sim.state", self.MUTATOR)],
                               [], [SharedStateChecker()])
        assert checks(findings) == ["CONC001", "CONC001"]
        assert "mutated in place" in findings[0].message
        assert "rebound" in findings[1].message

    def test_unreachable_module_ok(self):
        # Nothing imports it and it is outside the domain packages.
        findings = lint_bundle([mod("repro.formats.state", self.MUTATOR)],
                               [], [SharedStateChecker()])
        assert findings == []

    def test_suppression_covers_project_findings(self):
        src = ("REG = {}\n"
               "\n"
               "def put(k, v):\n"
               "    REG[k] = v"
               "  # repro-lint: disable=CONC001 import-time only\n")
        findings = lint_bundle(
            [SourceModule(path="<t:sup>", source=src,
                          module="repro.sim.sup")],
            [], [SharedStateChecker()])
        # Suppressed with a reason: no CONC001, no LNT001/LNT002.
        assert findings == []


class TestCrossDomainAlias:
    def test_per_shard_object_escaping_to_global_flagged(self):
        findings = lint_bundle([mod("repro.sim.alias", """\
            REG = {}

            class ShardState:
                def __init__(self):
                    self._m = {}

                def admit(self, t):
                    self._m[t] = t
                    REG[t] = t
        """)], [], [CrossDomainAliasChecker()])
        assert checks(findings) == ["CONC002"]
        assert "'t'" in findings[0].message

    def test_instance_only_storage_ok(self):
        findings = lint_bundle([mod("repro.sim.alias_ok", """\
            class ShardState:
                def __init__(self):
                    self._m = {}

                def admit(self, t):
                    self._m[t] = t
        """)], [], [CrossDomainAliasChecker()])
        assert findings == []


class TestResourceLifecycle:
    def test_leaked_span_flagged(self):
        findings = lint_bundle([mod("repro.sim.spans", """\
            def leak(rec, env):
                s = rec.start_span("w", env.now)
                return 1
        """)], [], [ResourceLifecycleChecker()])
        assert checks(findings) == ["RES001"]
        assert "no path settles it" in findings[0].message

    def test_finally_settles(self):
        findings = lint_bundle([mod("repro.sim.spans_ok", """\
            def tidy(rec, env, step):
                s = rec.start_span("w", env.now)
                try:
                    step()
                finally:
                    s.finish(env.now)
                return 1
        """)], [], [ResourceLifecycleChecker()])
        assert findings == []

    def test_except_only_settle_flagged(self):
        findings = lint_bundle([mod("repro.sim.spans_err", """\
            def error_path(rec, env, step):
                s = rec.start_span("w", env.now)
                try:
                    step()
                except RuntimeError:
                    s.finish(env.now)
                    raise
                return 1
        """)], [], [ResourceLifecycleChecker()])
        assert checks(findings) == ["RES001"]
        assert "except handler" in findings[0].message

    def test_cross_module_caller_leak(self):
        bundle = [
            mod("repro.sim.span_helper", """\
                def open_helper(rec, env):
                    s = rec.start_span("h", env.now)
                    return s
            """),
            mod("repro.sim.span_caller", """\
                from repro.sim.span_helper import open_helper

                def caller(rec, env):
                    s = open_helper(rec, env)
                    return 0
            """),
        ]
        findings = lint_bundle(bundle, [], [ResourceLifecycleChecker()])
        assert checks(findings) == ["RES001"]
        assert findings[0].path == "<t:repro.sim.span_caller>"
        assert "open_helper" in findings[0].message

    def test_resource_home_package_exempt(self):
        # The package that *implements* the span protocol opens spans
        # whose lifecycle is the caller's business, not its own.
        findings = lint_bundle([mod("repro.telemetry.impl", """\
            def record(rec, env):
                s = rec.start_span("w", env.now)
                return 1
        """)], [], [ResourceLifecycleChecker()])
        assert findings == []


class TestSwallowedExceptions:
    def test_broad_silent_handler_flagged(self):
        findings = lint_bundle([mod("repro.sim.swallow", """\
            def f(step):
                try:
                    step()
                except Exception:
                    pass
        """)], [SwallowedExceptionChecker()], [])
        assert checks(findings) == ["EXC001"]

    def test_narrow_or_handled_ok(self):
        findings = lint_bundle([mod("repro.sim.handled", """\
            def f(step, log):
                try:
                    step()
                except ValueError:
                    pass

            def g(step, log):
                try:
                    step()
                except Exception as e:
                    log(e)
                    raise
        """)], [SwallowedExceptionChecker()], [])
        assert findings == []


class TestEngineCacheRegression:
    """The PR-9 fixes: parse memos moved off module scope.

    Linting the *real* worker/plan sources (plus a probe that makes
    them domain-reachable, as the full tree does) must stay CONC001
    clean — and the probe itself proves the checker is alive, so the
    clean result cannot be vacuous.
    """

    PROBE = ("import repro.sim\n"
             "import repro.engine.worker\n"
             "import repro.engine.plan\n")

    def _bundle(self, extra=""):
        worker = (REPO_ROOT / "src/repro/engine/worker.py").read_text()
        plan = (REPO_ROOT / "src/repro/engine/plan.py").read_text()
        return [
            mod("repro.serve.lint_probe", self.PROBE),
            SourceModule(path="src/repro/engine/worker.py",
                         source=worker + extra,
                         module="repro.engine.worker"),
            SourceModule(path="src/repro/engine/plan.py", source=plan,
                         module="repro.engine.plan"),
        ]

    def test_runtime_owned_memos_are_clean(self):
        # The module checkers ride along so the sources' own DET004
        # suppressions register as used (no LNT002 noise).
        findings = lint_bundle(self._bundle(), all_checkers(),
                               [SharedStateChecker()])
        conc = [f for f in findings if f.check.startswith("CONC")]
        assert conc == []

    def test_reintroducing_a_module_cache_fires(self):
        regression = ("\n_CACHE = {}\n"
                      "def _memo(k, v):\n"
                      "    _CACHE[k] = v\n")
        findings = lint_bundle(self._bundle(extra=regression),
                               all_checkers(), [SharedStateChecker()])
        conc = [f for f in findings if f.check == "CONC001"]
        assert len(conc) == 1
        assert "_CACHE" in conc[0].message


class TestIdentityMemo:
    def test_identity_hit_and_equal_miss(self):
        from repro.engine.plan import IdentityMemo
        calls = []

        def parse(d):
            calls.append(d)
            return dict(d)

        memo = IdentityMemo(parse, max_entries=4)
        data = {"a": 1}
        first = memo.get(data)
        assert memo.get(data) is first  # identity hit: parsed once
        assert len(calls) == 1
        memo.get({"a": 1})  # equal but distinct dict: re-parsed
        assert len(calls) == 2

    def test_eviction_bound(self):
        from repro.engine.plan import IdentityMemo
        memo = IdentityMemo(dict, max_entries=2)
        pinned = [{"i": i} for i in range(3)]
        for d in pinned:
            memo.get(d)
        assert len(memo._entries) <= 2

    def test_runtimes_do_not_share_memos(self):
        from repro.engine.coordinator import CoordinatorRuntime
        from repro.engine.worker import WorkerRuntime
        c1 = CoordinatorRuntime(catalog={}, backend=None,
                                worker_function="w",
                                invoker_function="i")
        c2 = CoordinatorRuntime(catalog={}, backend=None,
                                worker_function="w",
                                invoker_function="i")
        assert c1.plan_cache is not c2.plan_cache
        w1 = WorkerRuntime(storage={}, barriers=None, cost_model=None)
        w2 = WorkerRuntime(storage={}, barriers=None, cost_model=None)
        assert w1.spec_cache is not w2.spec_cache

    def test_plan_cache_memoizes_by_identity(self):
        from repro.engine.coordinator import CoordinatorRuntime
        from repro.engine.plan import PhysicalPlan
        runtime = CoordinatorRuntime(catalog={}, backend=None,
                                     worker_function="w",
                                     invoker_function="i")
        data = PhysicalPlan(query_id="q", pipelines=[]).to_dict()
        plan = runtime.plan_cache.get(data)
        assert runtime.plan_cache.get(data) is plan


def _selftest_modules():
    return [SourceModule(path=fixture_path(name), source=FIXTURES[name],
                         module=name)
            for name in sorted(FIXTURES)]


class TestBundleDeterminism:
    """Findings are a pure function of the *set* of modules."""

    @given(order=st.permutations(range(len(FIXTURES))))
    def test_order_invariant(self, order):
        modules = _selftest_modules()
        baseline = lint_bundle(modules, all_checkers(),
                               all_project_checkers())
        shuffled = [modules[i] for i in order]
        again = lint_bundle(shuffled, all_checkers(),
                            all_project_checkers())
        assert [f.to_dict() for f in again] \
            == [f.to_dict() for f in baseline]
