"""Framework tests: suppressions, baselines, CLI exit codes, determinism."""

import json
import textwrap

import pytest

from repro.cli import main
from repro.lint import all_checkers, lint_modules
from repro.lint.baseline import (
    BASELINE_VERSION,
    Baseline,
    diff_against_baseline,
)
from repro.lint.framework import (
    Finding,
    SourceModule,
    module_name_from_path,
    parse_suppressions,
)
from repro.lint.selftest import run_self_test


def make_finding(path="src/repro/sim/x.py", line=3, col=1,
                 check="DET001", message="wall clock"):
    return Finding(path=path, line=line, col=col, check=check,
                   message=message)


class TestSuppressionParsing:
    def test_basic_with_reason(self):
        got = parse_suppressions(
            "x = 1  # repro-lint: disable=DET001 uses wall clock on purpose\n")
        assert list(got) == [1]
        assert got[1].checks == ("DET001",)
        assert got[1].reason == "uses wall clock on purpose"

    def test_multiple_ids(self):
        got = parse_suppressions(
            "x = 1  # repro-lint: disable=DET001, ARCH002 both fine\n")
        assert got[1].checks == ("DET001", "ARCH002")
        assert got[1].covers("DET001") and got[1].covers("ARCH002")
        assert not got[1].covers("DET003")

    def test_all_wildcard(self):
        got = parse_suppressions("x = 1  # repro-lint: disable=all why\n")
        assert got[1].covers("DET004")

    def test_missing_reason_is_empty(self):
        got = parse_suppressions("x = 1  # repro-lint: disable=DET001\n")
        assert got[1].reason == ""

    def test_plain_comments_ignored(self):
        assert parse_suppressions("x = 1  # just a comment\n") == {}

    def test_string_literals_are_inert(self):
        # The suppression syntax inside a string (docs, the self-test
        # fixture source) must not register as a suppression.
        src = 's = "code  # repro-lint: disable=DET001 reason"\n'
        assert parse_suppressions(src) == {}


class TestSuppressionSemantics:
    def lint(self, source, module="repro.faas.snippet"):
        mod = SourceModule(path="<snippet>",
                           source=textwrap.dedent(source), module=module)
        return lint_modules([mod], all_checkers())

    def test_suppression_silences_finding_on_same_line(self):
        src = """\
        import time

        def f():
            return time.time()  # repro-lint: disable=DET001 profiling only
        """
        assert self.lint(src) == []

    def test_suppression_only_covers_listed_checks(self):
        src = """\
        import time

        def f():
            return time.time()  # repro-lint: disable=DET002 wrong id
        """
        found = self.lint(src)
        # The DET001 finding survives, and the suppression is unused
        # (LNT002 sorts first: same line, column 1).
        assert sorted(f.check for f in found) == ["DET001", "LNT002"]

    def test_reasonless_suppression_flagged(self):
        src = """\
        import time

        def f():
            return time.time()  # repro-lint: disable=DET001
        """
        assert [f.check for f in self.lint(src)] == ["LNT001"]

    def test_unused_suppression_flagged(self):
        src = "x = 1  # repro-lint: disable=DET001 nothing here\n"
        assert [f.check for f in self.lint(src)] == ["LNT002"]

    def test_findings_sorted_canonically(self):
        src = """\
        import time
        import random

        def f():
            random.random()
            return time.time()
        """
        found = self.lint(src)
        assert [f.sort_key for f in found] == \
            sorted(f.sort_key for f in found)
        assert [f.check for f in found] == ["DET002", "DET001"]


class TestModuleNames:
    @pytest.mark.parametrize("path,expected", [
        ("src/repro/sim/kernel.py", "repro.sim.kernel"),
        ("src/repro/sim/__init__.py", "repro.sim"),
        ("src/repro/__init__.py", "repro"),
        ("/abs/src/repro/cli.py", "repro.cli"),
        ("tests/test_sim.py", None),
    ])
    def test_module_name_from_path(self, path, expected):
        assert module_name_from_path(path) == expected


class TestBaseline:
    def test_load_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert baseline.entries == []

    def test_round_trip(self, tmp_path):
        findings = [make_finding(), make_finding(check="ARCH002",
                                                 message="raw json")]
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        reloaded = Baseline.load(path)
        assert len(reloaded.entries) == 2
        assert reloaded.to_json() == path.read_text(encoding="utf-8")

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": BASELINE_VERSION + 1,
                                    "findings": []}))
        with pytest.raises(ValueError, match="unsupported baseline version"):
            Baseline.load(path)

    def test_diff_ignores_line_numbers(self):
        baseline = Baseline.from_findings([make_finding(line=10)])
        new, accepted, stale = diff_against_baseline(
            [make_finding(line=99)], baseline)
        assert (new, len(accepted), stale) == ([], 1, [])

    def test_diff_is_multiset_aware(self):
        # Two identical findings, one baseline allowance: one accepted,
        # one new.
        baseline = Baseline.from_findings([make_finding()])
        new, accepted, stale = diff_against_baseline(
            [make_finding(line=1), make_finding(line=2)], baseline)
        assert (len(new), len(accepted), stale) == (1, 1, [])

    def test_diff_reports_stale_entries(self):
        baseline = Baseline.from_findings(
            [make_finding(), make_finding(check="DET004", message="id()")])
        new, accepted, stale = diff_against_baseline(
            [make_finding()], baseline)
        assert (new, len(accepted)) == ([], 1)
        assert [e["check"] for e in stale] == ["DET004"]


CLEAN = "SEED = 7\n"

DIRTY = """\
import time


def stamp():
    return time.time()
"""


@pytest.fixture
def tree(tmp_path, monkeypatch):
    """A minimal lintable tree; cwd moved there so paths relativize."""
    pkg = tmp_path / "src" / "repro" / "faas"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text(CLEAN)
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestCli:
    def test_clean_tree_strict_exit_zero(self, tree, capsys):
        assert main(["lint", "--strict", "src"]) == 0
        assert "0 new" in capsys.readouterr().out

    def test_violation_fails_strict_but_not_default(self, tree, capsys):
        (tree / "src/repro/faas/dirty.py").write_text(DIRTY)
        assert main(["lint", "src"]) == 0
        assert main(["lint", "--strict", "src"]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_baseline_accepts_then_goes_stale(self, tree, capsys):
        dirty = tree / "src/repro/faas/dirty.py"
        dirty.write_text(DIRTY)
        assert main(["lint", "--update-baseline", "src"]) == 0
        # Accepted debt passes strict...
        assert main(["lint", "--strict", "src"]) == 0
        # ...until the code is fixed, when the stale entry fails strict
        # (the baseline must shrink along with the debt).
        dirty.write_text(CLEAN)
        assert main(["lint", "--strict", "src"]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_missing_path_exit_two(self, tree):
        assert main(["lint", "no/such/dir"]) == 2

    def test_list_checks(self, tree, capsys):
        assert main(["lint", "--list-checks"]) == 0
        out = capsys.readouterr().out
        for check in ["DET001", "DET002", "DET003", "DET004", "DET005",
                      "CONC001", "CONC002", "RES001", "EXC001",
                      "ARCH001", "ARCH002", "LNT001", "LNT002"]:
            assert check in out

    @pytest.mark.parametrize("check_id", [
        "DET001", "DET005", "CONC001", "CONC002", "RES001", "EXC001",
        "ARCH001", "LNT001",
    ])
    def test_explain_prints_rationale_and_examples(self, tree, capsys,
                                                   check_id):
        assert main(["lint", "--explain", check_id]) == 0
        out = capsys.readouterr().out
        assert out.startswith(check_id)
        assert "Why:" in out
        assert "Bad:" in out and "Good:" in out
        assert f"disable={check_id}" in out

    def test_explain_unknown_check_exit_two(self, tree, capsys):
        assert main(["lint", "--explain", "NOPE999"]) == 2
        assert "unknown check" in capsys.readouterr().err

    def test_json_output_byte_identical_across_runs(self, tree, capsys):
        (tree / "src/repro/faas/dirty.py").write_text(DIRTY)
        assert main(["lint", "--json", "src"]) == 0
        first = capsys.readouterr().out
        assert main(["lint", "--json", "src"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["summary"]["new"] == 1
        assert payload["findings"][0]["check"] == "DET001"

    def test_self_test_passes(self, capsys):
        assert main(["lint", "--self-test"]) == 0
        assert "self-test" in capsys.readouterr().out


class TestSelfTest:
    def test_fixture_findings_match_expectations(self):
        ok, lines = run_self_test()
        assert ok, "\n".join(lines)
