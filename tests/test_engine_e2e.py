"""End-to-end query execution: distributed engine vs reference executor."""

import numpy as np
import pytest

from repro.datagen import load_table, scaled_spec
from repro.engine import SkyriseEngine
from repro.engine.queries import tpch_q1, tpch_q6, tpch_q12, tpcxbb_q3
from repro.engine.reference import run_reference, table_batches_from_spec
from repro.faas import LambdaPlatform
from repro.iaas import Ec2Fleet, VmShim
from repro.network import Fabric
from repro.sim import Environment, RandomStreams
from repro.storage import S3Standard


def build_stack(tables, backend="faas", seed=5):
    """Simulated cloud + engine with the given scaled dataset specs."""
    env = Environment()
    fabric = Fabric(env)
    rng = RandomStreams(seed=seed)
    s3 = S3Standard(env, fabric, rng)
    specs = {}
    for name, partitions, rows in tables:
        specs[name] = scaled_spec(name, partitions, rows)
    metadata = {}
    for name, spec in specs.items():
        proc = env.process(load_table(env, s3, spec))
        env.run(until=proc)
        metadata[name] = proc.value
    if backend == "faas":
        platform = LambdaPlatform(env, fabric, rng, account_quota=10_000)
    else:
        fleet = Ec2Fleet(env, fabric, rng)
        proc = env.process(fleet.provision("c6g.xlarge", count=16))
        env.run(until=proc)
        platform = VmShim(env, proc.value, slots_per_vm=1)
    engine = SkyriseEngine(env, platform, storage={"s3-standard": s3})
    for table_metadata in metadata.values():
        engine.register_table(table_metadata)
    engine.deploy()
    return env, engine, specs


def run_query(env, engine, plan):
    proc = env.process(engine.run_query(plan))
    env.run(until=proc)
    return proc.value


def reference_result(specs, plan):
    tables = table_batches_from_spec(specs.values())
    return run_reference(plan, tables)


class TestQ6:
    def setup_method(self):
        self.tables = [("lineitem", 6, 400)]

    def test_result_matches_reference(self):
        env, engine, specs = build_stack(self.tables)
        plan = tpch_q6()
        result = run_query(env, engine, plan)
        expected = reference_result(specs, tpch_q6())
        assert result.batch.num_rows == 1
        np.testing.assert_allclose(result.batch.column("revenue")[0],
                                   expected.column("revenue")[0], rtol=1e-9)

    def test_runtime_and_stats_populated(self):
        env, engine, specs = build_stack(self.tables)
        result = run_query(env, engine, tpch_q6())
        assert result.runtime > 0
        assert result.requests > 0
        assert result.cumulated_time > result.runtime / 2
        assert result.cost_cents > 0
        assert set(result.fragments) == {"scan", "final"}

    def test_burst_aware_fragment_sizing(self):
        """Scan fragments keep per-worker input near the burst budget."""
        env, engine, specs = build_stack(self.tables)
        result = run_query(env, engine, tpch_q6())
        scan_fragments = result.fragments["scan"]
        # 6 partitions x 182 MiB x ~29% projected width / 270 MiB target.
        assert 1 <= scan_fragments <= 6

    def test_explicit_fragment_override(self):
        env, engine, specs = build_stack(self.tables)
        result = run_query(env, engine, tpch_q6(scan_fragments=3))
        assert result.fragments["scan"] == 3


class TestQ1:
    def test_result_matches_reference(self):
        env, engine, specs = build_stack([("lineitem", 4, 500)])
        result = run_query(env, engine, tpch_q1())
        expected = reference_result(specs, tpch_q1())
        assert result.batch.num_rows == expected.num_rows
        got = result.batch.to_pydict()
        want = expected.to_pydict()
        assert got["l_returnflag"] == want["l_returnflag"]
        assert got["l_linestatus"] == want["l_linestatus"]
        np.testing.assert_allclose(got["sum_disc_price"],
                                   want["sum_disc_price"], rtol=1e-9)
        np.testing.assert_allclose(got["avg_disc"], want["avg_disc"],
                                   rtol=1e-9)
        assert got["count_order"] == want["count_order"]


class TestQ12:
    def make_tables(self):
        return [("lineitem", 6, 600), ("orders", 3, 1200)]

    def test_result_matches_reference(self):
        env, engine, specs = build_stack(self.make_tables())
        plan = tpch_q12(join_fragments=4)
        result = run_query(env, engine, plan)
        expected = reference_result(specs, tpch_q12(join_fragments=4))
        got = result.batch.to_pydict()
        want = expected.to_pydict()
        # The join must actually match rows (guards against disjoint
        # key domains making the comparison vacuous).
        assert result.batch.num_rows > 0
        assert sum(got["high_line_count"]) + sum(got["low_line_count"]) > 0
        assert got["l_shipmode"] == want["l_shipmode"]
        np.testing.assert_allclose(got["high_line_count"],
                                   want["high_line_count"])
        np.testing.assert_allclose(got["low_line_count"],
                                   want["low_line_count"])

    def test_shuffle_requests_scale_with_fragments(self):
        """Shuffle reads ~ producers x consumers (Section 4.4)."""
        env, engine, specs = build_stack(self.make_tables())
        small = run_query(env, engine, tpch_q12(join_fragments=2))
        env2, engine2, _ = build_stack(self.make_tables())
        large = run_query(env2, engine2, tpch_q12(join_fragments=8))
        assert large.requests > small.requests

    def test_barrier_synchronizes_join_stage(self):
        env, engine, specs = build_stack(self.make_tables())
        plan = tpch_q12(join_fragments=4, barrier_on_join=True)
        result = run_query(env, engine, plan)
        expected = reference_result(
            specs, tpch_q12(join_fragments=4, barrier_on_join=True))
        np.testing.assert_allclose(result.batch.column("high_line_count"),
                                   expected.column("high_line_count"))
        assert result.shuffle_time() > 0


class TestBBQ3:
    def test_result_matches_reference(self):
        env, engine, specs = build_stack(
            [("clickstreams", 4, 2000), ("item", 1, 0)])
        plan = tpcxbb_q3(session_fragments=3)
        result = run_query(env, engine, plan)
        expected = reference_result(specs, tpcxbb_q3(session_fragments=3))
        got = result.batch.to_pydict()
        want = expected.to_pydict()
        # Note: sessionization windows differ at fragment boundaries only
        # if a user's clicks were split — the shuffle keys by user, so
        # results must match exactly.
        assert result.batch.num_rows > 0
        assert got["item_sk"] == want["item_sk"]
        assert got["views"] == want["views"]


class TestIaasDeployment:
    def test_q6_on_vm_shim_matches_faas(self):
        env_f, engine_f, specs = build_stack([("lineitem", 4, 400)])
        faas = run_query(env_f, engine_f, tpch_q6(scan_fragments=4))
        env_v, engine_v, _ = build_stack([("lineitem", 4, 400)],
                                         backend="iaas")
        iaas = run_query(env_v, engine_v, tpch_q6(scan_fragments=4))
        np.testing.assert_allclose(faas.batch.column("revenue")[0],
                                   iaas.batch.column("revenue")[0],
                                   rtol=1e-9)

    def test_faas_has_startup_overhead_vs_warm_iaas(self):
        """Section 5.2: FaaS end-to-end latency is slightly higher."""
        env_f, engine_f, _ = build_stack([("lineitem", 4, 400)])
        faas = run_query(env_f, engine_f, tpch_q6(scan_fragments=4))
        env_v, engine_v, _ = build_stack([("lineitem", 4, 400)],
                                         backend="iaas")
        iaas = run_query(env_v, engine_v, tpch_q6(scan_fragments=4))
        assert faas.runtime > iaas.runtime


class TestEngineGuards:
    def test_run_before_deploy_rejected(self):
        env = Environment()
        fabric = Fabric(env)
        rng = RandomStreams(seed=0)
        s3 = S3Standard(env, fabric, rng)
        platform = LambdaPlatform(env, fabric, rng)
        engine = SkyriseEngine(env, platform, storage={"s3-standard": s3})
        with pytest.raises(RuntimeError, match="deploy"):
            env.process(engine.run_query(tpch_q6()))
            env.run()
