"""Tests for the chaos fault taxonomy, plans, and injector hooks."""

import pytest

from repro.chaos import FaultInjector, FaultPlan, FaultSpec, WorkerCrash
from repro.network import Fabric
from repro.network.shaper import TokenBucketShaper
from repro.sim import Environment, RandomStreams
from repro.storage import RetryingClient, RetryPolicy, S3Standard
from repro.storage.base import RequestType
from repro.storage.errors import SlowDown
from repro.storage.errors import RequestTimeout as StorageRequestTimeout


def make_injector(*specs, name="test", seed=11):
    plan = FaultPlan(name=name, specs=tuple(specs))
    return FaultInjector(plan, rng=RandomStreams(seed=seed))


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike")

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind="worker_crash", probability=1.5)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(kind="worker_crash", probability=-0.1)

    def test_degrade_factor_bounds(self):
        with pytest.raises(ValueError, match="factor"):
            FaultSpec(kind="network_degrade", factor=0.0)
        with pytest.raises(ValueError, match="factor"):
            FaultSpec(kind="network_degrade", factor=1.5)

    def test_window_ordering(self):
        with pytest.raises(ValueError, match="end_s"):
            FaultSpec(kind="worker_crash", start_s=10.0, end_s=5.0)

    def test_window_is_half_open(self):
        spec = FaultSpec(kind="worker_crash", start_s=1.0, end_s=2.0)
        assert not spec.in_window(0.5)
        assert spec.in_window(1.0)
        assert not spec.in_window(2.0)

    def test_make_error_only_for_invoke_kinds(self):
        assert isinstance(FaultSpec(kind="worker_crash").make_error(),
                          WorkerCrash)
        with pytest.raises(ValueError):
            FaultSpec(kind="storage_slowdown").make_error()

    def test_to_dict_is_json_safe(self):
        spec = FaultSpec(kind="worker_crash")
        data = spec.to_dict()
        assert data["end_s"] is None  # inf is not JSON
        assert "max_events" not in data  # unbounded cap omitted


class TestFaultPlanSerialization:
    def test_round_trip_through_json(self):
        plan = FaultPlan(
            name="rt", description="round trip",
            specs=(FaultSpec(kind="worker_crash", probability=0.5,
                             max_events=3),
                   FaultSpec(kind="storage_slowdown", operation="get",
                             start_s=1.0, end_s=9.0)))
        import json
        restored = FaultPlan.from_json(json.dumps(plan.to_dict()))
        assert restored == plan


class TestInjectorScheduling:
    def test_window_filters_injections(self):
        injector = make_injector(
            FaultSpec(kind="storage_slowdown", start_s=10.0, end_s=20.0))
        assert injector.on_storage("get", "k", 5.0) is None
        assert isinstance(injector.on_storage("get", "k", 10.0), SlowDown)
        assert injector.on_storage("get", "k", 20.0) is None

    def test_max_events_caps_a_spec(self):
        injector = make_injector(
            FaultSpec(kind="storage_slowdown", max_events=2))
        hits = [injector.on_storage("get", "k", t) for t in range(5)]
        assert sum(1 for h in hits if h is not None) == 2
        assert injector.total_injected == 2
        assert injector.fault_counts == {"storage_slowdown": 2}

    def test_function_and_pipeline_targeting(self):
        injector = make_injector(
            FaultSpec(kind="worker_crash", function="skyrise-worker",
                      pipeline="scan"))
        miss_fn = injector.on_invoke("skyrise-invoker",
                                     {"pipeline": {"id": "scan"}}, 0.0)
        miss_pipe = injector.on_invoke("skyrise-worker",
                                       {"pipeline": {"id": "final"}}, 0.0)
        hit = injector.on_invoke("skyrise-worker",
                                 {"pipeline": {"id": "scan"},
                                  "fragment": 3}, 0.0)
        assert miss_fn is None and miss_pipe is None
        assert hit is not None and hit.kind == "worker_crash"
        # The timeline names the struck fragment.
        assert injector.timeline()[0]["target"] == "skyrise-worker/frag-3"

    def test_key_prefix_and_operation_targeting(self):
        injector = make_injector(
            FaultSpec(kind="storage_timeout", operation="put",
                      key_prefix="shuffle/"))
        assert injector.on_storage("get", "shuffle/x", 0.0) is None
        assert injector.on_storage("put", "data/x", 0.0) is None
        assert isinstance(injector.on_storage("put", "shuffle/x", 0.0),
                          StorageRequestTimeout)

    def test_on_place_returns_degradation_factor(self):
        injector = make_injector(
            FaultSpec(kind="network_degrade", factor=0.25, max_events=1))
        assert injector.on_place("skyrise-worker", 0.0) == 0.25
        assert injector.on_place("skyrise-worker", 1.0) is None

    def test_probabilistic_draws_are_seed_deterministic(self):
        spec = FaultSpec(kind="storage_slowdown", probability=0.5)

        def decisions(seed):
            injector = make_injector(spec, seed=seed)
            return [injector.on_storage("get", "k", float(t)) is not None
                    for t in range(64)]

        first = decisions(seed=21)
        assert first == decisions(seed=21)
        assert first != decisions(seed=22)
        assert any(first) and not all(first)


class TestStorageInjection:
    @pytest.fixture
    def stack(self):
        env = Environment()
        fabric = Fabric(env)
        rng = RandomStreams(seed=7)
        s3 = S3Standard(env, fabric, rng)
        return env, rng, s3

    def run(self, env, gen):
        proc = env.process(gen)
        env.run(until=proc)
        return proc.value

    def test_injected_slowdowns_retried_by_client(self, stack):
        env, rng, s3 = stack
        self.run(env, s3.put("k", b"v"))
        client = RetryingClient(
            env, s3, RetryPolicy(request_timeout=60.0, backoff_base=0.05))
        injector = make_injector(
            FaultSpec(kind="storage_slowdown", operation="get",
                      max_events=2))
        injector.install(clients=[client])
        obj = self.run(env, client.get("k"))
        # Two injected 503s were absorbed by the client's normal
        # retry/backoff machinery, then the third attempt succeeded.
        assert obj.payload == b"v"
        assert client.stats.attempts == 3
        assert client.stats.throttles == 2
        assert client.stats.successes == 1
        assert client.stats.backoff_time == pytest.approx(0.05 + 0.10)

    def test_service_hook_counts_injected_faults(self, stack):
        env, rng, s3 = stack
        self.run(env, s3.put("k", b"v"))
        injector = make_injector(
            FaultSpec(kind="storage_slowdown", operation="get",
                      max_events=1))
        injector.install(services=[s3])

        def attempt(env):
            try:
                yield from s3.get("k")
            except SlowDown:
                return "slowed"

        assert self.run(env, attempt(env)) == "slowed"
        # Billed like a real request that reached the frontend.
        assert s3.stats.counts[("get", "injected-fault")] == 1
        obj = self.run(env, s3.get("k"))
        assert obj.payload == b"v"

    def test_idle_injector_changes_nothing(self, stack):
        env, rng, s3 = stack
        injector = make_injector(
            FaultSpec(kind="storage_slowdown", function="skyrise-worker",
                      start_s=1e9))
        injector.install(services=[s3])
        self.run(env, s3.put("k", b"v"))
        obj = self.run(env, s3.get("k"))
        assert obj.payload == b"v"
        assert injector.total_injected == 0
        assert s3.stats.total(RequestType.GET, "injected-fault") == 0


class TestShaperDegrade:
    def test_degrade_scales_both_rates(self):
        shaper = TokenBucketShaper(capacity=100.0, burst_rate=40.0,
                                   refill_rate=8.0, mode="continuous",
                                   initial_level=100.0)
        shaper.degrade(0.25)
        assert shaper.burst_rate == pytest.approx(10.0)
        assert shaper.refill_rate == pytest.approx(2.0)

    def test_degrade_rejects_bad_factors(self):
        shaper = TokenBucketShaper(capacity=100.0, burst_rate=40.0,
                                   refill_rate=8.0, mode="continuous",
                                   initial_level=100.0)
        with pytest.raises(ValueError):
            shaper.degrade(0.0)
        with pytest.raises(ValueError):
            shaper.degrade(1.5)
