"""Tests for the paper's side findings not tied to a single figure."""

import numpy as np
import pytest

from repro.core import CloudSim
from repro.datagen import load_table, scaled_spec
from repro.engine import SkyriseEngine
from repro.engine.queries import tpch_q6
from repro.storage.partitions import PartitionTree, key_point


class TestPrefixNamingInvariance:
    """Section 4.4.1: prefix naming (e.g. hashed keys) does not impact
    IOPS scaling — the hash-space mapping spreads any naming scheme."""

    def offered_spread(self, keys: list[str], partitions: int) -> float:
        """Max/min load ratio across partitions for a key population."""
        tree = PartitionTree()
        tree.retile(partitions, now=0.0)
        counts = [0] * partitions
        for key in keys:
            point = key_point(key)
            for index, partition in enumerate(tree.partitions):
                if partition.owns(point):
                    counts[index] += 1
                    break
        return max(counts) / max(min(counts), 1)

    def test_sequential_and_hashed_names_spread_equally_well(self):
        import zlib
        sequential = [f"data/part-{i:05d}" for i in range(5_000)]
        hashed = [f"{zlib.crc32(str(i).encode()) & 0xffff:04x}/part-{i}"
                  for i in range(5_000)]
        seq_spread = self.offered_spread(sequential, 5)
        hash_spread = self.offered_spread(hashed, 5)
        # Both namings land within ~15% of uniform across partitions.
        assert seq_spread < 1.15
        assert hash_spread < 1.15

    def test_scaling_behaviour_identical_across_namings(self):
        """The fluid scaling process only sees aggregate rates: naming
        cannot change the staircase."""
        results = []
        for _ in range(2):
            tree = PartitionTree()
            now = 0.0
            while tree.partition_count < 3:
                tree.offer_load(1.2 * tree.total_read_iops, 0.0,
                                elapsed=30.0, now=now)
                now += 30.0
            results.append(now)
        assert results[0] == results[1]


class TestWriteIopsCeiling:
    """Section 4.4.1: sustained read load does not raise write IOPS
    beyond what the partition count provides, and write-only load never
    splits (covered elsewhere); here: read-driven splits do carry the
    per-partition write quotas with them."""

    def test_read_driven_splits_scale_write_quota_with_partitions(self):
        tree = PartitionTree()
        now = 0.0
        while tree.partition_count < 3:
            tree.offer_load(1.2 * tree.total_read_iops, 0.0,
                            elapsed=30.0, now=now)
            now += 30.0
        assert tree.total_write_iops == pytest.approx(3 * 3_500)


class TestExpressBaseTables:
    """The engine supports base tables on any storage service; Express
    tables cut the scan's first-byte latencies."""

    def run_q6(self, service_name: str) -> float:
        sim = CloudSim(seed=30)
        service = sim.service(service_name)
        spec = scaled_spec("lineitem", 4, rows_per_partition=128)
        metadata = sim.run(load_table(sim.env, service, spec))
        storage = {"s3-standard": sim.s3(), service_name: service}
        engine = SkyriseEngine(sim.env, sim.platform, storage=storage)
        engine.register_table(metadata)
        engine.deploy()
        runtimes = []
        for _ in range(3):
            result = sim.run(engine.run_query(tpch_q6(scan_fragments=4)))
            runtimes.append(result.runtime)
        return float(np.median(runtimes))

    def test_metadata_records_service(self):
        sim = CloudSim(seed=30)
        express = sim.s3_express()
        spec = scaled_spec("lineitem", 2, rows_per_partition=64)
        metadata = sim.run(load_table(sim.env, express, spec))
        assert metadata.service_name == "s3-express"

    def test_express_tables_speed_up_small_scans(self):
        standard = self.run_q6("s3-standard")
        express = self.run_q6("s3-express")
        # Express trims the per-request first-byte latency (27 -> 5 ms);
        # at 4 fragments the query is measurably faster.
        assert express < standard


class TestCostAccountingCompleteness:
    """Section 4.1: the client hook counts every request, including
    failures and retries — and the engine's cost includes them."""

    def test_throttled_requests_are_billed(self):
        sim = CloudSim(seed=31)
        s3 = sim.s3()
        spec = scaled_spec("lineitem", 4, rows_per_partition=64)
        metadata = sim.run(load_table(sim.env, s3, spec))
        engine = SkyriseEngine(sim.env, sim.platform,
                               storage={"s3-standard": s3})
        engine.register_table(metadata)
        engine.deploy()
        # Starve the bucket so scans hit throttles and retry.
        for partition in s3.partitions.partitions:
            partition.refresh_tokens(sim.env.now)
            partition.read_tokens = 0.0
        result = sim.run(engine.run_query(tpch_q6(scan_fragments=4)))
        reads = result.batch.column("revenue")
        assert len(reads) == 1
        # Retries appear in the per-query request count (and its cost).
        baseline_requests = 4 + 4 + 1 + 1 + 1  # scans+writes+final r/w
        assert result.requests > baseline_requests
