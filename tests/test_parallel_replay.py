"""Shard-parallel replay: digest identity with the sequential kernel.

The contract under test is absolute: for any config, any worker
count, and any observer, :func:`repro.shard.run_parallel_replay`
produces the byte-identical :class:`ReplayResult` (and the identical
observer callback sequence) as :func:`repro.shard.run_replay`. The
hypothesis property sweeps random configs — shard counts, seeds,
``fail_at`` ticks, fault plans — so the equivalence is a checked
invariant, not a pinned example.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard import ReplayConfig, run_parallel_replay, run_replay

SMALL = ReplayConfig(tenants=5_000, events=8_000, window_s=240.0,
                     shards=3, slots_per_shard=2,
                     max_pending_per_shard=256, tenant_queue_depth=8,
                     control_interval_s=30.0, max_shards=6,
                     fail_at=(60.0,), fault_plan="shard-failure")


@pytest.fixture(scope="module")
def sequential():
    return run_replay(SMALL)


class TestDigestIdentity:
    def test_serial_pool_matches_sequential(self, sequential):
        parallel = run_parallel_replay(SMALL, workers=0)
        assert parallel.digest() == sequential.digest()
        assert parallel.to_dict() == sequential.to_dict()

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_worker_count_never_changes_the_digest(self, sequential,
                                                   workers):
        parallel = run_parallel_replay(SMALL, workers=workers)
        assert parallel.digest() == sequential.digest()

    def test_parallel_hot_path_never_walks_tenant_state(self):
        parallel = run_parallel_replay(SMALL, workers=2)
        assert parallel.full_scans == 0

    def test_engine_is_reported_out_of_band(self, sequential):
        """The engine tag lives in ``extra`` — outside the digest."""
        parallel = run_parallel_replay(SMALL, workers=0)
        assert parallel.extra["engine"] == "parallel"
        assert "engine" not in sequential.extra


class TestPropertyEquivalence:
    @given(
        tenants=st.integers(min_value=200, max_value=1_500),
        extra_events=st.integers(min_value=0, max_value=4_000),
        shards=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        slots=st.integers(min_value=1, max_value=8),
        fail_at=st.lists(
            st.floats(min_value=10.0, max_value=230.0), max_size=2),
        fault_plan=st.sampled_from(["", "shard-failure"]),
        workers=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_parallel_digest_equals_sequential_digest(
            self, tenants, extra_events, shards, seed, slots, fail_at,
            fault_plan, workers):
        config = ReplayConfig(
            tenants=tenants, events=tenants + extra_events,
            window_s=240.0, seed=seed, shards=shards,
            slots_per_shard=slots, max_pending_per_shard=128,
            tenant_queue_depth=4, control_interval_s=30.0,
            max_shards=8, fail_at=tuple(fail_at),
            fault_plan=fault_plan)
        sequential = run_replay(config)
        parallel = run_parallel_replay(config, workers=workers)
        assert parallel.digest() == sequential.digest()
        assert parallel.to_dict() == sequential.to_dict()


class _RecordingObserver:
    """Record every callback the replay makes, in order."""

    #: Keep slow completions plus a ~12.5% hash-sampled slice, so the
    #: merge is exercised on a sparse, irregular kept set (the
    #: all-kept case is implied: rescued requests always pass).
    completion_interest = (1.0, 104729, 1 << 29)

    def __init__(self) -> None:
        self.calls = []

    def on_completion(self, finish, shard, request):
        self.calls.append(
            ("completion", round(finish, 9), shard, request.tenant,
             request.seq, request.rescued))

    def on_shard_failure(self, now, shard, orphans):
        self.calls.append(("failure", now, shard, orphans))

    def on_fault(self, now, kind, target, detail):
        self.calls.append(("fault", now, kind, target, detail))

    def on_control_tick(self, now, router):
        report = router.roll_up()
        self.calls.append(
            ("tick", now, sorted(router.shard_metrics),
             report.completed, report.shed,
             round(report.cost_usd, 9), router.pending_total()))

    def on_end(self, now, router):
        self.calls.append(("end", now, router.roll_up().to_dict()))


class TestObserverEquivalence:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_observer_sees_the_sequential_callback_sequence(self, workers):
        seq_obs, par_obs = _RecordingObserver(), _RecordingObserver()
        sequential = run_replay(SMALL, observer=seq_obs)
        parallel = run_parallel_replay(SMALL, observer=par_obs,
                                       workers=workers)
        assert parallel.digest() == sequential.digest()
        assert seq_obs.calls, "observer must have fired"
        assert par_obs.calls == seq_obs.calls
