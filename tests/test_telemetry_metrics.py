"""Unit tests for the typed metric instruments and the registry."""

from repro.telemetry import Counter, Gauge, MetricRegistry, TimeSeries
from repro.telemetry.metrics import DEFAULT_MAX_POINTS


def test_counter_increments():
    counter = Counter("test.count")
    assert counter.value == 0
    counter.inc()
    counter.inc(5)
    assert counter.value == 6


def test_gauge_tracks_peak():
    gauge = Gauge("test.level")
    gauge.set(3.0)
    gauge.set(9.0)
    gauge.set(2.0)
    assert gauge.value == 2.0
    assert gauge.peak == 9.0


def test_timeseries_basic_sampling():
    series = TimeSeries("test.series")
    series.sample(0.0, 1.0)
    series.sample(1.0, 2.0)
    assert series.times() == [0.0, 1.0]
    assert series.values() == [1.0, 2.0]
    assert series.last == 2.0
    assert series.dropped == 0


def test_timeseries_min_dt_drops_close_samples():
    series = TimeSeries("test.series", min_dt=1.0)
    series.sample(0.0, 1.0)
    series.sample(0.5, 2.0)   # too close: dropped
    series.sample(1.0, 3.0)   # exactly min_dt later: kept
    assert series.values() == [1.0, 3.0]
    assert series.dropped == 1


def test_timeseries_max_points_caps_storage():
    series = TimeSeries("test.series", max_points=3)
    for i in range(10):
        series.sample(float(i), float(i))
    assert len(series.points) == 3
    assert series.dropped == 7
    assert series.last == 2.0


def test_timeseries_empty_last_is_none():
    assert TimeSeries("test.series").last is None


def test_registry_caches_by_name():
    registry = MetricRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.timeseries("c") is registry.timeseries("c")
    # min_dt only applies at creation time.
    series = registry.timeseries("d", min_dt=5.0)
    assert registry.timeseries("d", min_dt=0.0) is series
    assert series.min_dt == 5.0
    assert series.max_points == DEFAULT_MAX_POINTS


def test_registry_snapshot_is_sorted_and_json_ready():
    import json

    registry = MetricRegistry()
    registry.counter("z.count").inc(2)
    registry.counter("a.count").inc()
    registry.gauge("m.gauge").set(4.0)
    registry.timeseries("s.series").sample(1.5, 2.5)
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["a.count", "z.count"]
    assert snapshot["counters"]["z.count"] == 2
    assert snapshot["gauges"]["m.gauge"] == {"value": 4.0, "peak": 4.0}
    assert snapshot["series"]["s.series"]["points"] == [[1.5, 2.5]]
    assert snapshot["series"]["s.series"]["dropped"] == 0
    json.dumps(snapshot)  # must serialize without custom encoders
