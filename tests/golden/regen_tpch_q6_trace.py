"""Regenerate the golden Chrome-trace file for TPC-H Q6.

Run after an *intentional* change to the trace format or the simulated
timing, then review the diff::

    PYTHONPATH=src python tests/golden/regen_tpch_q6_trace.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent))

from test_telemetry_export import GOLDEN, record_q6  # noqa: E402

from repro.telemetry import canonical_json, chrome_trace  # noqa: E402


def main() -> None:
    _, recorder = record_q6()
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(canonical_json(chrome_trace(recorder)) + "\n")
    print(f"wrote {GOLDEN} ({GOLDEN.stat().st_size} bytes, "
          f"{len(recorder.spans)} spans)")


if __name__ == "__main__":
    main()
