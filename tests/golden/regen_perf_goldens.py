"""Regenerate the perf-equivalence goldens (metrics, resilience, serving).

Run after an *intentional* change to the simulated model, then review
the diff::

    PYTHONPATH=src python tests/golden/regen_perf_goldens.py

The trace golden has its own script (``regen_tpch_q6_trace.py``).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent))

from test_telemetry_export import record_q6  # noqa: E402

from repro.chaos.runner import run_chaos_suite  # noqa: E402
from repro.serve import default_tenant_mix, run_serving_workload  # noqa: E402
from repro.telemetry import canonical_json, metrics_snapshot  # noqa: E402

GOLDEN_DIR = Path(__file__).parent


def main() -> None:
    _, recorder = record_q6()
    metrics = GOLDEN_DIR / "tpch_q6_metrics.json"
    metrics.write_text(canonical_json(metrics_snapshot(recorder)) + "\n")
    print(f"wrote {metrics} ({metrics.stat().st_size} bytes)")

    report = run_chaos_suite("smoke", queries=("tpch-q6",), repeats=2,
                             seed=0, baseline=False)
    resilience = GOLDEN_DIR / "smoke_resilience.json"
    resilience.write_text(report.to_json() + "\n")
    print(f"wrote {resilience} ({resilience.stat().st_size} bytes)")

    outcome = run_serving_workload(
        default_tenant_mix(rate_scale=6.0), policy="fair", window_s=180.0,
        seed=1, max_concurrent_queries=1)
    serving = GOLDEN_DIR / "serving_fair_180s.json"
    serving.write_text(outcome.to_json() + "\n")
    print(f"wrote {serving} ({serving.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
