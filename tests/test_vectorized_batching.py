"""Vectorized batching equals its per-event specs, bit for bit.

Two generators have both a vectorized production path and a scalar
per-event reference: the Zipf trace (``zipf_trace`` vs
``zipf_trace_reference``) and latency sampling
(``LatencyModel.sample_batch`` vs repeated ``sample_one``). These
tests pin byte-identity of outputs *and* generator end state, plus a
golden hash of the smoke-config trace so any drift in either path —
or in numpy's stream contract — fails loudly.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard.replay import ReplayConfig
from repro.sim.rng import RandomStreams
from repro.storage.latency import LatencyModel
from repro.workloads.traffic import zipf_trace, zipf_trace_reference

#: sha256 over the smoke-config trace bytes (times ++ ids); pins the
#: exact trace every smoke replay — sequential or parallel — consumes.
SMOKE_TRACE_SHA256 = \
    "ac681ceb8e91c9f6d09ca7ea6295f63565290fa5f7eec09fd1c870af26736235"


class TestZipfTraceReference:
    @pytest.mark.parametrize("tenants,events,window,s", [
        (300, 300, 60.0, 1.3),      # coverage only, no zipf draws
        (500, 2_500, 120.0, 1.3),
        (1_000, 5_000, 600.0, 2.5),
    ])
    def test_vectorized_equals_per_event_reference(self, tenants, events,
                                                   window, s):
        vec = zipf_trace(RandomStreams(7).stream("shard.trace"),
                         tenants, events, window, s=s)
        ref = zipf_trace_reference(RandomStreams(7).stream("shard.trace"),
                                   tenants, events, window, s=s)
        assert vec[0].tobytes() == ref[0].tobytes()
        assert vec[1].tobytes() == ref[1].tobytes()

    @given(tenants=st.integers(min_value=10, max_value=400),
           extra=st.integers(min_value=0, max_value=1_200),
           seed=st.integers(min_value=0, max_value=2**31 - 1),
           s=st.floats(min_value=1.05, max_value=3.5))
    @settings(max_examples=30, deadline=None)
    def test_reference_equivalence_is_an_invariant(self, tenants, extra,
                                                   seed, s):
        args = (tenants, tenants + extra, 300.0)
        vec = zipf_trace(np.random.default_rng(seed), *args, s=s)
        ref = zipf_trace_reference(np.random.default_rng(seed), *args, s=s)
        assert vec[0].tobytes() == ref[0].tobytes()
        assert vec[1].tobytes() == ref[1].tobytes()

    def test_smoke_config_trace_matches_the_golden_hash(self):
        config = ReplayConfig().smoke()
        times, ids = zipf_trace(
            RandomStreams(config.seed).stream("shard.trace"),
            config.tenants, config.events, config.window_s,
            s=config.zipf_s)
        digest = hashlib.sha256()
        digest.update(times.tobytes())
        digest.update(ids.tobytes())
        assert digest.hexdigest() == SMOKE_TRACE_SHA256

    def test_validation_matches_the_vectorized_path(self):
        rng = np.random.default_rng(0)
        for bad in [dict(tenants=0, events=5), dict(tenants=5, events=4),
                    dict(tenants=5, events=5, window_s=0.0),
                    dict(tenants=5, events=5, s=1.0)]:
            kwargs = dict(tenants=10, events=20, window_s=60.0, s=1.3)
            kwargs.update(bad)
            with pytest.raises(ValueError):
                zipf_trace(rng, **kwargs)
            with pytest.raises(ValueError):
                zipf_trace_reference(rng, **kwargs)


class TestSampleBatch:
    @pytest.mark.parametrize("tail", [0.0, 0.08, 0.5])
    def test_stream_identical_to_repeated_sample_one(self, tail):
        model = LatencyModel(median=0.02, p95=0.06, tail_probability=tail)
        batch_rng = np.random.default_rng(11)
        one_rng = np.random.default_rng(11)
        batch = model.sample_batch(batch_rng, 3_000)
        ones = np.array([model.sample_one(one_rng) for _ in range(3_000)])
        assert batch.tobytes() == ones.tobytes()
        # End state equality: a later consumer of either generator
        # sees the same stream — batching is transparent.
        assert batch_rng.bit_generator.state == one_rng.bit_generator.state

    @given(median=st.floats(min_value=1e-4, max_value=1.0),
           spread=st.floats(min_value=1.0, max_value=30.0),
           tail=st.floats(min_value=0.0, max_value=0.9),
           seed=st.integers(min_value=0, max_value=2**31 - 1),
           n=st.integers(min_value=0, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_is_an_invariant(self, median, spread, tail, seed,
                                         n):
        model = LatencyModel(median=median, p95=median * spread,
                             tail_probability=tail)
        batch_rng = np.random.default_rng(seed)
        one_rng = np.random.default_rng(seed)
        batch = model.sample_batch(batch_rng, n)
        ones = np.array([model.sample_one(one_rng) for _ in range(n)])
        assert batch.tobytes() == ones.tobytes()
        assert batch_rng.bit_generator.state == one_rng.bit_generator.state

    def test_ceiling_clamps_the_batch(self):
        model = LatencyModel(median=5.0, p95=50.0, ceiling=6.0)
        batch = model.sample_batch(np.random.default_rng(3), 500)
        assert float(batch.max()) <= 6.0

    def test_negative_n_rejected(self):
        model = LatencyModel(median=0.02, p95=0.06)
        with pytest.raises(ValueError):
            model.sample_batch(np.random.default_rng(0), -1)
