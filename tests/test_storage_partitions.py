"""Unit and property tests for the S3 prefix-partition model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.partitions import (
    FIRST_MERGE_IDLE_S,
    FULL_MERGE_IDLE_S,
    PartitionTree,
    READ_IOPS_PER_PARTITION,
    SPLIT_AFTER_S,
    key_point,
)


class TestKeyPoint:
    def test_point_in_unit_interval(self):
        for key in ("a", "data/part-17", "", "x" * 100):
            assert 0.0 <= key_point(key) < 1.0

    def test_point_is_stable(self):
        assert key_point("some-key") == key_point("some-key")

    @given(st.text(max_size=50))
    def test_point_in_range_property(self, key):
        assert 0.0 <= key_point(key) < 1.0


class TestSplitting:
    def test_fresh_tree_has_one_partition(self):
        tree = PartitionTree()
        assert tree.partition_count == 1
        assert tree.total_read_iops == READ_IOPS_PER_PARTITION

    def test_split_halves_keyspace(self):
        tree = PartitionTree()
        left, right = tree.split(tree.partitions[0], now=0.0)
        assert left.width == pytest.approx(0.5)
        assert right.width == pytest.approx(0.5)
        assert tree.partition_count == 2

    def test_split_of_stale_partition_rejected(self):
        tree = PartitionTree()
        old = tree.partitions[0]
        tree.split(old, now=0.0)
        with pytest.raises(ValueError):
            tree.split(old, now=1.0)

    def test_sustained_overload_triggers_split(self):
        tree = PartitionTree()
        now = 0.0
        # Offer 110% of quota until the split threshold passes.
        while tree.partition_count == 1 and now < 2 * SPLIT_AFTER_S:
            tree.offer_load(read_iops=1.1 * READ_IOPS_PER_PARTITION,
                            write_iops=0, elapsed=10.0, now=now)
            now += 10.0
        assert tree.partition_count == 2
        assert now == pytest.approx(SPLIT_AFTER_S, abs=20.0)

    def test_light_load_never_splits(self):
        tree = PartitionTree()
        for step in range(500):
            tree.offer_load(read_iops=0.5 * READ_IOPS_PER_PARTITION,
                            write_iops=0, elapsed=10.0, now=step * 10.0)
        assert tree.partition_count == 1

    def test_write_only_load_never_splits(self):
        """Section 4.4.1: write IOPS cannot scale beyond one partition."""
        tree = PartitionTree()
        for step in range(1000):
            tree.offer_load(read_iops=0, write_iops=50_000,
                            elapsed=10.0, now=step * 10.0)
        assert tree.partition_count == 1

    def test_heat_decays_when_load_subsides(self):
        tree = PartitionTree()
        tree.offer_load(read_iops=10_000, write_iops=0, elapsed=SPLIT_AFTER_S / 2,
                        now=0.0)
        partition = tree.partitions[0]
        assert partition.heat_s > 0
        tree.offer_load(read_iops=100, write_iops=0, elapsed=SPLIT_AFTER_S,
                        now=SPLIT_AFTER_S / 2)
        assert tree.partitions[0].heat_s == 0.0

    def test_ramping_load_scales_to_five_partitions(self):
        """The Figure 11 staircase: ~30K offered IOPS -> 5 partitions."""
        tree = PartitionTree()
        now = 0.0
        offered = 6_000.0
        while offered <= 30_000.0:
            for _ in range(6):  # ~1 minute per load level
                tree.offer_load(read_iops=offered, write_iops=0,
                                elapsed=10.0, now=now)
                now += 10.0
            offered += 600.0
        assert 4 <= tree.partition_count <= 6
        # The process should take tens of minutes, not seconds.
        assert now > 15 * 60


class TestMerging:
    def make_scaled_tree(self):
        tree = PartitionTree()
        now = 0.0
        while tree.partition_count < 5:
            tree.offer_load(read_iops=1.2 * tree.total_read_iops,
                            write_iops=0, elapsed=30.0, now=now)
            now += 30.0
        return tree, now

    def test_partitions_survive_one_day_idle(self):
        tree, now = self.make_scaled_tree()
        tree.maybe_merge(now + 86_400.0)
        assert tree.partition_count == 5

    def test_first_merge_leaves_two_partitions(self):
        tree, now = self.make_scaled_tree()
        tree.maybe_merge(now + FIRST_MERGE_IDLE_S + 1)
        assert tree.partition_count == 2

    def test_full_merge_returns_to_one_partition(self):
        tree, now = self.make_scaled_tree()
        tree.maybe_merge(now + FULL_MERGE_IDLE_S + 1)
        assert tree.partition_count == 1

    def test_low_probe_load_does_not_reset_idle(self):
        """Figure 13: hourly probes must not keep partitions warm."""
        tree, now = self.make_scaled_tree()
        probe_now = now
        for _ in range(int(FULL_MERGE_IDLE_S // 3600) + 2):
            probe_now += 3600.0
            # A light probe: well below the busy-utilization floor.
            tree.offer_load(read_iops=500.0, write_iops=0, elapsed=60.0,
                            now=probe_now)
        assert tree.partition_count == 1


class TestInvariants:
    @given(splits=st.lists(st.integers(min_value=0, max_value=30),
                           min_size=0, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_partitions_always_tile_keyspace(self, splits):
        """Property: leaves always exactly tile [0, 1) without overlap."""
        tree = PartitionTree()
        for choice in splits:
            index = choice % tree.partition_count
            tree.split(tree.partitions[index], now=0.0)
        ordered = sorted(tree.partitions, key=lambda p: p.low)
        assert ordered[0].low == 0.0
        assert ordered[-1].high == 1.0
        for left, right in zip(ordered, ordered[1:]):
            assert left.high == pytest.approx(right.low)
        total_width = sum(p.width for p in ordered)
        assert total_width == pytest.approx(1.0)

    @given(read=st.floats(min_value=0, max_value=1e6),
           write=st.floats(min_value=0, max_value=1e6))
    @settings(max_examples=100, deadline=None)
    def test_fluid_conservation(self, read, write):
        """Property: accepted + rejected equals offered, never negative."""
        tree = PartitionTree()
        step = tree.offer_load(read_iops=read, write_iops=write,
                               elapsed=1.0, now=0.0)
        assert step.accepted_read + step.rejected_read == pytest.approx(read)
        assert step.accepted_write + step.rejected_write == pytest.approx(write)
        assert step.accepted_read >= 0 and step.rejected_read >= 0
        assert step.accepted_write >= 0 and step.rejected_write >= 0

    @given(keys=st.lists(st.text(min_size=1, max_size=20), min_size=1,
                         max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_every_key_maps_to_exactly_one_partition(self, keys):
        tree = PartitionTree()
        for _ in range(4):
            tree.split(max(tree.partitions, key=lambda p: p.width), now=0.0)
        for key in keys:
            owners = [p for p in tree.partitions if p.owns(key_point(key))]
            assert len(owners) == 1
