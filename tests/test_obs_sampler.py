"""Tail sampler: precedence, determinism, and trace conservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sampler import (
    REASON_BASELINE,
    REASON_ERROR,
    REASON_FAULT,
    REASON_SLOW,
    SamplerConfig,
    TailSampler,
    baseline_keep,
)


class TestBaselineKeep:
    def test_deterministic_across_calls(self):
        assert all(baseline_keep(i, 7, 0.3) == baseline_keep(i, 7, 0.3)
                   for i in range(500))

    def test_rate_extremes(self):
        assert not any(baseline_keep(i, 1, 0.0) for i in range(200))
        assert all(baseline_keep(i, 1, 1.0) for i in range(200))

    def test_rate_roughly_honoured(self):
        kept = sum(baseline_keep(i, 42, 0.1) for i in range(10_000))
        assert 700 <= kept <= 1300

    def test_seed_changes_the_slice(self):
        a = [baseline_keep(i, 0, 0.2) for i in range(1000)]
        b = [baseline_keep(i, 1, 0.2) for i in range(1000)]
        assert a != b


class TestConfig:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            SamplerConfig(slow_threshold_s=0.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            SamplerConfig(baseline_rate=1.5)


class TestPrecedence:
    def test_error_beats_everything(self):
        sampler = TailSampler(SamplerConfig(slow_threshold_s=1.0))
        assert sampler.observe(5.0, error=True, fault=True) == REASON_ERROR

    def test_fault_beats_slow(self):
        sampler = TailSampler(SamplerConfig(slow_threshold_s=1.0))
        assert sampler.observe(5.0, fault=True) == REASON_FAULT

    def test_slow_beats_baseline(self):
        sampler = TailSampler(SamplerConfig(slow_threshold_s=1.0,
                                            baseline_rate=1.0))
        assert sampler.observe(5.0) == REASON_SLOW

    def test_fast_path_drops_quiet_traces(self):
        sampler = TailSampler(SamplerConfig(baseline_rate=0.0))
        assert sampler.observe(0.1) is None
        assert sampler.dropped == 1


class TestBufferedPath:
    def test_complete_uses_digest_marks(self):
        sampler = TailSampler(SamplerConfig(slow_threshold_s=10.0))
        sampler.begin("t1", at=0.0, scope="tenant:a")
        sampler.mark_error("t1")
        verdict = sampler.complete("t1", at=1.0)
        assert verdict.kept and verdict.reason == REASON_ERROR
        assert verdict.latency_s == pytest.approx(1.0)
        assert verdict.scope == "tenant:a"
        assert sampler.open_traces == 0

    def test_fault_mark_sticks(self):
        sampler = TailSampler(SamplerConfig(slow_threshold_s=10.0))
        sampler.begin("t1", at=0.0)
        sampler.mark_fault("t1")
        assert sampler.complete("t1", at=0.5).reason == REASON_FAULT

    def test_unknown_trace_still_accounted(self):
        sampler = TailSampler(SamplerConfig(baseline_rate=0.0))
        verdict = sampler.complete("ghost", at=3.0)
        assert not verdict.kept
        assert sampler.completed == 1
        assert sampler.check_conservation()

    def test_begin_is_idempotent(self):
        sampler = TailSampler()
        sampler.begin("t1", at=1.0)
        sampler.begin("t1", at=9.0)
        assert sampler._open["t1"].started_at == 1.0

    def test_fast_path_matches_buffered_path(self):
        """observe() and complete() agree verdict-for-verdict."""
        config = SamplerConfig(slow_threshold_s=1.0, baseline_rate=0.3,
                               seed=5)
        fast, buffered = TailSampler(config), TailSampler(config)
        cases = [(0.2, False, False), (2.0, False, False),
                 (0.1, True, False), (0.3, False, True)] * 10
        for i, (latency, error, fault) in enumerate(cases):
            reason = fast.observe(latency, error=error, fault=fault)
            if reason is not None:
                fast.register_kept(f"t{i}", reason)
            buffered.begin(f"t{i}", at=0.0)
            if error:
                buffered.mark_error(f"t{i}")
            if fault:
                buffered.mark_fault(f"t{i}")
            verdict = buffered.complete(f"t{i}", at=latency)
            assert verdict.reason == reason
        assert fast.summary() == buffered.summary()


class TestConservation:
    @given(st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=5.0),
                  st.booleans(), st.booleans()),
        max_size=200),
        st.integers(min_value=0, max_value=2 ** 16),
        st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_every_trace_is_kept_or_dropped(self, cases, seed, rate):
        sampler = TailSampler(SamplerConfig(slow_threshold_s=2.0,
                                            baseline_rate=rate, seed=seed))
        for i, (latency, error, fault) in enumerate(cases):
            reason = sampler.observe(latency, error=error, fault=fault)
            if reason is not None:
                sampler.register_kept(f"t{i}", reason)
        assert sampler.check_conservation()
        assert sampler.completed == len(cases)
        summary = sampler.summary()
        assert summary["conserved"]
        assert summary["kept"] + summary["dropped"] == len(cases)

    def test_summary_reason_breakdown_sums_to_kept(self):
        sampler = TailSampler(SamplerConfig(baseline_rate=0.5))
        for i in range(100):
            reason = sampler.observe(float(i % 4), error=(i % 7 == 0),
                                     fault=(i % 11 == 0))
            if reason is not None:
                sampler.register_kept(f"t{i}", reason)
        summary = sampler.summary()
        assert sum(summary["kept_by_reason"].values()) == summary["kept"]
        assert set(summary["kept_by_reason"]) == {
            REASON_ERROR, REASON_FAULT, REASON_SLOW, REASON_BASELINE}
