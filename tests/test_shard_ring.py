"""Consistent-hash ring properties: determinism, locality, remap bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard.ring import DEFAULT_VNODES, HashRing, hash_key

KEYS = [f"t{i}" for i in range(4000)]


def make_ring(count, vnodes=DEFAULT_VNODES):
    ring = HashRing(vnodes)
    for index in range(count):
        ring.add_node(f"shard-{index}")
    return ring


def mapping(ring):
    return {key: ring.lookup(key) for key in KEYS}


class TestBasics:
    def test_lookup_is_deterministic_and_order_independent(self):
        """Placement depends on names only, never on insertion order."""
        forward = HashRing()
        for index in range(4):
            forward.add_node(f"shard-{index}")
        backward = HashRing()
        for index in reversed(range(4)):
            backward.add_node(f"shard-{index}")
        assert mapping(forward) == mapping(backward)

    def test_hash_key_is_stable(self):
        assert hash_key("t0") == hash_key("t0")
        assert hash_key("t0") != hash_key("t1")

    def test_every_key_maps_to_a_member(self):
        ring = make_ring(5)
        members = set(ring.nodes())
        assert set(mapping(ring).values()) <= members

    def test_empty_ring_lookup_raises(self):
        with pytest.raises(LookupError):
            HashRing().lookup("t0")

    def test_duplicate_add_raises(self):
        ring = make_ring(1)
        with pytest.raises(ValueError, match="already"):
            ring.add_node("shard-0")

    def test_nonpositive_vnodes_rejected(self):
        with pytest.raises(ValueError):
            HashRing(0)


class TestRemapLocality:
    @given(count=st.integers(min_value=2, max_value=8))
    @settings(max_examples=7, deadline=None)
    def test_add_remaps_only_to_the_new_node_and_bounded_fraction(
            self, count):
        """Adding a node moves ~1/(N+1) of keys, all of them *to* it."""
        ring = make_ring(count)
        before = mapping(ring)
        ring.add_node("shard-new")
        after = mapping(ring)
        changed = [key for key in KEYS if before[key] != after[key]]
        assert all(after[key] == "shard-new" for key in changed)
        expected = 1.0 / (count + 1)
        fraction = len(changed) / len(KEYS)
        assert 0.2 * expected < fraction < 2.5 * expected

    @given(count=st.integers(min_value=2, max_value=8))
    @settings(max_examples=7, deadline=None)
    def test_remove_remaps_only_the_removed_nodes_keys(self, count):
        ring = make_ring(count)
        before = mapping(ring)
        ring.remove_node("shard-0")
        after = mapping(ring)
        for key in KEYS:
            if before[key] != after[key]:
                assert before[key] == "shard-0"
            else:
                assert before[key] != "shard-0"

    def test_split_touches_only_the_split_node(self):
        """Remapped keys come from the hot node and land on the new one."""
        ring = make_ring(4)
        before = mapping(ring)
        moved_points = ring.split_node("shard-1", "shard-split")
        assert moved_points == DEFAULT_VNODES // 2
        after = mapping(ring)
        for key in KEYS:
            if before[key] != after[key]:
                assert before[key] == "shard-1"
                assert after[key] == "shard-split"

    def test_merge_touches_only_the_merged_node(self):
        ring = make_ring(4)
        before = mapping(ring)
        ring.merge_node("shard-2", "shard-0")
        after = mapping(ring)
        assert "shard-2" not in ring
        for key in KEYS:
            if before[key] != after[key]:
                assert before[key] == "shard-2"
                assert after[key] == "shard-0"
            else:
                assert before[key] != "shard-2"

    def test_merge_into_self_rejected(self):
        ring = make_ring(2)
        with pytest.raises(ValueError, match="itself"):
            ring.merge_node("shard-0", "shard-0")

    def test_successors_name_the_gaining_nodes(self):
        """Removing a node hands its ranges exactly to its successors."""
        ring = make_ring(5)
        before = mapping(ring)
        points = ring.points_of("shard-3")
        heirs = set(ring.successors(points)) - {"shard-3"}
        ring.remove_node("shard-3")
        after = mapping(ring)
        gainers = {after[key] for key in KEYS
                   if before[key] == "shard-3"}
        assert gainers <= heirs
