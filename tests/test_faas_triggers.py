"""Tests for queue-based event triggers (Figure 1's polling service)."""

import pytest

from repro import units
from repro.faas import FunctionConfig, MessageQueue, QueueTrigger
from repro.core import CloudSim


def deploy_echo(sim, name="echo", delay=0.01):
    handled = []

    def handler(context, payload):
        yield context.env.timeout(delay)
        handled.append(payload)
        return payload

    sim.platform.deploy(FunctionConfig(
        name=name, handler=handler, memory_bytes=128 * units.MiB))
    return handled


class TestMessageQueue:
    def test_send_and_depth(self):
        sim = CloudSim(seed=0)
        queue = MessageQueue(sim.env)
        queue.send("a")
        queue.send("b")
        assert queue.depth == 2
        assert queue.sent == 2


class TestQueueTrigger:
    def run_scenario(self, messages, delay=0.01, concurrency=10,
                     horizon=10.0):
        sim = CloudSim(seed=1)
        handled = deploy_echo(sim, delay=delay)
        queue = MessageQueue(sim.env)
        trigger = QueueTrigger(sim.env, sim.platform, queue, "echo",
                               concurrency=concurrency)

        def producer(env):
            for message in messages:
                queue.send(message)
                yield env.timeout(0.005)

        sim.env.process(producer(sim.env))
        sim.env.run(until=horizon)
        trigger.stop()
        return handled, trigger, queue

    def test_every_message_invokes_the_function(self):
        messages = [f"m{i}" for i in range(25)]
        handled, trigger, queue = self.run_scenario(messages)
        assert sorted(handled) == sorted(messages)
        assert trigger.stats.invoked == 25
        assert trigger.stats.failed == 0
        assert queue.depth == 0

    def test_delivery_latency_includes_polling_overhead(self):
        handled, trigger, __ = self.run_scenario(["only"])
        latency = trigger.stats.delivery_latencies[0]
        # Polling adds at least the async-poll delay on top of startup.
        assert latency > 0.02

    def test_concurrency_limit_paces_delivery(self):
        messages = [f"m{i}" for i in range(20)]
        __, slow_trigger, __ = self.run_scenario(messages, delay=0.5,
                                                 concurrency=2,
                                                 horizon=30.0)
        __, fast_trigger, __ = self.run_scenario(messages, delay=0.5,
                                                 concurrency=20,
                                                 horizon=30.0)
        assert slow_trigger.stats.invoked == 20
        assert fast_trigger.stats.invoked == 20
        # The concurrency-2 trigger delivers far later on average.
        assert max(slow_trigger.stats.delivery_latencies) > \
            2 * max(fast_trigger.stats.delivery_latencies)

    def test_handler_failures_counted(self):
        sim = CloudSim(seed=2)

        def failing(context, payload):
            yield context.env.timeout(0.001)
            raise RuntimeError("bad event")

        sim.platform.deploy(FunctionConfig(
            name="bad", handler=failing, memory_bytes=128 * units.MiB))
        queue = MessageQueue(sim.env)
        trigger = QueueTrigger(sim.env, sim.platform, queue, "bad")
        queue.send("x")
        sim.env.run(until=5.0)
        trigger.stop()
        assert trigger.stats.failed == 1
        assert trigger.stats.invoked == 0

    def test_parameter_validation(self):
        sim = CloudSim(seed=0)
        queue = MessageQueue(sim.env)
        with pytest.raises(ValueError):
            QueueTrigger(sim.env, sim.platform, queue, "echo", batch_size=0)
