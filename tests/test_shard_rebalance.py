"""Rebalancer tests: split/merge decisions, conservation, determinism."""

import math

from repro.serve.gateway import Tenant
from repro.shard import Rebalancer, ShardRouter
from repro.shard.replay import ManualClock

LAZY = Tenant(name="__default__", max_queue_depth=math.inf)


def make_router(shards=2, **kwargs):
    kwargs.setdefault("default_tenant", LAZY)
    return ShardRouter(ManualClock(), shards=shards, **kwargs)


def tenants_on(router, shard, count):
    found = []
    index = 0
    while len(found) < count:
        name = f"t{index}"
        if router.directory.locate(name).shard == shard:
            found.append(name)
        index += 1
    return found


class TestDecisions:
    def test_hot_shard_is_split_and_backlog_follows(self):
        router = make_router(shards=2)
        rebalancer = Rebalancer(router, seed=0, hot_factor=1.5,
                                cold_factor=0.0, max_shards=4)
        hot = router.shards()[0]
        for name in tenants_on(router, hot, 60):
            router.submit(name, 1.0)
        admitted = router.pending_total()
        events = rebalancer.step(now=60.0)
        splits = [e for e in events if e.action == "split"]
        assert splits and splits[0].shard == hot
        assert len(router.shards()) == 3
        # Roughly half the hot shard's ranges moved; queued requests of
        # remapped tenants moved with them — none were lost.
        assert splits[0].moved > 0
        assert router.pending_total() == admitted
        assert router.roll_up().balanced

    def test_cold_shard_is_merged_away(self):
        router = make_router(shards=3)
        rebalancer = Rebalancer(router, seed=0, hot_factor=100.0,
                                cold_factor=0.5, min_shards=2)
        live = router.shards()
        for name in tenants_on(router, live[0], 30):
            router.submit(name, 1.0)
        for name in tenants_on(router, live[1], 30):
            router.submit(name, 1.0)
        admitted = router.pending_total()
        events = rebalancer.step(now=60.0)
        merges = [e for e in events if e.action == "merge"]
        assert merges
        assert len(router.shards()) == 2
        assert router.pending_total() == admitted
        assert router.roll_up().balanced

    def test_quiet_window_makes_no_moves(self):
        router = make_router(shards=2)
        rebalancer = Rebalancer(router, seed=0, min_window=5)
        router.submit("t0", 1.0)
        assert rebalancer.step(now=60.0) == []
        assert len(router.shards()) == 2

    def test_split_stops_when_ring_ranges_are_atomic(self):
        # Each split halves a shard's ring points; a 1-point shard has
        # an atomic key range and must be skipped, not crashed on.
        router = make_router(shards=2, vnodes=2)
        rebalancer = Rebalancer(router, seed=0, hot_factor=1.01,
                                cold_factor=0.0, max_shards=16)
        hot = router.shards()[0]
        names = tenants_on(router, hot, 40)
        for tick in range(1, 6):
            for name in names:
                router.submit(name, 1.0)
            rebalancer.step(now=60.0 * tick)
        # One split was possible (2 points -> 1 + 1); the hot lineage
        # is then atomic, so the hot signal keeps firing but no further
        # split happens — and nothing crashes.
        assert len(router.shards()) == 3
        lineage = {router.directory.locate(name).shard for name in names}
        assert all(not router.directory.can_split(shard)
                   for shard in lineage)
        assert router.roll_up().balanced

    def test_fleet_bounds_are_respected(self):
        router = make_router(shards=2)
        rebalancer = Rebalancer(router, seed=0, hot_factor=1.01,
                                cold_factor=0.0, max_shards=2)
        hot = router.shards()[0]
        for name in tenants_on(router, hot, 20):
            router.submit(name, 1.0)
        rebalancer.step(now=60.0)
        # hot_factor=0 wants a split every window, but the fleet is at
        # max_shards already.
        assert len(router.shards()) == 2


class TestDeterminism:
    @staticmethod
    def _drive(seed):
        router = make_router(shards=3)
        rebalancer = Rebalancer(router, seed=seed, hot_factor=1.2,
                                cold_factor=0.4, max_shards=6)
        for tick in range(1, 6):
            for index in range(tick * 37):
                router.submit(f"t{index % 500}", 1.0)
            rebalancer.step(now=60.0 * tick)
            for shard in router.shards():
                gateway = router.gateways[shard]
                drained = 0
                while gateway.total_pending and drained < 40:
                    gateway.metrics.record_completion(_completed(
                        gateway.pop(gateway.backlogged()[0]),
                        60.0 * tick))
                    drained += 1
        return rebalancer.history(), router.roll_up().to_dict()

    def test_same_seed_same_history_and_roll_up(self):
        assert self._drive(3) == self._drive(3)

    def test_history_rows_are_json_shaped(self):
        history, report = self._drive(3)
        assert report["balanced"]
        for row in history:
            assert set(row) == {"at", "action", "shard", "peer", "load",
                                "mean_load", "moved"}
            assert row["action"] in ("split", "merge")


def _completed(request, now):
    from repro.serve.metrics import CompletedQuery

    return CompletedQuery(
        tenant=request.tenant, query_id=f"q{request.seq}",
        submitted_at=request.submitted_at, started_at=now,
        finished_at=now + request.plan, runtime=request.plan,
        cost_usd=0.0, retries=0, hedges=0)
