"""Shard-router tests: routing, the cache, fencing, O(1) hot path."""

import math

import pytest

from repro.serve.gateway import QueryGateway, Tenant
from repro.shard import ShardRouter
from repro.shard.replay import ManualClock, ScanGuard

LAZY = Tenant(name="__default__", max_queue_depth=math.inf)


def make_router(shards=3, **kwargs):
    kwargs.setdefault("default_tenant", LAZY)
    return ShardRouter(ManualClock(), shards=shards, **kwargs)


def tenant_on(router, shard, start=0):
    """Some tenant the directory maps to ``shard``."""
    for index in range(start, start + 100_000):
        name = f"t{index}"
        if router.directory.locate(name).shard == shard:
            return name
    raise AssertionError(f"no tenant found for {shard}")


class TestRouting:
    def test_submit_lands_on_the_routed_shard(self):
        router = make_router()
        for index in range(50):
            tenant = f"t{index}"
            shard = router.route(tenant).shard
            request = router.submit(tenant, 1.0)
            assert request is not None
            assert router.gateways[shard].pending(tenant) >= 1

    def test_route_cache_is_bounded(self):
        router = make_router(route_cache_size=8)
        for index in range(100):
            router.route(f"t{index}")
        assert len(router._routes) <= 8
        # Evicted tenants still route, via a directory refresh.
        assert router.route("t0").shard in router.gateways

    def test_rejects_nonpositive_cache(self):
        with pytest.raises(ValueError):
            make_router(route_cache_size=0)

    def test_stale_cached_route_is_fenced_and_retried(self):
        """A route cached before a split is rejected by the epoch fence;
        the router refreshes and the submission still lands exactly once."""
        router = make_router(shards=2)
        hot = router.shards()[0]
        tenant = tenant_on(router, hot)
        router.route(tenant)  # warm the cache at the pre-split epoch
        router.split_shard(hot)
        before = router.stale_retries
        request = router.submit(tenant, 1.0)
        assert request is not None
        assert router.stale_retries == before + 1
        owner = router.route(tenant).shard
        assert router.gateways[owner].pending(tenant) == 1
        assert router.roll_up().to_dict()["offered"] == 1

    def test_lazy_tenants_leave_no_resident_state(self):
        """Queues of never-registered tenants vanish once drained."""
        router = make_router()
        for index in range(200):
            router.submit(f"t{index}", 1.0)
        assert router.pending_total() == 200
        for shard in router.shards():
            gateway = router.gateways[shard]
            while gateway.total_pending:
                gateway.pop(gateway.backlogged()[0])
        assert router.pending_total() == 0
        assert all(not router.gateways[shard].queues
                   for shard in router.shards())


class TestRollUp:
    def test_roll_up_reconciles_offered_against_all_outcomes(self):
        router = make_router(shards=2, max_pending=10)
        for index in range(15):
            router.submit(f"t{index}", 1.0)
        report = router.roll_up()
        data = report.to_dict()
        assert report.balanced
        assert data["offered"] == 15
        assert data["offered"] == data["completed"] + data["shed"] \
            + data["failed"] + data["pending"]
        assert data["shed"] >= 0 and data["pending"] <= 15

    def test_fail_shard_recovers_every_admitted_query(self):
        router = make_router(shards=3)
        for index in range(120):
            router.submit(f"t{index}", 1.0)
        admitted = router.pending_total()
        victim = max(router.shards(),
                     key=lambda s: router.gateways[s].total_pending)
        orphans = router.fail_shard(victim)
        assert orphans > 0
        assert victim not in router.gateways
        # Nothing was lost: the backlog moved, the roll-up reconciles.
        assert router.pending_total() == admitted
        assert router.fleet.recovered_requests == orphans
        assert router.roll_up().balanced

    def test_merge_shard_recovers_the_cold_backlog(self):
        router = make_router(shards=3)
        for index in range(90):
            router.submit(f"t{index}", 1.0)
        admitted = router.pending_total()
        cold, target = router.shards()[0], router.shards()[1]
        router.merge_shard(cold, target)
        assert cold not in router.gateways
        assert router.pending_total() == admitted
        assert router.roll_up().balanced

    def test_retired_shards_stay_in_the_roll_up(self):
        router = make_router(shards=2)
        tenant = tenant_on(router, router.shards()[0])
        router.submit(tenant, 1.0)
        dead = router.route(tenant).shard
        other = next(s for s in router.shards() if s != dead)
        # Complete nothing; fail the shard; its offered count survives.
        router.fail_shard(dead)
        assert dead in router.shard_metrics
        assert router.roll_up().to_dict()["offered"] == 1
        assert other in router.gateways


class TestExternalAdmission:
    def test_offer_external_holds_and_releases_capacity(self):
        router = make_router(shards=2, max_pending=2)
        release = router.offer_external("t1")
        assert release is not None
        shard = router.route("t1").shard
        assert router.gateways[shard].external_pending == 1
        release()
        assert router.gateways[shard].external_pending == 0

    def test_offer_external_sheds_at_the_bound(self):
        router = make_router(shards=1, max_pending=1)
        assert router.offer_external("t1") is not None
        assert router.offer_external("t2") is None
        report = router.roll_up().to_dict()
        assert report["shed"] == 1


class TestGatewayHotPathIsTenantCountFree:
    def test_no_full_scans_across_submit_pop_and_introspection(self):
        """Regression: admission, dispatch, and the load probes must
        never iterate the tenant-keyed dicts (O(total tenants))."""
        clock = ManualClock()
        gateway = QueryGateway(clock, shard_id="s0", default_tenant=LAZY)
        for index in range(64):
            gateway.register(Tenant(name=f"reg{index}"))
        gateway.queues = ScanGuard(gateway.queues)
        gateway.tenants = ScanGuard(gateway.tenants)
        for index in range(500):
            clock.now = float(index)
            assert gateway.submit(f"t{index % 90}", 1.0) is not None
            gateway.pending(f"t{index % 90}")
            _ = gateway.total_pending
            _ = gateway.load
        while gateway.total_pending:
            name = gateway.backlogged()[0]
            gateway.head(name)
            gateway.pop(name)
        assert gateway.queues.full_scans == 0
        assert gateway.tenants.full_scans == 0
