"""Tests for the futures executor, invoker, and response futures."""

import math

import pytest

from repro.futures import (
    ALL_COMPLETED,
    ALWAYS,
    ANY_COMPLETED,
    ExecutorConfig,
    FunctionExecutor,
    InvokerConfig,
)
from repro.faas import LambdaPlatform
from repro.network import Fabric
from repro.sim import Environment, RandomStreams


class Transient(Exception):
    """A retryable application error (the invoker's retry trigger)."""

    retryable = True


def make_executor(invoker=None, seed=11):
    env = Environment()
    fabric = Fabric(env)
    rng = RandomStreams(seed=seed)
    platform = LambdaPlatform(env, fabric, rng)
    config = ExecutorConfig(invoker=invoker or InvokerConfig())
    executor = FunctionExecutor(env, platform, rng, config=config)
    return env, platform, executor


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def square(context, x):
    yield context.env.timeout(0.01)
    return x * x


def sleeper(context, spec):
    yield context.env.timeout(spec["sleep_s"])
    return spec["tag"]


class TestCallAsync:
    def test_returns_pending_future_then_resolves(self):
        env, _, executor = make_executor()
        future = executor.call_async(square, 6)
        assert not future.done
        assert future.state == "pending"
        result = run(env, executor.get_result(future))
        assert result == 36
        assert future.success
        assert future.result() == 36
        assert len(future.attempts) == 1
        assert future.attempts[0].ok
        assert future.attempts[0].cost_usd > 0

    def test_status_snapshot(self):
        env, _, executor = make_executor()
        future = executor.call_async(square, 3)
        run(env, executor.get_result(future))
        status = future.status()
        assert status["state"] == "success"
        assert status["attempts"] == 1
        assert status["dispatched_at"] < status["finished_at"]

    def test_result_before_done_raises(self):
        _, _, executor = make_executor()
        future = executor.call_async(square, 2)
        with pytest.raises(RuntimeError, match="wait"):
            future.result()


class TestMap:
    def test_results_in_submission_order(self):
        env, _, executor = make_executor()
        futures = executor.map(square, range(8))
        results = run(env, executor.get_result(futures))
        assert results == [x * x for x in range(8)]

    def test_empty_iterable_yields_no_futures_and_no_job(self):
        _, _, executor = make_executor()
        assert executor.map(square, []) == []
        assert executor.jobs == []

    def test_bounded_inflight_concurrency(self):
        env, _, executor = make_executor(
            invoker=InvokerConfig(max_inflight=2))
        futures = executor.map(sleeper, [{"sleep_s": 0.2, "tag": i}
                                         for i in range(6)])
        run(env, executor.get_result(futures))
        assert executor.invoker.inflight_peak <= 2
        assert all(f.success for f in futures)


class TestWait:
    def test_all_completed_waits_for_everything(self):
        env, _, executor = make_executor()
        futures = executor.map(sleeper, [{"sleep_s": 0.1 * (i + 1),
                                          "tag": i} for i in range(4)])
        done, pending = run(env, executor.wait(futures,
                                               when=ALL_COMPLETED))
        assert len(done) == 4 and pending == []

    def test_any_completed_returns_on_first_finish(self):
        env, _, executor = make_executor()
        specs = [{"sleep_s": 0.05, "tag": "fast"},
                 {"sleep_s": 5.0, "tag": "slow"}]
        futures = executor.map(sleeper, specs)
        done, pending = run(env, executor.wait(futures,
                                               when=ANY_COMPLETED))
        assert [f.result() for f in done] == ["fast"]
        assert len(pending) == 1 and not pending[0].done

    def test_always_returns_without_waiting(self):
        env, _, executor = make_executor()
        futures = executor.map(square, range(3))
        now = env.now
        done, pending = run(env, executor.wait(futures, when=ALWAYS))
        assert env.now == now  # no simulated time passed
        assert done == [] and len(pending) == 3

    def test_unknown_condition_raises(self):
        env, _, executor = make_executor()
        futures = executor.map(square, range(2))
        with pytest.raises(ValueError, match="wait condition"):
            run(env, executor.wait(futures, when="SOME_COMPLETED"))


def boom(context, data):
    yield context.env.timeout(0.01)
    raise ValueError(f"bad data {data}")


class TestErrors:
    def test_handler_error_captured_on_future(self):
        env, _, executor = make_executor()
        future = executor.call_async(boom, "x")
        run(env, executor.wait([future]))
        assert future.state == "error"
        assert isinstance(future.error, ValueError)
        with pytest.raises(ValueError, match="bad data x"):
            future.result()
        assert future.result(throw_except=False) is None
        # The failed attempt is still billed.
        assert future.cost_usd > 0

    def test_get_result_throw_except_false_suppresses(self):
        env, _, executor = make_executor()
        futures = [executor.call_async(square, 2),
                   executor.call_async(boom, "y")]
        results = run(env, executor.get_result(futures,
                                               throw_except=False))
        assert results == [4, None]

    def test_map_reduce_map_failure_fails_reduce_without_reducer(self):
        env, _, executor = make_executor()
        reducer_ran = []

        def reducer(context, results):
            reducer_ran.append(True)
            yield context.env.timeout(0.001)
            return results

        def maybe_boom(context, x):
            yield context.env.timeout(0.01)
            if x == 2:
                raise ValueError("poisoned item")
            return x

        reduce_future = executor.map_reduce(maybe_boom, range(4), reducer)
        run(env, executor.wait([reduce_future]))
        assert reduce_future.state == "error"
        assert isinstance(reduce_future.error, ValueError)
        assert reducer_ran == []


class TestRetries:
    def test_transient_failures_retried_to_success(self):
        env, _, executor = make_executor()
        calls = {"n": 0}

        def flaky(context, data):
            yield context.env.timeout(0.01)
            calls["n"] += 1
            if calls["n"] <= 2:
                raise Transient("not yet")
            return data

        future = executor.call_async(flaky, "ok")
        result = run(env, executor.get_result(future))
        assert result == "ok"
        assert len(future.attempts) == 3
        assert [a.ok for a in future.attempts] == [False, False, True]
        assert executor.invoker.retries == 2
        # Failed attempts are billed too.
        assert all(a.cost_usd > 0 for a in future.attempts)

    def test_max_attempts_exhaustion_rejects(self):
        env, _, executor = make_executor(
            invoker=InvokerConfig(max_attempts=2))

        def always_flaky(context, data):
            yield context.env.timeout(0.01)
            raise Transient("forever")

        future = executor.call_async(always_flaky, None)
        run(env, executor.wait([future]))
        assert future.state == "error"
        assert isinstance(future.error, Transient)
        assert len(future.attempts) == 2

    def test_non_retryable_error_fails_immediately(self):
        env, _, executor = make_executor()
        future = executor.call_async(boom, "z")
        run(env, executor.wait([future]))
        assert len(future.attempts) == 1
        assert executor.invoker.retries == 0

    def test_same_seed_same_backoff_schedule(self):
        def retry_times(seed):
            env, _, executor = make_executor(seed=seed)
            calls = {"n": 0}

            def flaky(context, data):
                yield context.env.timeout(0.01)
                calls["n"] += 1
                if calls["n"] <= 2:
                    raise Transient("not yet")
                return data

            future = executor.call_async(flaky, 1)
            run(env, executor.wait([future]))
            return [round(a.requested_at, 9) for a in future.attempts]

        assert retry_times(3) == retry_times(3)


class TestMapReduce:
    def test_reduce_sees_results_in_submission_order(self):
        env, _, executor = make_executor()

        def reducer(context, results):
            yield context.env.timeout(0.001)
            return results

        # Later items sleep less, so completion order is reversed.
        specs = [{"sleep_s": 0.5 - 0.1 * i, "tag": i} for i in range(4)]
        reduce_future = executor.map_reduce(sleeper, specs, reducer)
        result = run(env, executor.get_result(reduce_future))
        assert result == [0, 1, 2, 3]
        assert [f.result() for f in reduce_future.map_futures] \
            == [0, 1, 2, 3]


class TestSpeculation:
    def test_straggler_gets_duplicate_and_zombie_drains(self):
        env, _, executor = make_executor(
            invoker=InvokerConfig(speculate=True, spec_poll_s=0.1,
                                  spec_min_wait_s=0.3, spec_factor=2.0,
                                  spec_quorum=0.5))
        specs = [{"sleep_s": 0.05, "tag": i} for i in range(7)]
        specs.append({"sleep_s": 10.0, "tag": "straggler"})
        futures = executor.map(sleeper, specs)
        results = run(env, executor.get_result(futures))
        assert results[-1] == "straggler"
        assert executor.invoker.speculations >= 1
        straggler = futures[-1]
        assert straggler.hedged
        drained = run(env, executor.drain())
        assert drained >= 1
        # Both the winning and the abandoned attempt are billed.
        assert len(straggler.attempts) == 2


class TestAccounting:
    def test_per_future_costs_match_catalog_total(self):
        env, _, executor = make_executor()
        futures = executor.map(square, range(10))
        run(env, executor.get_result(futures))
        compute = executor.compute_cost_usd()
        catalog = executor.catalog_cost_usd()
        assert compute > 0
        assert math.isclose(compute, catalog, rel_tol=1e-9, abs_tol=1e-15)
        assert math.isclose(compute, sum(f.cost_usd for f in futures),
                            rel_tol=1e-12)

    def test_summary_counts_states(self):
        env, _, executor = make_executor()
        futures = executor.map(square, range(5))
        futures.append(executor.call_async(boom, "q"))
        run(env, executor.wait(futures))
        summary = executor.summary()
        assert summary["states"] == {"pending": 0, "running": 0,
                                     "success": 5, "error": 1}
        assert summary["calls"] == 6
