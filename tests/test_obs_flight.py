"""Flight recorder: ring bounds, incident bundles, digest integrity."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.flight import (
    DEFAULT_RING_CAPACITY,
    INCIDENT_SCHEMA,
    FlightRecorder,
    bundle_digest,
    verify_bundle,
)
from repro.telemetry import canonical_json


class TestRing:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_ring_evicts_oldest_at_capacity(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.note("s0", float(i), "tick", seq=i)
        ring = recorder.ring("s0")
        assert len(ring) == 3
        assert [note["seq"] for note in ring] == [2, 3, 4]

    def test_rings_are_per_shard(self):
        recorder = FlightRecorder()
        recorder.note("s0", 1.0, "a")
        recorder.note("s1", 2.0, "b")
        assert recorder.shards() == ["s0", "s1"]
        assert [n["kind"] for n in recorder.ring("s0")] == ["a"]

    def test_unknown_shard_ring_is_empty(self):
        assert FlightRecorder().ring("nope") == []

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_RING_CAPACITY


class TestIncidents:
    def _bundle(self, recorder=None, **kwargs):
        recorder = recorder or FlightRecorder()
        recorder.note("s0", 1.0, "shard-failure", orphans=4)
        recorder.note("s1", 2.0, "trace-kept", trace="q7", reason="fault")
        return recorder, recorder.dump_incident(
            at=3.0, trigger={"rule": "fast-burn", "scope": "fleet"},
            **kwargs)

    def test_bundle_shape_and_schema(self):
        _, bundle = self._bundle(
            metrics={"attainment": 0.8},
            traces={"recent_kept": ["q7"]},
            config={"seed": 3})
        assert bundle["schema"] == INCIDENT_SCHEMA
        assert bundle["seq"] == 0
        assert set(bundle["rings"]) == {"s0", "s1"}
        assert bundle["metrics"] == {"attainment": 0.8}
        assert verify_bundle(bundle)

    def test_shard_filter_restricts_rings(self):
        _, bundle = self._bundle(shards=["s0", "missing"])
        assert set(bundle["rings"]) == {"s0"}

    def test_incident_seq_increments(self):
        recorder, first = self._bundle()
        second = recorder.dump_incident(at=4.0, trigger={"rule": "slow"})
        assert (first["seq"], second["seq"]) == (0, 1)
        assert recorder.incidents == [first, second]

    def test_digest_excludes_itself(self):
        _, bundle = self._bundle()
        assert bundle["digest"] == bundle_digest(bundle)

    def test_tampering_breaks_verification(self):
        _, bundle = self._bundle()
        tampered = json.loads(canonical_json(bundle))
        tampered["at"] = 99.0
        assert not verify_bundle(tampered)

    def test_wrong_schema_fails_verification(self):
        _, bundle = self._bundle()
        other = dict(bundle, schema="something/2")
        assert not verify_bundle(other)

    def test_bundle_round_trips_through_json(self):
        _, bundle = self._bundle(metrics={"x": 1.23456789012345})
        reloaded = json.loads(canonical_json(bundle))
        assert verify_bundle(reloaded)
        assert canonical_json(reloaded) == canonical_json(bundle)


class TestDeterminism:
    @given(st.lists(
        st.tuples(st.sampled_from(["s0", "s1", "s2"]),
                  st.floats(min_value=0.0, max_value=100.0),
                  st.sampled_from(["tick", "shed", "alert"])),
        max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_same_notes_same_bundle_bytes(self, notes):
        bundles = []
        for _ in range(2):
            recorder = FlightRecorder(capacity=16)
            for shard, t, kind in notes:
                recorder.note(shard, t, kind)
            bundles.append(recorder.dump_incident(
                at=101.0, trigger={"rule": "r"}))
        assert canonical_json(bundles[0]) == canonical_json(bundles[1])
        assert bundles[0]["digest"] == bundles[1]["digest"]
