"""Exporter tests: canonical JSON, Chrome trace schema, and the golden file.

The golden file pins the full Chrome-trace export of a small two-pipeline
query (TPC-H Q6, two scan fragments, seed 0) byte-for-byte. Regenerate it
after an intentional format change with::

    PYTHONPATH=src python tests/golden/regen_tpch_q6_trace.py
"""

import json
from pathlib import Path

import pytest

from repro.core.context import CloudSim
from repro.telemetry import (
    TelemetryRecorder,
    canonical_json,
    chrome_trace,
    metrics_snapshot,
    recording,
    round_floats,
    round_for_json,
    validate_chrome_trace,
)
from repro.workloads.suite import SuiteSetup, build_plan, setup_engine

GOLDEN = Path(__file__).parent / "golden" / "tpch_q6_trace.json"


def record_q6(seed: int = 0):
    """The golden scenario: TPC-H Q6, two scan fragments, fixed seed."""
    with recording() as recorder:
        sim = CloudSim(seed=seed)
        setup = SuiteSetup(queries=("tpch-q6",), lineitem_partitions=3,
                          orders_partitions=2, rows_per_partition=96)
        engine = setup_engine(sim, setup)
        result = sim.run(engine.run_query(
            build_plan("tpch-q6", scan_fragments=2)))
    return result, recorder


# -- canonical JSON helpers ---------------------------------------------------

def test_round_for_json():
    assert round_for_json(None) is None
    assert round_for_json(1.23456789012345) == 1.234567890
    assert round_for_json(2) == 2.0


def test_round_floats_recurses():
    nested = {"a": [0.1234567891239, {"b": (1.0, 2.999999999999)}], "c": "s"}
    rounded = round_floats(nested)
    assert rounded["a"][0] == 0.123456789
    assert rounded["a"][1]["b"] == [1.0, 3.0]
    assert rounded["c"] == "s"


def test_canonical_json_is_sorted_and_stable():
    first = canonical_json({"b": 1, "a": {"d": 2, "c": 3}})
    second = canonical_json({"a": {"c": 3, "d": 2}, "b": 1})
    assert first == second
    assert first.index('"a"') < first.index('"b"')


def test_double_rounding_is_noop():
    value = 1.23456789055
    assert round_for_json(round_for_json(value)) == round_for_json(value)


# -- Chrome trace -------------------------------------------------------------

def _synthetic_recorder() -> TelemetryRecorder:
    recorder = TelemetryRecorder()
    root = recorder.start_trace("query q", 0.0)
    worker = recorder.start_span("worker", 1.0, parent=root,
                                 category="worker")
    worker.add_event(1.5, "milestone", detail=0.123456789123)
    recorder.record_span("read", 1.2, 1.8, parent=worker,
                         category="storage")
    worker.finish(2.0)
    root.finish(3.0)
    recorder.event(2.5, "global", category="test", value=1)
    recorder.timeseries("queue.depth").sample(0.5, 2.0)
    return recorder


def test_chrome_trace_shape_and_validation():
    recorder = _synthetic_recorder()
    trace = chrome_trace(recorder)
    assert trace["displayTimeUnit"] == "ms"
    counts = validate_chrome_trace(trace)
    assert counts["X"] == 3          # root + worker + read
    assert counts["M"] == 2          # trace process + events process
    assert counts["i"] == 2          # span event + global event
    assert counts["C"] == 1          # one counter sample
    # Round-trips through JSON.
    validate_chrome_trace(json.loads(canonical_json(trace)))


def test_chrome_trace_nests_children_in_parent_lane():
    recorder = _synthetic_recorder()
    events = {ev["name"]: ev for ev in chrome_trace(recorder)["traceEvents"]
              if ev.get("ph") == "X"}
    # The storage read is contained in the worker span, so both render in
    # the same lane (Perfetto draws containment as nesting).
    assert events["read"]["tid"] == events["worker"]["tid"]
    assert events["read"]["args"]["parent_id"] == \
        events["worker"]["args"]["span_id"]


def test_chrome_trace_overlapping_siblings_get_distinct_lanes():
    recorder = TelemetryRecorder()
    root = recorder.start_trace("q", 0.0)
    recorder.record_span("w0", 1.0, 5.0, parent=root, category="worker")
    recorder.record_span("w1", 2.0, 6.0, parent=root, category="worker")
    root.finish(7.0)
    events = {ev["name"]: ev for ev in chrome_trace(recorder)["traceEvents"]
              if ev.get("ph") == "X"}
    # Partial overlap cannot nest: the second worker takes a new lane.
    assert events["w0"]["tid"] != events["w1"]["tid"]
    validate_chrome_trace(chrome_trace(recorder))


def test_chrome_trace_marks_unfinished_spans():
    recorder = TelemetryRecorder()
    root = recorder.start_trace("q", 0.0)
    recorder.start_span("zombie", 1.0, parent=root)  # never finished
    root.finish(4.0)
    events = {ev["name"]: ev for ev in chrome_trace(recorder)["traceEvents"]
              if ev.get("ph") == "X"}
    assert events["zombie"]["args"]["unfinished"] is True
    # Extended to the max observed time, so Perfetto still renders it.
    assert events["zombie"]["dur"] == pytest.approx((4.0 - 1.0) * 1e6)


def test_validate_rejects_unknown_parent():
    recorder = TelemetryRecorder()
    root = recorder.start_trace("q", 0.0)
    child = recorder.record_span("c", 0.1, 0.2, parent=root)
    root.finish(1.0)
    trace = chrome_trace(recorder)
    for ev in trace["traceEvents"]:
        if ev.get("ph") == "X" and ev["args"]["span_id"] == child.span_id:
            ev["args"]["parent_id"] = 999
    with pytest.raises(ValueError, match="unknown parent"):
        validate_chrome_trace(trace)


def test_validate_rejects_malformed_document():
    with pytest.raises(ValueError, match="traceEvents"):
        validate_chrome_trace({"traceEvents": "nope"})
    with pytest.raises(ValueError, match="missing"):
        validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "x", "pid": 1}]})


def test_counters_can_be_excluded():
    recorder = _synthetic_recorder()
    counts = validate_chrome_trace(
        chrome_trace(recorder, include_counters=False))
    assert "C" not in counts


# -- golden file --------------------------------------------------------------

def test_q6_trace_matches_golden_file():
    """Byte-exact Chrome trace for the pinned two-pipeline scenario."""
    _, recorder = record_q6()
    rendered = canonical_json(chrome_trace(recorder)) + "\n"
    assert GOLDEN.exists(), (
        f"golden file missing; generate with "
        f"PYTHONPATH=src python tests/golden/regen_tpch_q6_trace.py")
    assert rendered == GOLDEN.read_text()


def test_q6_trace_schema_holds():
    """Every span's parent id exists — on the real query, not a toy."""
    _, recorder = record_q6()
    counts = validate_chrome_trace(chrome_trace(recorder))
    assert counts["X"] == len(recorder.spans)
    # The two-pipeline plan produces spans from every layer.
    categories = {span.category for span in recorder.spans}
    assert {"query", "faas", "coordinator", "stage", "worker",
            "storage", "phase"} <= categories


def test_metrics_snapshot_is_canonical_and_parseable():
    _, recorder = record_q6()
    snapshot = metrics_snapshot(recorder)
    text = canonical_json(snapshot)
    parsed = json.loads(text)
    assert parsed["span_count"] == len(recorder.spans)
    assert parsed["counters"]["storage.s3-standard.get.ok"] > 0
    # Rendering twice from the same recorder is byte-identical.
    assert canonical_json(metrics_snapshot(recorder)) == text
