"""Tests for the FaaS platform simulator."""

import pytest

from repro import units
from repro.faas import (
    ConcurrencyScaler,
    FunctionConfig,
    LambdaPlatform,
    REGIONS,
)
from repro.faas.platform import IDLE_LIFETIME_MEDIAN_S
from repro.network import Fabric
from repro.sim import Environment, RandomStreams


def noop_handler(context, payload):
    """A minimal function: returns its payload untouched."""
    yield context.env.timeout(0.001)
    return payload


def make_platform(region="us-east-1", quota=1_000):
    env = Environment()
    fabric = Fabric(env)
    rng = RandomStreams(seed=11)
    platform = LambdaPlatform(env, fabric, rng, region=region,
                              account_quota=quota)
    platform.deploy(FunctionConfig(name="noop", handler=noop_handler))
    return env, platform


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


class TestFunctionConfig:
    def test_vcpus_follow_memory(self):
        config = FunctionConfig(name="f", handler=noop_handler,
                                memory_bytes=7_076 * units.MiB)
        assert config.vcpus == pytest.approx(4.0, rel=0.01)

    def test_memory_bounds_validated(self):
        with pytest.raises(ValueError):
            FunctionConfig(name="f", handler=noop_handler,
                           memory_bytes=64 * units.MiB)
        with pytest.raises(ValueError):
            FunctionConfig(name="f", handler=noop_handler,
                           memory_bytes=20 * units.GiB)


class TestInvocation:
    def test_first_invocation_is_cold(self):
        env, platform = make_platform()
        record = run(env, platform.invoke("noop", {"x": 1}))
        assert record.cold
        assert record.response == {"x": 1}
        assert record.ok

    def test_second_invocation_is_warm_and_faster(self):
        env, platform = make_platform()
        first = run(env, platform.invoke("noop"))
        second = run(env, platform.invoke("noop"))
        assert not second.cold
        assert second.init_duration < first.init_duration
        # Coldstarts for small binaries are hundreds of ms; warmstarts
        # tens of ms.
        assert first.init_duration > 0.08
        assert second.init_duration < 0.04

    def test_invoking_unknown_function_raises(self):
        env, platform = make_platform()
        with pytest.raises(KeyError, match="not deployed"):
            run(env, platform.invoke("ghost"))

    def test_handler_error_recorded_and_raised(self):
        env, platform = make_platform()

        def failing(context, payload):
            yield context.env.timeout(0.001)
            raise RuntimeError("handler blew up")

        platform.deploy(FunctionConfig(name="bad", handler=failing))

        def scenario(env):
            try:
                yield from platform.invoke("bad")
            except RuntimeError as exc:
                return str(exc)

        assert run(env, scenario(env)) == "handler blew up"
        assert platform.records[-1].error is not None

    def test_async_invocation_adds_polling_latency(self):
        env, platform = make_platform()
        sync = run(env, platform.invoke("noop"))
        # Warm the pool, then compare warm sync vs warm async.
        warm_sync = run(env, platform.invoke("noop"))
        warm_async = run(env, platform.invoke_async("noop"))
        assert warm_async.total_latency > warm_sync.total_latency
        del sync

    def test_sandbox_reuse_tracks_invocations(self):
        env, platform = make_platform()
        first = run(env, platform.invoke("noop"))
        second = run(env, platform.invoke("noop"))
        assert first.sandbox_id == second.sandbox_id

    def test_sandbox_expires_after_idle_lifetime(self):
        env, platform = make_platform()
        run(env, platform.invoke("noop"))

        def later(env):
            # Far beyond any sampled idle lifetime.
            yield env.timeout(IDLE_LIFETIME_MEDIAN_S * 50)
            record = yield from platform.invoke("noop")
            return record

        record = run(env, later(env))
        assert record.cold

    def test_concurrent_invocations_use_distinct_sandboxes(self):
        env, platform = make_platform()

        def slow(context, payload):
            yield context.env.timeout(1.0)
            return context.sandbox_id

        platform.deploy(FunctionConfig(name="slow", handler=slow))

        def scenario(env):
            procs = [env.process(platform.invoke("slow")) for _ in range(5)]
            records = []
            for proc in procs:
                records.append((yield proc))
            return records

        records = run(env, scenario(env))
        sandbox_ids = {record.sandbox_id for record in records}
        assert len(sandbox_ids) == 5

    def test_region_multiplier_slows_coldstarts(self):
        env_us, us = make_platform("us-east-1")
        env_eu, eu = make_platform("eu-west-1")
        cold_us = run(env_us, us.invoke("noop")).init_duration
        cold_eu = run(env_eu, eu.invoke("noop")).init_duration
        # EU coldstarts are ~1.5x slower; jitter can blur a single sample,
        # so compare with slack.
        assert cold_eu > cold_us


class TestConcurrencyScaling:
    def test_allowance_starts_at_burst(self):
        scaler = ConcurrencyScaler(burst_limit=3_000, account_quota=10_000)
        assert scaler.allowance(0.0) == 3_000

    def test_ramp_grows_at_500_per_minute(self):
        scaler = ConcurrencyScaler(burst_limit=3_000, account_quota=10_000)
        scaler.note_demand(3_000, now=0.0)
        assert scaler.allowance(60.0) == 3_500
        assert scaler.allowance(300.0) == 5_500

    def test_allowance_capped_at_quota(self):
        scaler = ConcurrencyScaler(burst_limit=3_000, account_quota=4_000)
        scaler.note_demand(4_000, now=0.0)
        assert scaler.allowance(3_600.0) == 4_000

    def test_ramp_resets_when_load_subsides(self):
        scaler = ConcurrencyScaler(burst_limit=3_000, account_quota=10_000)
        scaler.note_demand(3_000, now=0.0)
        assert scaler.allowance(60.0) == 3_500
        scaler.note_demand(10, now=61.0)
        assert scaler.allowance(120.0) == 3_000

    def test_quota_limits_platform_concurrency(self):
        env, platform = make_platform(quota=3)

        def slow(context, payload):
            yield context.env.timeout(10.0)

        platform.deploy(FunctionConfig(name="slow", handler=slow))

        def scenario(env):
            procs = [env.process(platform.invoke("slow")) for _ in range(4)]
            yield env.timeout(5.0)
            running = platform.concurrent_executions
            for proc in procs:
                yield proc
            return running

        running_mid = run(env, scenario(env))
        assert running_mid == 3


class TestRegions:
    def test_known_regions_present(self):
        assert set(REGIONS) == {"us-east-1", "eu-west-1", "ap-northeast-1"}

    def test_congestion_factor_positive_unit_scale(self):
        import numpy as np
        rng = np.random.default_rng(0)
        profile = REGIONS["us-east-1"]
        draws = [profile.congestion(rng, now=0.0, warm=False)
                 for _ in range(2_000)]
        assert all(d > 0 for d in draws)
        assert sum(draws) / len(draws) == pytest.approx(1.0, rel=0.05)

    def test_cold_variability_exceeds_warm_in_us(self):
        profile = REGIONS["us-east-1"]
        assert profile.cold_cov > profile.warm_cov


class TestAsyncInvocation:
    """Regression coverage for the async invocation path."""

    def test_async_error_captured_on_record_not_raised(self):
        env, platform = make_platform()

        def failing(context, payload):
            yield context.env.timeout(0.001)
            raise RuntimeError("handler blew up")

        platform.deploy(FunctionConfig(name="bad", handler=failing))
        record = run(env, platform.invoke_async("bad"))
        assert isinstance(record.error, RuntimeError)
        assert not record.ok
        assert record.response is None

    def test_fire_and_forget_failure_does_not_crash_kernel(self):
        env, platform = make_platform()

        def failing(context, payload):
            yield context.env.timeout(0.001)
            raise RuntimeError("nobody is watching")

        platform.deploy(FunctionConfig(name="bad", handler=failing))
        # Launch without awaiting: the failure must be absorbed into
        # the record, never surfacing as an unwatched process crash.
        env.process(platform.invoke_async("bad"))

        def bystander(env):
            yield env.timeout(5.0)
            return "alive"

        assert run(env, bystander(env)) == "alive"
        assert platform.records[-1].error is not None

    def test_out_of_order_completion_records_by_finish_time(self):
        env, platform = make_platform()

        def napper(context, payload):
            yield context.env.timeout(payload["sleep_s"])
            return payload["tag"]

        platform.deploy(FunctionConfig(name="nap", handler=napper))

        def scenario(env):
            procs = [env.process(platform.invoke_async(
                "nap", {"sleep_s": sleep, "tag": tag}))
                for tag, sleep in (("slow", 0.6), ("fast", 0.1),
                                   ("mid", 0.3))]
            records = []
            for proc in procs:
                record = yield proc
                records.append(record)
            return records

        records = run(env, scenario(env))
        # Each caller gets its own record with the right response...
        assert [r.response for r in records] == ["slow", "fast", "mid"]
        # ...while the platform log is ordered by completion time.
        logged = [r.response for r in platform.records]
        assert logged == ["fast", "mid", "slow"]
        finishes = [r.finished_at for r in platform.records]
        assert finishes == sorted(finishes)


class TestSandboxLossReclamation:
    def test_lost_sandbox_never_returns_to_warm_pool(self):
        from repro.chaos import FaultInjector, FaultPlan, FaultSpec
        from repro.sim import RandomStreams as Streams

        env, platform = make_platform()

        def slow(context, payload):
            yield context.env.timeout(1.0)
            return "done"

        platform.deploy(FunctionConfig(name="slow", handler=slow))
        plan = FaultPlan(
            name="one-loss",
            specs=(FaultSpec(kind="sandbox_loss", function="slow",
                             probability=1.0, after_s=0.1,
                             max_events=1),))
        FaultInjector(plan, Streams(seed=5)).install(platform=platform)

        first = run(env, platform.invoke_async("slow"))
        assert first.error is not None  # reclaimed mid-flight
        # The reclaimed sandbox must not serve a warm start: the next
        # invocation lands on fresh infrastructure.
        second = run(env, platform.invoke("slow"))
        assert second.cold
        assert second.sandbox_id != first.sandbox_id
        assert second.error is None
