"""Observed replays: outcome neutrality, determinism, incident content.

Uses a deliberately tiny shard-failure replay (~0.1s per run) so the
full plane — SLO engine, tail sampler, flight recorder, incident dumps
— is exercised end-to-end inside the tier-1 budget.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.flight import verify_bundle
from repro.obs.scenario import obs_smoke, run_obs_replay
from repro.shard.replay import ReplayConfig, run_replay
from repro.telemetry import recording


def tiny_config(seed: int = 3) -> ReplayConfig:
    """A shard-failure replay small enough for property tests."""
    return ReplayConfig(
        tenants=2000, events=6000, window_s=120.0, seed=seed,
        shards=2, slots_per_shard=4, control_interval_s=30.0,
        fail_at=(45.0,), fault_plan="shard-failure", max_shards=2)


class TestOutcomeNeutrality:
    def test_observer_does_not_change_the_replay(self):
        config = tiny_config()
        bare = run_replay(config)
        observed = run_obs_replay(config)
        assert observed.replay.digest() == bare.digest()

    def test_neutral_under_telemetry_recording(self):
        """obs + telemetry-on still matches the bare telemetry-off run."""
        config = tiny_config()
        bare = run_replay(config)
        with recording():
            observed = run_obs_replay(config)
        assert observed.replay.digest() == bare.digest()

    @given(st.integers(min_value=0, max_value=7))
    @settings(max_examples=4, deadline=None)
    def test_neutral_across_seeds(self, seed):
        config = tiny_config(seed=seed)
        assert run_obs_replay(config).replay.digest() == \
            run_replay(config).digest()


class TestParallelEquivalence:
    def test_parallel_kernel_preserves_the_observed_digest(self):
        """The whole observed outcome — replay, SLO report, sampling,
        incident bundles — survives the shard-parallel merge intact."""
        config = tiny_config()
        sequential = run_obs_replay(config)
        for workers in (0, 2):
            parallel = run_obs_replay(config, parallel=True,
                                      workers=workers)
            assert parallel.to_json() == sequential.to_json()
            assert parallel.digest() == sequential.digest()

    @given(st.integers(min_value=0, max_value=7))
    @settings(max_examples=3, deadline=None)
    def test_parallel_equivalence_across_seeds(self, seed):
        config = tiny_config(seed=seed)
        assert run_obs_replay(config, parallel=True).digest() == \
            run_obs_replay(config).digest()


class TestDeterminism:
    @given(st.integers(min_value=0, max_value=7))
    @settings(max_examples=3, deadline=None)
    def test_same_seed_byte_identical(self, seed):
        """Full observed outcome — bundles and SLO report — is stable."""
        config = tiny_config(seed=seed)
        first = run_obs_replay(config)
        second = run_obs_replay(config)
        assert first.to_json() == second.to_json()
        assert first.digest() == second.digest()

    def test_bundles_byte_identical_across_runs(self):
        config = tiny_config()
        first = run_obs_replay(config).incidents
        second = run_obs_replay(config).incidents
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)

    def test_seed_changes_the_outcome(self):
        assert run_obs_replay(tiny_config(seed=0)).digest() != \
            run_obs_replay(tiny_config(seed=1)).digest()


class TestIncidentContent:
    def test_shard_failure_fires_alert_and_dumps_bundle(self):
        outcome = run_obs_replay(tiny_config())
        assert outcome.alerts_fired > 0
        assert len(outcome.incidents) > 0
        assert all(verify_bundle(bundle) for bundle in outcome.incidents)

    def test_bundle_names_the_faulted_shard(self):
        outcome = run_obs_replay(tiny_config())
        failures = [
            (shard, note)
            for bundle in outcome.incidents
            for shard, ring in bundle["rings"].items()
            for note in ring if note["kind"] == "shard-failure"]
        assert failures
        shard, note = failures[0]
        assert shard  # the ring key is the dead shard's id
        assert note["orphans"] >= 0

    def test_fault_touched_traces_retained(self):
        outcome = run_obs_replay(tiny_config())
        assert outcome.sampling["kept_by_reason"]["fault"] > 0
        assert outcome.sampling["conserved"]

    def test_slo_report_covers_fleet_and_shards(self):
        outcome = run_obs_replay(tiny_config())
        scopes = outcome.slo["scopes"]
        assert "fleet" in scopes
        assert any(scope.startswith("shard:") for scope in scopes)
        fleet = scopes["fleet"]
        assert fleet["total"] == fleet["good"] + fleet["bad"]
        assert 0.0 <= fleet["attainment"] <= 1.0

    def test_incident_bundles_are_capped(self):
        outcome = run_obs_replay(tiny_config())
        assert len(outcome.incidents) <= 8


class TestSmokeGate:
    def test_obs_smoke_passes_on_the_tiny_config(self):
        report = obs_smoke(tiny_config())
        assert all(report["checks"].values())
        assert report["alerts_fired"] > 0
        assert report["incidents"] > 0
