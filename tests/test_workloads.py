"""Tests for the query-suite workload protocols."""

import pytest

from repro.core import CloudSim, Driver, ExperimentConfig
from repro.workloads import (
    SuiteSetup,
    run_suite_once,
    run_variability_experiment,
    setup_engine,
    table5_metrics,
)
from repro.workloads.suite import build_plan, workday_cold_runs


class TestSuiteSetup:
    def test_specs_cover_query_tables(self):
        setup = SuiteSetup(queries=("tpch-q12",))
        names = {spec.name for spec in setup.specs()}
        assert names == {"lineitem", "orders"}

    def test_bb_q3_needs_clicks_and_item(self):
        setup = SuiteSetup(queries=("tpcxbb-q3",))
        names = {spec.name for spec in setup.specs()}
        assert names == {"clickstreams", "item"}

    def test_unknown_query_rejected(self):
        with pytest.raises(KeyError, match="unknown query"):
            build_plan("tpch-q99")


class TestSuiteExecution:
    def test_suite_runs_all_queries(self):
        sim = CloudSim(seed=1)
        setup = SuiteSetup(lineitem_partitions=3, orders_partitions=2,
                           clickstreams_partitions=2, rows_per_partition=128)
        engine = setup_engine(sim, setup)
        runtime = run_suite_once(sim, engine, setup.queries)
        assert runtime > 0

    def test_iaas_backend(self):
        sim = CloudSim(seed=1)
        setup = SuiteSetup(queries=("tpch-q6",), lineitem_partitions=3,
                           rows_per_partition=128)
        engine = setup_engine(sim, setup, backend="iaas", vm_count=4)
        runtime = run_suite_once(sim, engine, setup.queries)
        assert runtime > 0

    def test_unknown_backend_rejected(self):
        sim = CloudSim(seed=1)
        with pytest.raises(ValueError, match="backend"):
            setup_engine(sim, SuiteSetup(queries=("tpch-q6",)),
                         backend="bare-metal")


class TestVariability:
    @pytest.fixture(scope="class")
    def cold_data(self):
        setup = SuiteSetup(queries=("tpch-q6",), lineitem_partitions=2,
                           rows_per_partition=64)
        return run_variability_experiment("cold", runs=6, setup=setup)

    def test_all_regions_measured(self, cold_data):
        assert set(cold_data.runtimes) == {
            "us-east-1", "eu-west-1", "ap-northeast-1"}
        assert all(len(v) == 6 for v in cold_data.runtimes.values())

    def test_eu_median_ratio_about_1_5(self, cold_data):
        metrics = table5_metrics(cold_data)
        assert metrics["us-east-1"]["MR"] == 1.0
        assert 1.2 <= metrics["eu-west-1"]["MR"] <= 1.9

    def test_us_cold_cov_is_highest(self, cold_data):
        metrics = table5_metrics(cold_data)
        assert metrics["us-east-1"]["CoV_percent"] > \
            metrics["eu-west-1"]["CoV_percent"]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            run_variability_experiment("lukewarm", runs=1)

    def test_workday_cold_run_count(self):
        assert workday_cold_runs(interval_s=900.0, hours=8.0) == 32


class TestQueryDriverIntegration:
    def test_driver_runs_query_config(self):
        driver = Driver()
        result = driver.run(ExperimentConfig(
            name="q6", kind="query",
            parameters={"query": "tpch-q6", "lineitem_partitions": 3,
                        "rows_per_partition": 128}))
        assert result.metrics["runtime_s"] > 0
        assert result.metrics["requests"] > 0
        assert result.cost_usd > 0
