"""Tests for variability statistics and polynomial extrapolation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    coefficient_of_variation,
    extrapolate_scaling,
    fit_polynomial,
    median_ratio,
    percentiles,
    relative_std,
)


class TestCov:
    def test_constant_sample_has_zero_cov(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_known_value(self):
        # mean 2, population std 1 -> CoV 0.5
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)

    def test_relative_std_is_percent(self):
        assert relative_std([1.0, 3.0]) == pytest.approx(50.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([])

    def test_zero_mean_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([-1.0, 1.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1,
                    max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_cov_non_negative(self, samples):
        assert coefficient_of_variation(samples) >= 0.0


class TestMedianRatio:
    def test_self_ratio_is_one(self):
        assert median_ratio([2.0, 4.0, 6.0], [2.0, 4.0, 6.0]) == 1.0

    def test_scaling(self):
        assert median_ratio([3.0, 6.0, 9.0], [1.0, 2.0, 3.0]) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median_ratio([], [1.0])


class TestPercentiles:
    def test_basic(self):
        values = list(range(1, 101))
        result = percentiles(values, points=(50, 95, 100))
        assert result[50] == pytest.approx(50.5)
        assert result[100] == 100


class TestFitting:
    def test_fits_exact_polynomial(self):
        xs = [1, 2, 3, 4, 5]
        ys = [2 * x * x + 3 * x + 1 for x in xs]
        fit = fit_polynomial(xs, ys, degree=2)
        assert fit(10) == pytest.approx(231, rel=1e-6)
        np.testing.assert_allclose(fit.residuals(xs, ys), 0, atol=1e-8)

    def test_insufficient_points_rejected(self):
        with pytest.raises(ValueError):
            fit_polynomial([1, 2], [1, 2], degree=2)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fit_polynomial([1, 2, 3], [1, 2], degree=1)

    def test_extrapolate_scaling_shape(self):
        """Superlinear growth of time and cost with partitions (Fig 12)."""
        partitions = [1, 2, 3, 4, 5]
        times = [0, 390, 900, 1560, 2340]
        costs = [0, 4, 10, 18, 28]
        rows = extrapolate_scaling(partitions, times, costs,
                                   target_partitions=range(1, 21))
        assert len(rows) == 20
        assert rows[-1]["iops"] == pytest.approx(110_000)
        assert rows[-1]["time_s"] > rows[8]["time_s"] > rows[4]["time_s"]
        assert rows[4]["measured"] and not rows[5]["measured"]
        # The 9-ish hour / $1000-ish scale of the paper's 20-partition
        # extrapolation comes from the measured staircase shape.
        assert rows[-1]["cost_usd"] > 10 * rows[4]["cost_usd"]
