"""Per-checker unit tests: positive and negative cases on snippets."""

import textwrap

import pytest

from repro.lint import all_checkers, lint_modules
from repro.lint.framework import SourceModule


def lint_source(source: str, module: str = "repro.sim.snippet",
                check: str = None) -> list:
    """Lint one snippet; optionally filter findings to one check id."""
    mod = SourceModule(path="<snippet>", source=textwrap.dedent(source),
                       module=module)
    findings = lint_modules([mod], all_checkers())
    if check is not None:
        findings = [f for f in findings if f.check == check]
    return findings


def checks(source: str, **kwargs) -> list[str]:
    return [f.check for f in lint_source(source, **kwargs)]


class TestWallClock:
    def test_time_module_calls_flagged(self):
        src = """\
        import time

        def f():
            a = time.time()
            time.sleep(0.5)
            return a, time.monotonic(), time.perf_counter()
        """
        assert checks(src, check="DET001") == ["DET001"] * 4

    def test_from_import_and_alias(self):
        src = """\
        from time import time
        import time as t

        def f():
            return time() + t.time()
        """
        assert checks(src, check="DET001") == ["DET001"] * 2

    def test_datetime_now_and_today(self):
        src = """\
        from datetime import datetime, date

        def f():
            return datetime.now(), datetime.utcnow(), date.today()
        """
        assert checks(src, check="DET001") == ["DET001"] * 3

    def test_virtual_clock_and_timedelta_ok(self):
        src = """\
        import datetime

        def f(env):
            span = datetime.timedelta(days=3)
            return env.now, env.timeout(1.0), span
        """
        assert checks(src, check="DET001") == []

    def test_local_attribute_chains_not_resolved(self):
        # `self.time.time()` must not false-positive: the chain is not
        # rooted at an import-bound name.
        src = """\
        def f(self):
            return self.time.time()
        """
        assert checks(src, check="DET001") == []


class TestUnseededRandom:
    def test_stdlib_global_random_flagged(self):
        src = """\
        import random

        def f(xs):
            random.shuffle(xs)
            return random.random(), random.randint(0, 5)
        """
        assert checks(src, check="DET002") == ["DET002"] * 3

    def test_system_random_flagged(self):
        src = """\
        import random

        def f():
            return random.SystemRandom().random()
        """
        assert checks(src, check="DET002") == ["DET002"]

    def test_seeded_instance_ok(self):
        src = """\
        import random

        def f(seed):
            return random.Random(seed).random()
        """
        # The outer .random() call is on a local instance, not the module.
        assert checks(src, check="DET002") == []

    def test_numpy_global_state_flagged(self):
        src = """\
        import numpy as np

        def f(n):
            np.random.seed(0)
            return np.random.rand(n), np.random.normal(size=n)
        """
        assert checks(src, check="DET002") == ["DET002"] * 3

    def test_numpy_generator_constructors_ok(self):
        src = """\
        import numpy as np
        from numpy.random import default_rng

        def f(seed):
            rng = np.random.default_rng(np.random.SeedSequence([seed]))
            return rng.random(), default_rng(seed).random()
        """
        assert checks(src, check="DET002") == []

    def test_rng_home_module_exempt(self):
        src = """\
        import numpy as np

        def f():
            return np.random.default_rng(np.random.seed(0))
        """
        assert checks(src, module="repro.sim.rng", check="DET002") == []
        assert checks(src, module="repro.faas.platform",
                      check="DET002") == ["DET002"]


class TestOrdering:
    @pytest.mark.parametrize("body", [
        "for x in set(xs):\n        pass",
        "for x in {1, 2, 3}:\n        pass",
        "for x in frozenset(xs):\n        pass",
        "ys = list(set(xs))",
        "ys = tuple({x for x in xs})",
        "ys = ','.join(set(xs))",
        "ys.extend(set(xs))",
        "ys = [*set(xs)]",
        "ys = list(enumerate(set(xs)))",
        "ys = list(set(xs) | set(xs))",
    ])
    def test_order_sensitive_consumption_flagged(self, body):
        src = f"def f(xs, ys):\n    {body}\n"
        assert "DET003" in checks(src), body

    @pytest.mark.parametrize("body", [
        "ys = sorted(set(xs))",
        "n = len(set(xs))",
        "m = max(set(xs))",
        "ok = 3 in set(xs)",
        "total = sum(set(xs))",
        "both = set(xs) & set(ys)",
        "for x in sorted(set(xs)):\n        pass",
        "for x in dict.fromkeys(xs):\n        pass",
    ])
    def test_order_insensitive_consumption_ok(self, body):
        src = f"def f(xs, ys):\n    {body}\n"
        assert checks(src, check="DET003") == [], body

    def test_tracked_local_set_variable_flagged(self):
        src = """\
        def f(xs):
            pending = set(xs)
            for x in pending:
                print(x)
        """
        assert checks(src, check="DET003") == ["DET003"]

    def test_reassigned_to_ordered_not_flagged(self):
        src = """\
        def f(xs):
            pending = set(xs)
            pending = sorted(pending)
            for x in pending:
                print(x)
        """
        assert checks(src, check="DET003") == []

    def test_nested_function_scopes_independent(self):
        src = """\
        def outer(xs):
            pending = set(xs)

            def inner(pending):
                for x in pending:
                    print(x)
            return sorted(pending)
        """
        assert checks(src, check="DET003") == []


class TestIdentityOrder:
    def test_id_call_flagged(self):
        assert checks("def f(x):\n    return {id(x): x}\n",
                      check="DET004") == ["DET004"]

    def test_key_id_flagged(self):
        assert checks("def f(xs):\n    xs.sort(key=id)\n",
                      check="DET004") == ["DET004"]

    def test_other_keys_ok(self):
        src = "def f(xs):\n    return sorted(xs, key=len)\n"
        assert checks(src, check="DET004") == []


class TestLayerContract:
    def test_sim_may_not_import_telemetry(self):
        src = "from repro.telemetry.export import canonical_json\n"
        found = checks(src, module="repro.sim.kernel", check="ARCH001")
        assert found == ["ARCH001"]

    def test_sim_may_not_import_engine(self):
        src = "import repro.engine.plan\n"
        assert checks(src, module="repro.sim.kernel",
                      check="ARCH001") == ["ARCH001"]

    def test_core_may_not_import_serve_or_chaos(self):
        src = """\
        from repro.serve.gateway import QueryGateway
        from repro.chaos.plan import get_plan
        """
        assert checks(src, module="repro.core.driver",
                      check="ARCH001") == ["ARCH001"] * 2

    def test_downward_imports_ok(self):
        src = """\
        from repro import units
        from repro.sim import Environment
        from repro.network.fabric import Fabric
        from repro.telemetry.export import canonical_json
        """
        assert checks(src, module="repro.storage.base",
                      check="ARCH001") == []

    def test_facade_counts_as_highest_layer(self):
        # Importing the repro.serve facade pulls in serve.service, so it
        # is a service-layer edge even though serve.gateway would be ok.
        src = "from repro.serve import QueryGateway\n"
        assert checks(src, module="repro.workloads.arrivals",
                      check="ARCH001") == ["ARCH001"]
        assert checks("from repro.serve.gateway import QueryGateway\n",
                      module="repro.workloads.arrivals",
                      check="ARCH001") == []

    def test_deferred_function_level_import_still_checked(self):
        src = """\
        def f():
            from repro.engine.plan import PhysicalPlan
            return PhysicalPlan
        """
        assert checks(src, module="repro.sim.events",
                      check="ARCH001") == ["ARCH001"]

    def test_relative_imports_resolved(self):
        ok = "from .faults import FaultSpec\n"
        assert checks(ok, module="repro.chaos.plan", check="ARCH001") == []
        bad = "from ..engine import plan\n"
        assert checks(bad, module="repro.sim.events",
                      check="ARCH001") == ["ARCH001"]

    def test_unassigned_module_reported(self):
        assert checks("x = 1\n", module="repro.newpkg.thing",
                      check="ARCH001") == ["ARCH001"]

    def test_non_repro_modules_skipped(self):
        assert checks("import os\n", module=None, check="ARCH001") == []


class TestCanonicalJson:
    def test_json_dumps_flagged(self):
        src = """\
        import json

        def f(obj):
            return json.dumps(obj)
        """
        assert checks(src, check="ARCH002") == ["ARCH002"]

    def test_json_dump_alias_flagged(self):
        src = """\
        import json as j

        def f(obj, fh):
            j.dump(obj, fh)
        """
        assert checks(src, check="ARCH002") == ["ARCH002"]

    def test_loads_and_canonical_json_ok(self):
        src = """\
        import json
        from repro.telemetry.export import canonical_json

        def f(raw):
            return canonical_json(json.loads(raw))
        """
        assert checks(src, module="repro.chaos.report",
                      check="ARCH002") == []

    def test_exporter_module_exempt(self):
        src = "import json\n\ndef f(obj):\n    return json.dumps(obj)\n"
        assert checks(src, module="repro.telemetry.export",
                      check="ARCH002") == []
