"""Tests for the CLI, arrival workloads, and small utility surfaces."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import CloudSim
from repro.engine.queries import tpch_q6
from repro.network.probe import ProbeSample, ProbeSeries
from repro.storage.base import FluidAdmission, RequestStats, RequestType, \
    _payload_size
from repro.workloads import poisson_arrivals, run_arrival_workload


class TestCli:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5-function-burst" in out
        assert "network-burst" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99-quantum"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_predefined_saves_json(self, tmp_path, capsys):
        code = main(["--output", str(tmp_path), "run",
                     "startup-small-binary"])
        assert code == 0
        saved = json.loads((tmp_path / "startup-small-binary.json")
                           .read_text())
        assert saved["kind"] == "function-startup"
        assert "cold_median_ms" in saved["metrics"]

    def test_run_config_file(self, tmp_path):
        config = {
            "name": "custom-latency", "kind": "storage-latency",
            "parameters": {"service": "dynamodb", "requests": 10_000},
        }
        config_path = tmp_path / "config.json"
        config_path.write_text(json.dumps(config))
        code = main(["--output", str(tmp_path), "run", str(config_path)])
        assert code == 0
        assert (tmp_path / "custom-latency.json").exists()


def _baseline(wall_s: float, checks: dict) -> dict:
    return {"schema": 1, "scenarios": {"serving": {"smoke": {"after": {
        "wall_s": wall_s, "spin_s": 0.1, "checks": checks}}}}}


class TestBenchCompare:
    def test_compare_prints_speedup_and_exits_zero(self, tmp_path,
                                                   capsys):
        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        before.write_text(json.dumps(_baseline(2.0, {"digest": "aa"})))
        after.write_text(json.dumps(_baseline(1.0, {"digest": "aa"})))
        assert main(["bench", "--compare", str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert "2.00x" in out
        assert "DRIFTED" not in out

    def test_compare_flags_check_drift(self, tmp_path, capsys):
        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        before.write_text(json.dumps(_baseline(2.0, {"digest": "aa"})))
        after.write_text(json.dumps(_baseline(1.0, {"digest": "bb"})))
        assert main(["bench", "--compare", str(before), str(after)]) == 1
        assert "DRIFTED" in capsys.readouterr().out

    def test_compare_missing_file_fails(self, tmp_path, capsys):
        real = tmp_path / "real.json"
        real.write_text(json.dumps(_baseline(1.0, {})))
        missing = tmp_path / "missing.json"
        assert main(["bench", "--compare", str(real), str(missing)]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_committed_baselines_compare_clean(self, capsys):
        """The committed PR 7 -> PR 10 recordings must never drift."""
        assert main(["bench", "--compare",
                     "benchmarks/perf/BENCH_PR7.json",
                     "benchmarks/perf/BENCH_PR10.json"]) == 0
        out = capsys.readouterr().out
        assert "sharded-serving" in out
        assert "DRIFTED" not in out


class TestBenchPR10Recording:
    def test_recorded_parallel_speedup_meets_the_floor(self):
        """BENCH_PR10.json must record >=2x for the parallel kernel
        over the PR 7 sequential baseline, at identical checks."""
        from repro.bench.harness import normalized_wall
        baseline = json.loads(
            open("benchmarks/perf/BENCH_PR10.json").read())
        scenario = baseline["scenarios"]["sharded-serving-parallel"]
        for mode in ("full", "smoke"):
            before = scenario[mode]["before"]
            after = scenario[mode]["after"]
            assert before["checks"] == after["checks"], mode
            speedup = normalized_wall(before) / normalized_wall(after)
            assert speedup >= 2.0, (mode, speedup)

    def test_parallel_checks_pinned_equal_to_sequential(self):
        baseline = json.loads(
            open("benchmarks/perf/BENCH_PR10.json").read())
        scenarios = baseline["scenarios"]
        for mode in ("full", "smoke"):
            sequential = scenarios["sharded-serving"][mode]["after"]
            parallel = scenarios["sharded-serving-parallel"][mode]["after"]
            assert parallel["checks"] == sequential["checks"], mode


class TestPoissonArrivals:
    def test_rate_matches_expectation(self):
        rng = np.random.default_rng(0)
        window = 3_600.0
        arrivals = poisson_arrivals(rng, rate_per_hour=120.0,
                                    window_s=window)
        assert len(arrivals) == pytest.approx(120, abs=35)
        assert all(0 <= t < window for t in arrivals)
        assert arrivals == sorted(arrivals)

    def test_invalid_rate_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, rate_per_hour=0.0, window_s=10.0)

    def test_arrival_workload_runs_queries(self):
        outcome = run_arrival_workload(
            "faas", tpch_q6(scan_fragments=2),
            queries_per_hour=240.0, window_s=120.0)
        assert outcome.queries_run >= 1
        assert outcome.compute_cost_usd > 0
        assert outcome.cost_per_query > 0
        assert outcome.median_runtime > 0


class TestPayloadSize:
    @pytest.mark.parametrize("payload,expected", [
        (None, 0.0),
        (b"abcd", 4.0),
        (bytearray(b"xy"), 2.0),
        ("héllo", 6.0),  # UTF-8 bytes
    ])
    def test_simple_payloads(self, payload, expected):
        assert _payload_size(payload) == expected

    def test_numpy_payload_uses_nbytes(self):
        array = np.zeros(10, dtype=np.int64)
        assert _payload_size(array) == 80.0

    def test_opaque_payload_is_zero(self):
        assert _payload_size({"partitions": []}) == 0.0


class TestRequestStatsExtras:
    def test_error_rate_property(self):
        admission = FluidAdmission(accepted_read=90.0, rejected_read=10.0,
                                   accepted_write=0.0, rejected_write=0.0)
        assert admission.read_error_rate == pytest.approx(0.1)
        empty = FluidAdmission(0.0, 0.0, 0.0, 0.0)
        assert empty.read_error_rate == 0.0

    def test_successes_and_failures(self):
        stats = RequestStats()
        stats.record(RequestType.GET, "ok", count=7)
        stats.record(RequestType.GET, "throttled", count=2)
        stats.record(RequestType.PUT, "timeout", count=1)
        assert stats.successes == 7
        assert stats.failures == 3
        assert stats.total(RequestType.GET) == 9


class TestProbeSeries:
    def test_series_statistics(self):
        series = ProbeSeries(interval=0.5, samples=[
            ProbeSample(time=0.5, bytes=100.0),
            ProbeSample(time=1.0, bytes=300.0),
        ])
        assert series.rates() == [200.0, 600.0]
        assert series.times() == [0.5, 1.0]
        assert series.total_bytes() == 400.0
        assert series.peak_rate() == 600.0

    def test_empty_series(self):
        series = ProbeSeries(interval=1.0)
        assert series.peak_rate() == 0.0
        assert series.total_bytes() == 0.0


class TestCloudSimRunHelper:
    def test_run_accepts_generator_or_process(self):
        sim = CloudSim(seed=0)

        def gen(env):
            yield env.timeout(1.0)
            return "done"

        assert sim.run(gen(sim.env)) == "done"
        process = sim.env.process(gen(sim.env))
        assert sim.run(process) == "done"
