"""Unit tests for simulation resources (Resource, Container, Store)."""

import pytest

from repro.sim import Container, Environment, Resource, Store
from repro.sim.rng import RandomStreams


class TestResource:
    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grants_up_to_capacity(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        log = []

        def user(env, name, hold):
            with resource.request() as req:
                yield req
                log.append((name, "acquired", env.now))
                yield env.timeout(hold)
            log.append((name, "released", env.now))

        env.process(user(env, "a", 5.0))
        env.process(user(env, "b", 5.0))
        env.process(user(env, "c", 1.0))
        env.run()
        acquired = [entry for entry in log if entry[1] == "acquired"]
        assert acquired == [
            ("a", "acquired", 0.0),
            ("b", "acquired", 0.0),
            ("c", "acquired", 5.0),
        ]

    def test_priority_queue_ordering(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def holder(env):
            with resource.request() as req:
                yield req
                yield env.timeout(10.0)

        def waiter(env, name, priority, arrive):
            yield env.timeout(arrive)
            with resource.request(priority=priority) as req:
                yield req
                order.append(name)

        env.process(holder(env))
        env.process(waiter(env, "low", 5, 1.0))
        env.process(waiter(env, "high", 0, 2.0))
        env.run()
        assert order == ["high", "low"]

    def test_cancel_waiting_request(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def holder(env):
            with resource.request() as req:
                yield req
                yield env.timeout(5.0)

        def impatient(env):
            req = resource.request()
            yield env.timeout(1.0)
            resource.release(req)  # cancel before grant
            return resource.queue_length

        env.process(holder(env))
        p = env.process(impatient(env))
        env.run()
        assert p.value == 0
        assert resource.count == 0

    def test_count_tracks_users(self):
        env = Environment()
        resource = Resource(env, capacity=3)

        def user(env):
            with resource.request() as req:
                yield req
                yield env.timeout(1.0)

        for _ in range(3):
            env.process(user(env))
        env.run(until=0.5)
        assert resource.count == 3
        env.run()
        assert resource.count == 0


class TestContainer:
    def test_init_level(self):
        env = Environment()
        container = Container(env, capacity=10.0, init=4.0)
        assert container.level == 4.0

    def test_init_bounds_validated(self):
        env = Environment()
        with pytest.raises(ValueError):
            Container(env, capacity=10.0, init=11.0)

    def test_get_blocks_until_put(self):
        env = Environment()
        container = Container(env, capacity=100.0)

        def consumer(env):
            yield container.get(10.0)
            return env.now

        def producer(env):
            yield env.timeout(3.0)
            yield container.put(10.0)

        p = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert p.value == 3.0
        assert container.level == 0.0

    def test_put_blocks_when_full(self):
        env = Environment()
        container = Container(env, capacity=10.0, init=10.0)

        def producer(env):
            yield container.put(5.0)
            return env.now

        def consumer(env):
            yield env.timeout(2.0)
            yield container.get(5.0)

        p = env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert p.value == 2.0
        assert container.level == 10.0

    def test_non_positive_amount_rejected(self):
        env = Environment()
        container = Container(env, capacity=1.0)
        with pytest.raises(ValueError):
            container.get(0)
        with pytest.raises(ValueError):
            container.put(-1)


class TestStore:
    def test_fifo_ordering(self):
        env = Environment()
        store = Store(env)
        received = []

        def producer(env):
            for item in ("x", "y", "z"):
                yield store.put(item)
                yield env.timeout(1.0)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert received == ["x", "y", "z"]

    def test_bounded_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)

        def producer(env):
            yield store.put(1)
            yield store.put(2)
            return env.now

        def consumer(env):
            yield env.timeout(5.0)
            yield store.get()

        p = env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert p.value == 5.0

    def test_get_blocks_on_empty(self):
        env = Environment()
        store = Store(env)

        def consumer(env):
            item = yield store.get()
            return (item, env.now)

        def producer(env):
            yield env.timeout(4.0)
            yield store.put("late")

        p = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert p.value == ("late", 4.0)


class TestRandomStreams:
    def test_same_name_same_sequence(self):
        a = RandomStreams(seed=7).stream("latency")
        b = RandomStreams(seed=7).stream("latency")
        assert list(a.random(5)) == list(b.random(5))

    def test_different_names_differ(self):
        streams = RandomStreams(seed=7)
        a = streams.stream("latency").random(5)
        b = streams.stream("placement").random(5)
        assert list(a) != list(b)

    def test_stream_cached(self):
        streams = RandomStreams(seed=1)
        assert streams.stream("x") is streams.stream("x")

    def test_fork_is_independent(self):
        root = RandomStreams(seed=3)
        child = root.fork("region-eu")
        a = root.stream("latency").random(4)
        b = child.stream("latency").random(4)
        assert list(a) != list(b)
