"""Process/serial pool substrate: dispatch order, errors, lifecycle."""

import multiprocessing

import pytest

from repro.sim.parallel import ProcessPool, SerialPool, WorkerError, make_pool


class Counter:
    """A stateful handler: results prove which instance served a call."""

    def __init__(self, base: int = 0) -> None:
        self.base = base
        self.calls = 0

    def bump(self, amount: int = 1) -> int:
        self.calls += amount
        return self.base + self.calls

    def boom(self) -> None:
        raise ValueError("intentional failure")


_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not _FORK, reason="no fork start method")


class TestSerialPool:
    def test_each_worker_owns_its_handler(self):
        with SerialPool(Counter, workers=3) as pool:
            assert pool.call(0, "bump") == 1
            assert pool.call(0, "bump") == 2
            assert pool.call(2, "bump") == 1  # untouched instance

    def test_scatter_returns_results_in_call_order(self):
        with SerialPool(Counter, workers=2) as pool:
            results = pool.scatter([
                (1, "bump", (10,)), (0, "bump", (1,)), (1, "bump", (1,))])
            assert results == [10, 1, 11]

    def test_worker_error_carries_the_remote_traceback(self):
        with SerialPool(Counter, workers=1) as pool:
            with pytest.raises(WorkerError) as excinfo:
                pool.call(0, "boom")
            assert excinfo.value.worker == 0
            assert "intentional failure" in excinfo.value.remote_traceback

    def test_error_does_not_poison_later_calls(self):
        with SerialPool(Counter, workers=1) as pool:
            with pytest.raises(WorkerError):
                pool.call(0, "boom")
            assert pool.call(0, "bump") == 1


@needs_fork
class TestProcessPool:
    def test_round_trips_and_isolation(self):
        with ProcessPool(Counter, workers=2) as pool:
            assert pool.call(0, "bump") == 1
            assert pool.call(0, "bump") == 2
            assert pool.call(1, "bump") == 1

    def test_scatter_gathers_in_call_order(self):
        with ProcessPool(Counter, workers=2) as pool:
            results = pool.scatter([
                (1, "bump", (5,)), (0, "bump", (1,)), (1, "bump", (1,))])
            assert results == [5, 1, 6]

    def test_remote_error_is_reraised_with_traceback(self):
        with ProcessPool(Counter, workers=1) as pool:
            with pytest.raises(WorkerError) as excinfo:
                pool.call(0, "boom")
            assert "ValueError: intentional failure" \
                in excinfo.value.remote_traceback

    def test_factory_failure_surfaces_at_construction(self):
        def bad_factory():
            raise RuntimeError("cannot build")
        with pytest.raises(WorkerError):
            ProcessPool(bad_factory, workers=1)


class TestMakePool:
    def test_zero_workers_is_the_serial_substrate(self):
        pool = make_pool(Counter, 0)
        assert isinstance(pool, SerialPool)
        assert pool.workers == 1
        pool.close()

    @needs_fork
    def test_positive_workers_fork(self):
        pool = make_pool(Counter, 2)
        assert isinstance(pool, ProcessPool)
        assert pool.workers == 2
        pool.close()

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            make_pool(Counter, -1)
