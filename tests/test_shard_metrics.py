"""Shard metrics tests: histogram, per-shard reduction, fleet roll-up."""

from repro.serve.metrics import CompletedQuery
from repro.shard import FleetMetrics, LatencyHistogram, ShardMetrics


def completed(latency_s, wait_s=0.0, cost=0.001, retries=0):
    return CompletedQuery(
        tenant="t0", query_id="q0", submitted_at=0.0, started_at=wait_s,
        finished_at=latency_s, runtime=latency_s - wait_s, cost_usd=cost,
        retries=retries, hedges=0)


class TestLatencyHistogram:
    def test_percentiles_are_upper_edges_and_monotone(self):
        histogram = LatencyHistogram()
        for latency in (0.010, 0.020, 0.040, 0.080, 1.0):
            histogram.record(latency)
        p50 = histogram.percentile(50.0)
        p99 = histogram.percentile(99.0)
        # Upper-edge estimate: at most ~3.7% above the true sample.
        assert 0.040 <= p50 <= 0.044
        assert 1.0 <= p99 <= 1.05
        assert p50 <= p99

    def test_out_of_range_samples_clamp(self):
        histogram = LatencyHistogram()
        histogram.record(0.0)
        histogram.record(-1.0)
        histogram.record(1e9)
        assert histogram.total == 3
        assert histogram.percentile(1.0) == 0.0
        assert histogram.percentile(100.0) >= 10.0 ** 4

    def test_merge_is_associative_with_recording(self):
        """Shard-merged percentiles equal single-histogram percentiles."""
        one = LatencyHistogram()
        left, right = LatencyHistogram(), LatencyHistogram()
        for index in range(200):
            latency = 0.001 * (index + 1)
            one.record(latency)
            (left if index % 2 else right).record(latency)
        left.merge(right)
        for p in (1.0, 50.0, 90.0, 99.0):
            assert left.percentile(p) == one.percentile(p)

    def test_empty_percentile_is_zero(self):
        assert LatencyHistogram().percentile(99.0) == 0.0


class TestShardMetrics:
    def test_counters_and_slo_tracking(self):
        metrics = ShardMetrics(shard_id="s0", slo_latency_s=0.05)
        metrics.record_offered("t0")
        metrics.record_offered("t1")
        metrics.record_offered("t2")
        metrics.record_completion(completed(0.010))
        metrics.record_completion(completed(0.500, retries=1))
        metrics.record_shed("t2", at=1.0)
        assert metrics.offered == 3
        assert metrics.completed == 2
        assert metrics.shed == 1
        assert metrics.within_slo == 1
        assert metrics.recovered == 1  # the retried completion
        summary = metrics.summary()
        assert summary["shard"] == "s0"
        assert summary["offered"] == 3
        assert summary["cost_usd"] == 0.002


class TestFleetRollUp:
    def test_roll_up_reconciles_and_merges_latency(self):
        fleet = FleetMetrics()
        shards = []
        for shard_id in ("s0", "s1"):
            metrics = ShardMetrics(shard_id=shard_id, slo_latency_s=1.0)
            for index in range(10):
                metrics.record_offered("t")
                metrics.record_completion(completed(0.010 * (index + 1)))
            metrics.record_offered("t")
            metrics.record_shed("t", at=0.0)
            shards.append(metrics)
        fleet.recovered_requests = 4
        report = fleet.roll_up(shards, pending=0)
        assert report.balanced
        assert report.offered == 22
        assert report.completed == 20
        assert report.shed == 2
        assert report.recovered == 4
        assert report.slo_attainment == 20 / 22
        assert len(report.per_shard) == 2
        assert report.to_dict()["balanced"] is True

    def test_pending_closes_the_mid_run_equation(self):
        fleet = FleetMetrics()
        metrics = ShardMetrics()
        for _ in range(5):
            metrics.record_offered("t")
        metrics.record_completion(completed(0.01))
        report = fleet.roll_up([metrics], pending=4)
        assert report.balanced
        assert not fleet.roll_up([metrics], pending=0).balanced
