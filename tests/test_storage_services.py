"""Unit tests for the storage service simulators."""

import pytest

from repro import units
from repro.network import Fabric
from repro.sim import Environment, RandomStreams
from repro.storage import (
    DynamoDB,
    EFS,
    ItemTooLarge,
    NoSuchKey,
    RequestType,
    S3Express,
    S3Standard,
    SlowDown,
    Throttled,
)


@pytest.fixture
def stack():
    env = Environment()
    fabric = Fabric(env)
    rng = RandomStreams(seed=42)
    return env, fabric, rng


def run_process(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


class TestPutGetRoundtrip:
    @pytest.mark.parametrize("service_cls", [S3Standard, S3Express, DynamoDB, EFS])
    def test_roundtrip_payload(self, stack, service_cls):
        env, fabric, rng = stack
        service = service_cls(env, fabric, rng)
        run_process(env, service.put("key/a", b"hello"))
        obj = run_process(env, service.get("key/a"))
        assert obj.payload == b"hello"
        assert obj.size == 5

    def test_get_missing_raises(self, stack):
        env, fabric, rng = stack
        s3 = S3Standard(env, fabric, rng)

        def attempt(env):
            try:
                yield from s3.get("nope")
            except NoSuchKey:
                return "missing"

        assert run_process(env, attempt(env)) == "missing"

    def test_logical_size_override(self, stack):
        env, fabric, rng = stack
        s3 = S3Standard(env, fabric, rng)
        run_process(env, s3.put("big", b"tiny", size=64 * units.MiB))
        obj = s3.head("big")
        assert obj.size == 64 * units.MiB
        assert s3.stored_bytes == 64 * units.MiB

    def test_put_overwrites_and_bumps_version(self, stack):
        env, fabric, rng = stack
        s3 = S3Standard(env, fabric, rng)
        run_process(env, s3.put("k", b"v1"))
        run_process(env, s3.put("k", b"v2"))
        obj = s3.head("k")
        assert obj.payload == b"v2"
        assert obj.version == 1

    def test_delete_and_exists(self, stack):
        env, fabric, rng = stack
        s3 = S3Standard(env, fabric, rng)
        run_process(env, s3.put("k", b"v"))
        assert s3.exists("k")
        s3.delete("k")
        assert not s3.exists("k")

    def test_list_keys_prefix_filter(self, stack):
        env, fabric, rng = stack
        s3 = S3Standard(env, fabric, rng)
        for key in ("data/part-0", "data/part-1", "logs/x"):
            run_process(env, s3.put(key, b"v"))
        assert s3.list_keys("data/") == ["data/part-0", "data/part-1"]

    def test_request_latency_elapses(self, stack):
        env, fabric, rng = stack
        s3 = S3Standard(env, fabric, rng)
        run_process(env, s3.put("k", b"v"))
        t0 = env.now
        run_process(env, s3.get("k"))
        assert env.now - t0 > 0.005  # at least a few ms of request latency


class TestItemLimits:
    def test_dynamodb_rejects_items_over_400kib(self, stack):
        env, fabric, rng = stack
        ddb = DynamoDB(env, fabric, rng)

        def attempt(env):
            try:
                yield from ddb.put("big", b"", size=500 * units.KiB)
            except ItemTooLarge:
                return "rejected"

        assert run_process(env, attempt(env)) == "rejected"

    def test_dynamodb_accepts_max_item(self, stack):
        env, fabric, rng = stack
        ddb = DynamoDB(env, fabric, rng)
        run_process(env, ddb.put("max", b"", size=400 * units.KiB))
        assert ddb.exists("max")


class TestDiscreteAdmission:
    def test_s3_throttles_when_partition_tokens_exhausted(self, stack):
        env, fabric, rng = stack
        s3 = S3Standard(env, fabric, rng)
        run_process(env, s3.put("k", b"v"))
        # A fresh partition holds one second of quota in tokens; an
        # instantaneous spike of admissions drains them, after which the
        # next request at the same instant is rejected with SlowDown.
        partition = s3.partitions.partition_for("k")
        admitted = 0
        while s3.partitions.try_admit("k", is_read=True, now=env.now):
            admitted += 1
        assert admitted == pytest.approx(5_500, abs=1)
        assert partition.read_tokens < 1.0

        def attempt(env):
            try:
                yield from s3.get("k")
            except SlowDown:
                return "throttled"

        assert run_process(env, attempt(env)) == "throttled"
        assert s3.stats.total(RequestType.GET, "throttled") == 1

    def test_efs_read_throttles_at_ceiling(self, stack):
        env, fabric, rng = stack
        efs = EFS(env, fabric, rng)
        run_process(env, efs.put("f", b"v"))
        # Drain the read token bucket directly.
        efs._refresh_tokens()
        efs._read_tokens = 0.0

        def attempt(env):
            try:
                yield from efs.get("f")
            except Throttled:
                return "throttled"

        assert run_process(env, attempt(env)) == "throttled"


class TestFluidAdmission:
    def test_s3_single_partition_caps_at_quota(self, stack):
        env, fabric, rng = stack
        s3 = S3Standard(env, fabric, rng)
        result = s3.offer_load(read_iops=10_000, write_iops=0, elapsed=1.0)
        assert result.accepted_read == pytest.approx(5_500)
        assert result.rejected_read == pytest.approx(4_500)

    def test_s3_write_iops_capped_at_3500(self, stack):
        env, fabric, rng = stack
        s3 = S3Standard(env, fabric, rng)
        result = s3.offer_load(read_iops=0, write_iops=10_000, elapsed=1.0)
        assert result.accepted_write == pytest.approx(3_500)

    def test_s3_express_admits_up_to_account_iops(self, stack):
        env, fabric, rng = stack
        express = S3Express(env, fabric, rng)
        result = express.offer_load(read_iops=250_000, write_iops=50_000,
                                    elapsed=1.0)
        assert result.accepted_read == pytest.approx(220_000)
        assert result.accepted_write == pytest.approx(42_000)

    def test_dynamodb_fluid_rate_capped_at_quota(self, stack):
        env, fabric, rng = stack
        ddb = DynamoDB(env, fabric, rng)
        result = ddb.offer_load(read_iops=50_000, write_iops=20_000,
                                elapsed=60.0)
        assert result.accepted_read == pytest.approx(16_000)
        assert result.accepted_write == pytest.approx(9_600)

    def test_dynamodb_discrete_burst_absorbs_spikes(self, stack):
        """A fresh table holds 5 minutes of burst tokens (Section 2)."""
        env, fabric, rng = stack
        ddb = DynamoDB(env, fabric, rng)
        # Instantaneously admit far more than one second of quota.
        spike = int(16_000 * 10)
        admitted = 0
        for i in range(spike):
            try:
                ddb._admit_one(RequestType.GET, f"k{i}")
                admitted += 1
            except Exception:
                break
        assert admitted == spike

    def test_efs_read_scales_with_second_filesystem_only(self, stack):
        env, fabric, rng = stack
        one = EFS(env, fabric, rng, filesystem_count=1)
        two = EFS(env, fabric, rng, filesystem_count=2)
        four = EFS(env, fabric, rng, filesystem_count=4)
        r1 = one.offer_load(read_iops=100_000, write_iops=10_000, elapsed=1.0)
        r2 = two.offer_load(read_iops=100_000, write_iops=10_000, elapsed=1.0)
        r4 = four.offer_load(read_iops=100_000, write_iops=10_000, elapsed=1.0)
        assert r2.accepted_read == pytest.approx(2 * r1.accepted_read)
        assert r4.accepted_read == pytest.approx(r2.accepted_read)
        # Writes never scale with sharding.
        assert r2.accepted_write == pytest.approx(r1.accepted_write)

    def test_stats_count_fluid_requests(self, stack):
        env, fabric, rng = stack
        s3 = S3Standard(env, fabric, rng)
        s3.offer_load(read_iops=10_000, write_iops=0, elapsed=2.0)
        assert s3.stats.total(RequestType.GET, "ok") == 11_000
        assert s3.stats.total(RequestType.GET, "throttled") == 9_000


class TestLatencySampling:
    def test_s3_read_latency_distribution_matches_calibration(self, stack):
        env, fabric, rng = stack
        s3 = S3Standard(env, fabric, rng)
        samples = s3.sample_latencies(RequestType.GET, 200_000)
        import numpy as np
        assert np.median(samples) == pytest.approx(0.027, rel=0.05)
        assert np.percentile(samples, 95) == pytest.approx(0.075, rel=0.15)

    def test_express_latency_far_below_standard(self, stack):
        env, fabric, rng = stack
        s3 = S3Standard(env, fabric, rng)
        express = S3Express(env, fabric, rng)
        import numpy as np
        std = np.median(s3.sample_latencies(RequestType.GET, 10_000))
        exp = np.median(express.sample_latencies(RequestType.GET, 10_000))
        assert exp < std / 4

    def test_efs_writes_slower_than_reads(self, stack):
        env, fabric, rng = stack
        efs = EFS(env, fabric, rng)
        import numpy as np
        reads = np.median(efs.sample_latencies(RequestType.GET, 10_000))
        writes = np.median(efs.sample_latencies(RequestType.PUT, 10_000))
        assert 2.0 <= writes / reads <= 3.5


class TestPrewarm:
    def test_prewarm_splits_partitions(self, stack):
        env, fabric, rng = stack
        s3 = S3Standard(env, fabric, rng)
        s3.prewarm(5)
        assert s3.partition_count == 5
        result = s3.offer_load(read_iops=30_000, write_iops=0, elapsed=1.0)
        assert result.accepted_read == pytest.approx(5 * 5_500)
