"""Unit tests for spans, trace propagation, and the global recorder."""

import pytest

from repro.sim import Environment
from repro.telemetry import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    TelemetryRecorder,
    disable,
    enable,
    get_recorder,
    parent_ids,
    recording,
    set_recorder,
)
from repro.telemetry.recorder import KERNEL_SAMPLE_EVERY


def test_span_lifecycle():
    span = Span(trace_id="t", span_id=1, parent_id=None, name="op",
                category="test", start=1.0)
    assert not span.finished
    assert span.duration == 0.0
    span.add_event(1.5, "milestone", detail="x")
    span.finish(3.0, rows=7)
    assert span.finished
    assert span.duration == 2.0
    assert span.attrs == {"rows": 7}
    assert span.events == [{"t": 1.5, "name": "milestone", "detail": "x"}]
    # finish is idempotent: the end time survives, attrs still merge.
    span.finish(9.0, extra=1)
    assert span.end == 3.0
    assert span.attrs["extra"] == 1


def test_parent_ids_accepts_span_dict_and_none():
    span = Span(trace_id="t", span_id=4, parent_id=None, name="op",
                category="test", start=0.0)
    assert parent_ids(span) == ("t", 4)
    assert parent_ids(span.ctx()) == ("t", 4)
    assert parent_ids(None) == (None, None)
    with pytest.raises(TypeError):
        parent_ids(42)


def test_recorder_span_hierarchy():
    recorder = TelemetryRecorder()
    root = recorder.start_trace("query q1", 0.0)
    child = recorder.start_span("stage", 0.5, parent=root, category="stage")
    grandchild = recorder.record_span("read", 0.6, 0.9, parent=child.ctx(),
                                      category="storage")
    assert root.trace_id == child.trace_id == grandchild.trace_id
    assert child.parent_id == root.span_id
    assert grandchild.parent_id == child.span_id
    assert grandchild.finished
    assert recorder.children_of(root) == [child]
    assert recorder.children_of(child) == [grandchild]
    assert recorder.spans_of(root.trace_id) == [root, child, grandchild]


def test_recorder_trace_ids_are_sequential():
    recorder = TelemetryRecorder()
    first = recorder.start_trace("a", 0.0)
    second = recorder.start_trace("b", 1.0)
    assert first.trace_id != second.trace_id
    assert recorder.traces() == [first.trace_id, second.trace_id]


def test_orphan_span_joins_ambient_trace():
    recorder = TelemetryRecorder()
    span = recorder.start_span("background", 2.0)
    assert span.trace_id == "trace-ambient"
    assert span.parent_id is None


def test_unique_name_serials():
    recorder = TelemetryRecorder()
    assert recorder.unique_name("shaper.in") == "shaper.in#0"
    assert recorder.unique_name("shaper.in") == "shaper.in#1"
    assert recorder.unique_name("shaper.out") == "shaper.out#0"


def test_recorder_events_timeline():
    recorder = TelemetryRecorder()
    recorder.event(1.0, "gateway.shed", category="serving", tenant="batch")
    assert recorder.events == [{"t": 1.0, "name": "gateway.shed",
                                "category": "serving", "tenant": "batch"}]


def test_null_recorder_is_inert():
    null = NullRecorder()
    assert not null.enabled
    span = null.start_trace("q", 0.0)
    assert span is null.start_span("x", 1.0) is null.record_span("y", 0, 1)
    span.add_event(0.0, "ignored")
    span.finish(5.0, extra=1)
    assert span.events == [] and span.attrs == {}
    null.counter("c").inc()
    null.gauge("g").set(1.0)
    null.timeseries("s").sample(0.0, 1.0)
    assert null.counter("c").value >= 0  # shared scratch object; no raise
    assert null.timeseries("s").points == []  # max_points=0: never stores
    null.event(0.0, "ignored")
    null.attach_kernel(object())  # no-op, accepts anything


def test_global_recorder_installation():
    assert get_recorder() is NULL_RECORDER
    recorder = enable()
    try:
        assert get_recorder() is recorder
        assert recorder.enabled
    finally:
        disable()
    assert get_recorder() is NULL_RECORDER


def test_recording_context_restores_previous():
    sentinel = NullRecorder()
    previous = set_recorder(sentinel)
    try:
        with recording() as recorder:
            assert get_recorder() is recorder
            assert isinstance(recorder, TelemetryRecorder)
        assert get_recorder() is sentinel
    finally:
        set_recorder(previous)


def test_kernel_monitor_counts_events_and_samples_depth():
    recorder = TelemetryRecorder()
    env = Environment()
    recorder.attach_kernel(env)

    def ticker(env):
        for _ in range(2 * KERNEL_SAMPLE_EVERY):
            yield env.timeout(0.001)

    env.run(until=env.process(ticker(env)))
    events = recorder.counter("sim.events_processed").value
    assert events >= 2 * KERNEL_SAMPLE_EVERY
    assert recorder.counter("sim.processes_started").value >= 1
    depth = recorder.timeseries("sim.ready_queue_depth")
    assert len(depth.points) == events // KERNEL_SAMPLE_EVERY


def test_kernel_without_monitor_is_unaffected():
    env = Environment()

    def ticker(env):
        yield env.timeout(1.0)
        return "done"

    process = env.process(ticker(env))
    env.run(until=process)
    assert process.value == "done"
    assert env.now == 1.0
