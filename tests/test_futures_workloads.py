"""End-to-end determinism tests for the futures workloads."""

from repro.chaos import get_plan
from repro.futures.workloads import run_sweep, run_wordcount


class TestWordcount:
    def test_acceptance_scale_is_deterministic(self):
        # The acceptance criterion: >= 64 chunks, byte-identical outcome
        # across two same-seed runs, per-future costs reconciling with
        # the pricing-catalog total.
        first = run_wordcount(seed=7)
        second = run_wordcount(seed=7)
        assert first == second
        assert first["chunks"] >= 64
        assert first["map_calls"] == first["chunks"]
        assert first["cost_check"] == "ok"
        assert first["states"] == {"pending": 0, "running": 0,
                                   "success": first["chunks"] + 1,
                                   "error": 0}
        assert first["records"] == 16 * 256  # every record counted once

    def test_different_seed_changes_outcome(self):
        assert run_wordcount(seed=7, objects=4)["digest"] \
            != run_wordcount(seed=8, objects=4)["digest"]

    def test_chaos_plan_is_absorbed_and_deterministic(self):
        plan = get_plan("futures-chaos")
        first = run_wordcount(seed=7, objects=8, plan=plan)
        second = run_wordcount(seed=7, objects=8, plan=plan)
        assert first == second
        assert sum(first["faults"].values()) > 0
        # Injected faults were recovered: every call still succeeded,
        # and the cost audit still reconciles (retries billed on both
        # sides).
        assert first["states"]["error"] == 0
        assert first["states"]["success"] == first["chunks"] + 1
        assert first["cost_check"] == "ok"

    def test_chaos_costs_more_than_fault_free(self):
        plan = get_plan("futures-chaos")
        clean = run_wordcount(seed=7, objects=8)
        chaotic = run_wordcount(seed=7, objects=8, plan=plan)
        if chaotic["retries"] > 0:
            assert chaotic["total_cost_usd"] > clean["total_cost_usd"]

    def test_speculation_under_chaos_is_deterministic(self):
        plan = get_plan("futures-chaos")
        first = run_wordcount(seed=7, objects=8, plan=plan,
                              speculate=True)
        second = run_wordcount(seed=7, objects=8, plan=plan,
                               speculate=True)
        assert first == second
        # Every speculative duplicate either won (the original became
        # the zombie) or lost (the duplicate did); both sides were
        # billed and drained before the cost audit, so it reconciles.
        assert first["cost_check"] == "ok"

    def test_monitor_poller_is_outcome_neutral(self):
        base = run_wordcount(seed=7, objects=4)
        polled = run_wordcount(seed=7, objects=4, monitor_poll_s=0.5)
        assert base == polled


class TestSweep:
    def test_sweep_is_deterministic(self):
        first = run_sweep(seed=7, points=12)
        second = run_sweep(seed=7, points=12)
        assert first == second
        assert first["states"]["error"] == 0
        assert first["cost_check"] == "ok"

    def test_best_is_argmin_of_losses(self):
        outcome = run_sweep(seed=7, points=12)
        assert outcome["best"]["loss"] == min(outcome["losses"])
        assert 1 <= outcome["first_wave"] <= outcome["points"]

    def test_sweep_losses_bracket_the_target_minimum(self):
        # The loss curve is a noisy quadratic around SWEEP_TARGET; the
        # best grid point should land near it.
        outcome = run_sweep(seed=7, points=24, span=4.0)
        assert abs(outcome["best"]["x"] - 2.37) < 0.5
