"""SARIF 2.1.0 export: structure, schema validity, and determinism."""

import json
import textwrap

import pytest

from repro.cli import main
from repro.lint import all_checkers, all_project_checkers
from repro.lint.cli import _lnt_checkers
from repro.lint.framework import Finding
from repro.lint.sarif import SARIF_VERSION, sarif_report

jsonschema = pytest.importorskip("jsonschema")

#: Structural subset of the OASIS SARIF 2.1.0 schema covering
#: everything `repro lint --sarif` emits. The full schema is ~350 kB
#: and needs network access to fetch; this subset pins the fields that
#: GitHub code scanning and other consumers actually require, with
#: `additionalProperties` left open exactly where the spec leaves the
#: format extensible.
SARIF_SUBSET_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"enum": ["2.1.0"]},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {"$ref":
                                                  "#/definitions/rule"},
                                    },
                                },
                            },
                        },
                    },
                    "columnKind": {"enum": ["utf16CodeUnits",
                                            "unicodeCodePoints"]},
                    "results": {
                        "type": "array",
                        "items": {"$ref": "#/definitions/result"},
                    },
                },
            },
        },
    },
    "definitions": {
        "rule": {
            "type": "object",
            "required": ["id"],
            "properties": {
                "id": {"type": "string"},
                "shortDescription": {"$ref": "#/definitions/message"},
                "fullDescription": {"$ref": "#/definitions/message"},
                "help": {"$ref": "#/definitions/message"},
                "defaultConfiguration": {
                    "type": "object",
                    "properties": {
                        "level": {"enum": ["none", "note", "warning",
                                           "error"]},
                    },
                },
            },
        },
        "message": {
            "type": "object",
            "required": ["text"],
            "properties": {"text": {"type": "string"}},
        },
        "result": {
            "type": "object",
            "required": ["message"],
            "properties": {
                "ruleId": {"type": "string"},
                "ruleIndex": {"type": "integer", "minimum": 0},
                "level": {"enum": ["none", "note", "warning", "error"]},
                "message": {"$ref": "#/definitions/message"},
                "locations": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "properties": {
                            "physicalLocation": {
                                "type": "object",
                                "properties": {
                                    "artifactLocation": {
                                        "type": "object",
                                        "properties": {
                                            "uri": {"type": "string"},
                                            "uriBaseId":
                                                {"type": "string"},
                                        },
                                    },
                                    "region": {
                                        "type": "object",
                                        "properties": {
                                            "startLine": {
                                                "type": "integer",
                                                "minimum": 1},
                                            "startColumn": {
                                                "type": "integer",
                                                "minimum": 1},
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
                "suppressions": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["kind"],
                        "properties": {
                            "kind": {"enum": ["inSource", "external"]},
                            "justification": {"type": "string"},
                        },
                    },
                },
            },
        },
    },
}

DIRTY = textwrap.dedent("""\
    import time


    def stamp():
        return time.time()
""")


def catalog():
    return all_checkers() + all_project_checkers() + _lnt_checkers()


def make_finding(check="DET001", severity="error", line=5):
    return Finding(path="src/repro/faas/dirty.py", line=line, col=12,
                   check=check, message="wall clock", severity=severity)


@pytest.fixture
def tree(tmp_path, monkeypatch):
    pkg = tmp_path / "src" / "repro" / "faas"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text(DIRTY)
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestSarifReport:
    def test_report_validates_against_schema(self):
        report = sarif_report([make_finding()], catalog())
        jsonschema.validate(report, SARIF_SUBSET_SCHEMA)
        assert report["version"] == SARIF_VERSION

    def test_rules_cover_every_checker_in_id_order(self):
        report = sarif_report([], catalog())
        rules = report["runs"][0]["tool"]["driver"]["rules"]
        ids = [rule["id"] for rule in rules]
        assert ids == sorted(ids)
        assert set(ids) == {c.id for c in catalog()}
        for rule in rules:
            assert rule["defaultConfiguration"]["level"] \
                in {"error", "warning", "note"}

    def test_result_carries_location_and_level(self):
        report = sarif_report(
            [make_finding(check="RES001", severity="warning")],
            catalog())
        result = report["runs"][0]["results"][0]
        assert result["ruleId"] == "RES001"
        assert result["level"] == "warning"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] \
            == "src/repro/faas/dirty.py"
        assert location["region"] == {"startLine": 5, "startColumn": 12}
        rules = report["runs"][0]["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == "RES001"

    def test_baselined_findings_are_suppressed(self):
        finding = make_finding()
        report = sarif_report([finding], catalog(),
                              baselined=[finding])
        result = report["runs"][0]["results"][0]
        assert result["suppressions"] == [{
            "kind": "external",
            "justification": "lint-baseline.json"}]
        fresh = sarif_report([finding], catalog())
        assert "suppressions" not in fresh["runs"][0]["results"][0]


class TestSarifCli:
    def test_cli_sarif_is_valid_and_lists_the_finding(self, tree,
                                                      capsys):
        assert main(["lint", "--sarif", "--no-cache", "src"]) == 0
        report = json.loads(capsys.readouterr().out)
        jsonschema.validate(report, SARIF_SUBSET_SCHEMA)
        results = report["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["DET001"]
        assert results[0]["locations"][0]["physicalLocation"][
            "artifactLocation"]["uri"] == "src/repro/faas/dirty.py"

    def test_cli_sarif_byte_identical_across_runs(self, tree, capsys):
        assert main(["lint", "--sarif", "src"]) == 0
        first = capsys.readouterr().out
        assert main(["lint", "--sarif", "src"]) == 0
        assert capsys.readouterr().out == first

    def test_baselined_tree_emits_suppressed_results(self, tree,
                                                     capsys):
        assert main(["lint", "--update-baseline", "src"]) == 0
        capsys.readouterr()
        assert main(["lint", "--sarif", "src"]) == 0
        report = json.loads(capsys.readouterr().out)
        results = report["runs"][0]["results"]
        assert results and all("suppressions" in r for r in results)
