"""Unit tests for token-bucket shapers."""

import pytest

from repro import units
from repro.network.shaper import (
    LAMBDA_BASELINE_RATE,
    LAMBDA_BUCKET_CAPACITY,
    LAMBDA_BURST_RATE_IN,
    LAMBDA_ONE_OFF_BUDGET,
    TokenBucketShaper,
    ec2_shaper,
    lambda_shaper,
)


class TestContinuousShaper:
    def make(self, capacity=100.0, burst=10.0, refill=1.0):
        return TokenBucketShaper(capacity=capacity, burst_rate=burst,
                                 refill_rate=refill, mode="continuous")

    def test_full_bucket_allows_burst(self):
        shaper = self.make()
        assert shaper.allowed_rate() == 10.0

    def test_empty_bucket_allows_refill_rate(self):
        shaper = self.make()
        shaper.advance(now=20.0, elapsed=20.0, consumed_rate=10.0)
        assert shaper.level == pytest.approx(0.0)
        assert shaper.allowed_rate() == 1.0

    def test_level_never_exceeds_capacity(self):
        shaper = self.make()
        shaper.advance(now=1000.0, elapsed=1000.0, consumed_rate=0.0)
        assert shaper.level == 100.0

    def test_refill_offsets_consumption(self):
        shaper = self.make(capacity=100.0, burst=10.0, refill=4.0)
        shaper.advance(now=10.0, elapsed=10.0, consumed_rate=10.0)
        # Net drain 6/s for 10s = 60 consumed from a 100 bucket.
        assert shaper.level == pytest.approx(40.0)

    def test_next_change_predicts_exhaustion(self):
        shaper = self.make(capacity=100.0, burst=10.0, refill=0.0)
        assert shaper.next_change(now=0.0, consumed_rate=10.0) == pytest.approx(10.0)

    def test_next_change_stable_when_draining_slower_than_refill(self):
        shaper = self.make(capacity=100.0, burst=10.0, refill=5.0)
        assert shaper.next_change(now=0.0, consumed_rate=3.0) == float("inf")

    def test_one_off_budget_spent_first_and_never_refills(self):
        shaper = TokenBucketShaper(capacity=50.0, burst_rate=10.0,
                                   refill_rate=0.0, mode="continuous",
                                   one_off_budget=30.0, initial_level=50.0)
        shaper.advance(now=2.0, elapsed=2.0, consumed_rate=10.0)
        assert shaper.one_off_remaining == pytest.approx(10.0)
        assert shaper.level == pytest.approx(50.0)
        shaper.advance(now=4.0, elapsed=2.0, consumed_rate=10.0)
        assert shaper.one_off_remaining == 0.0
        assert shaper.level == pytest.approx(40.0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            TokenBucketShaper(capacity=1, burst_rate=1, refill_rate=1,
                              mode="bogus")

    def test_negative_elapsed_rejected(self):
        shaper = self.make()
        with pytest.raises(ValueError):
            shaper.advance(now=0.0, elapsed=-1.0, consumed_rate=0.0)


class TestQuantizedShaper:
    def make(self):
        return TokenBucketShaper(capacity=10.0, burst_rate=100.0,
                                 refill_rate=10.0, mode="quantized",
                                 grant_interval=0.1, initial_level=10.0)

    def test_stalls_when_empty(self):
        shaper = self.make()
        shaper.advance(now=0.05, elapsed=0.05, consumed_rate=100.0)
        # 5 consumed, 5 left; no grant boundary crossed yet.
        assert shaper.level == pytest.approx(5.0)
        shaper.advance(now=0.09, elapsed=0.04, consumed_rate=100.0)
        assert shaper.level == pytest.approx(1.0)
        assert shaper.allowed_rate() == 100.0
        shaper.advance(now=0.099, elapsed=0.009, consumed_rate=100.0)
        assert shaper.allowed_rate() == pytest.approx(100.0)

    def test_grant_arrives_at_interval_boundary(self):
        shaper = self.make()
        shaper.advance(now=0.099, elapsed=0.099, consumed_rate=100.0)
        # 9.9 consumed of 10; cross the boundary at t=0.1 with no traffic:
        shaper.advance(now=0.11, elapsed=0.011, consumed_rate=0.0)
        # One grant of refill*interval = 1.0 arrived.
        assert shaper.level == pytest.approx(0.1 + 1.0)

    def test_next_change_is_grant_boundary_when_empty(self):
        shaper = TokenBucketShaper(capacity=10.0, burst_rate=100.0,
                                   refill_rate=10.0, mode="quantized",
                                   grant_interval=0.1, initial_level=0.0)
        assert shaper.allowed_rate() == 0.0
        assert shaper.next_change(now=0.25, consumed_rate=0.0) == pytest.approx(0.3)

    def test_grants_are_stateful_and_delivered_once(self):
        shaper = self.make()
        # Grants due at 0.1, 0.2, 0.3 are all delivered by t=0.35 ...
        assert shaper._grants_between(0.0, 0.35) == pytest.approx(3.0)
        # ... and never again.
        assert shaper._grants_between(0.1, 0.35) == pytest.approx(0.0)
        assert shaper._grants_between(0.35, 0.45) == pytest.approx(1.0)

    def test_next_grant_time_is_strictly_future(self):
        shaper = self.make()
        boundary = shaper._next_grant_time(now=0.09)
        assert boundary == pytest.approx(0.1)
        # Exactly at (or one ulp before) the boundary, the next grant is
        # the following one.
        assert shaper._next_grant_time(now=boundary) == pytest.approx(0.2)


class TestIdleRefill:
    def make(self, initial):
        return TokenBucketShaper(capacity=100.0, burst_rate=10.0,
                                 refill_rate=0.0, mode="continuous",
                                 idle_refill_level=50.0,
                                 initial_level=initial)

    def test_long_idle_restores_level_on_activation(self):
        shaper = self.make(initial=0.0)
        shaper.on_idle(now=0.0)
        shaper.on_activate(now=5.0)
        assert shaper.level == 50.0

    def test_short_gap_does_not_refill(self):
        """Millisecond gaps between back-to-back requests never refill."""
        shaper = self.make(initial=0.0)
        shaper.on_idle(now=0.0)
        shaper.on_activate(now=0.03)
        assert shaper.level == 0.0

    def test_refill_never_lowers_level(self):
        shaper = self.make(initial=80.0)
        shaper.on_idle(now=0.0)
        shaper.on_activate(now=5.0)
        assert shaper.level == 80.0

    def test_noop_without_refill_level(self):
        shaper = TokenBucketShaper(capacity=100.0, burst_rate=10.0,
                                   refill_rate=0.0, initial_level=10.0)
        shaper.on_idle(now=0.0)
        shaper.on_activate(now=100.0)
        assert shaper.level == 10.0

    def test_first_idle_timestamp_kept(self):
        """Repeated on_idle calls do not push the idle start forward."""
        shaper = self.make(initial=0.0)
        shaper.on_idle(now=0.0)
        shaper.on_idle(now=4.9)
        shaper.on_activate(now=5.0)
        assert shaper.level == 50.0


class TestCalibratedFactories:
    def test_lambda_shaper_inbound_parameters(self):
        shaper = lambda_shaper("in")
        assert shaper.burst_rate == LAMBDA_BURST_RATE_IN
        assert shaper.one_off_remaining == LAMBDA_ONE_OFF_BUDGET
        assert shaper.level == LAMBDA_BUCKET_CAPACITY
        # Total initial budget of ~300 MiB (Section 4.2.1).
        assert shaper.budget == pytest.approx(300 * units.MiB)
        assert shaper.refill_rate == LAMBDA_BASELINE_RATE

    def test_lambda_shaper_outbound_is_slower(self):
        assert lambda_shaper("out").burst_rate < lambda_shaper("in").burst_rate

    def test_lambda_shaper_direction_validated(self):
        with pytest.raises(ValueError):
            lambda_shaper("sideways")

    def test_ec2_shaper_is_continuous(self):
        shaper = ec2_shaper(baseline_rate=100.0, burst_rate=1000.0,
                            bucket_bytes=5000.0)
        assert shaper.mode == "continuous"
        assert shaper.level == 5000.0
