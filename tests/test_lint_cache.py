"""Incremental lint cache: hits, invalidation, and the contract that
the cache never changes what comes out — only when work happens."""

import json
import textwrap

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cli import main
from repro.lint import all_checkers, all_project_checkers, lint_tree
from repro.lint.cache import CACHE_VERSION, LintCache, lint_fingerprint

DIRTY = textwrap.dedent("""\
    import time


    def stamp():
        return time.time()
""")

CLEAN = textwrap.dedent("""\
    def stamp(env):
        return env.now
""")


@pytest.fixture
def tree(tmp_path, monkeypatch):
    pkg = tmp_path / "src" / "repro" / "faas"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text(DIRTY)
    (pkg / "clean.py").write_text(CLEAN)
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestCacheBehavior:
    def test_second_run_hits(self, tree):
        from pathlib import Path
        cache = LintCache(tree / "cache.json")
        lint_tree([Path("src")], all_checkers(), all_project_checkers(),
                  cache=cache)
        assert cache.misses == 2 and cache.hits == 0
        cache.save()
        warm = LintCache(tree / "cache.json")
        lint_tree([Path("src")], all_checkers(), all_project_checkers(),
                  cache=warm)
        assert warm.hits == 2 and warm.misses == 0

    def test_warm_findings_identical_to_cold(self, tree):
        from pathlib import Path
        cold = lint_tree([Path("src")], all_checkers(),
                         all_project_checkers(), cache=None)
        cache = LintCache(tree / "cache.json")
        lint_tree([Path("src")], all_checkers(), all_project_checkers(),
                  cache=cache)
        cache.save()
        warm_cache = LintCache(tree / "cache.json")
        warm = lint_tree([Path("src")], all_checkers(),
                         all_project_checkers(), cache=warm_cache)
        assert warm_cache.hits == 2
        assert [f.to_dict() for f in warm] == [f.to_dict() for f in cold]

    def test_edited_file_misses_and_reflects_change(self, tree):
        from pathlib import Path
        cache = LintCache(tree / "cache.json")
        first = lint_tree([Path("src")], all_checkers(),
                          all_project_checkers(), cache=cache)
        cache.save()
        assert any(f.check == "DET001" for f in first)
        (tree / "src/repro/faas/dirty.py").write_text(CLEAN)
        warm = LintCache(tree / "cache.json")
        second = lint_tree([Path("src")], all_checkers(),
                           all_project_checkers(), cache=warm)
        assert warm.hits == 1 and warm.misses == 1
        assert not any(f.check == "DET001" for f in second)

    def test_corrupt_cache_is_cold_not_fatal(self, tree):
        from pathlib import Path
        (tree / "cache.json").write_text("{definitely not json")
        cache = LintCache(tree / "cache.json")
        findings = lint_tree([Path("src")], all_checkers(),
                             all_project_checkers(), cache=cache)
        assert cache.misses == 2
        assert any(f.check == "DET001" for f in findings)

    def test_fingerprint_mismatch_discards_entries(self, tree):
        from pathlib import Path
        cache = LintCache(tree / "cache.json")
        lint_tree([Path("src")], all_checkers(), all_project_checkers(),
                  cache=cache)
        cache.save()
        # Simulate a checker edit: stored fingerprint no longer matches.
        payload = json.loads((tree / "cache.json").read_text())
        payload["fingerprint"] = "0" * 64
        (tree / "cache.json").write_text(json.dumps(payload))
        stale = LintCache(tree / "cache.json")
        assert stale.entries == {}

    def test_version_mismatch_discards_entries(self, tree):
        from pathlib import Path
        cache = LintCache(tree / "cache.json")
        lint_tree([Path("src")], all_checkers(), all_project_checkers(),
                  cache=cache)
        cache.save()
        payload = json.loads((tree / "cache.json").read_text())
        payload["version"] = CACHE_VERSION + 1
        (tree / "cache.json").write_text(json.dumps(payload))
        assert LintCache(tree / "cache.json").entries == {}

    def test_fingerprint_is_stable_within_a_process(self):
        assert lint_fingerprint() == lint_fingerprint()


class TestCliCacheStates:
    """Every output mode is byte-identical cold, warm, and uncached."""

    @pytest.mark.parametrize("flag", [None, "--json", "--sarif"])
    def test_output_independent_of_cache_state(self, tree, capsys, flag):
        argv = ["lint", "src"] + ([flag] if flag else [])
        outputs = []
        assert main(argv) == 0  # cold: writes .repro-lint-cache.json
        outputs.append(capsys.readouterr().out)
        assert main(argv) == 0  # warm
        outputs.append(capsys.readouterr().out)
        assert main(argv + ["--no-cache"]) == 0  # uncached
        outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_time_budget_gate(self, tree, capsys):
        assert main(["lint", "src", "--max-seconds", "60"]) == 0
        capsys.readouterr()
        assert main(["lint", "src", "--max-seconds", "0"]) == 1
        assert "time budget exceeded" in capsys.readouterr().err


class TestDiscoveryOrderDeterminism:
    """Findings are a function of the file *set*, not argv order."""

    @given(order=st.permutations(range(2)))
    def test_path_order_invariant(self, tmp_path_factory, order):
        from pathlib import Path
        base = tmp_path_factory.mktemp("shuffle")
        pkg = base / "src" / "repro" / "faas"
        pkg.mkdir(parents=True, exist_ok=True)
        (pkg / "dirty.py").write_text(DIRTY)
        (pkg / "clean.py").write_text(CLEAN)
        files = [pkg / "dirty.py", pkg / "clean.py"]
        baseline = lint_tree([Path(f) for f in files], all_checkers(),
                             all_project_checkers(), cache=None)
        shuffled = [files[i] for i in order]
        again = lint_tree([Path(f) for f in shuffled], all_checkers(),
                          all_project_checkers(), cache=None)
        assert [f.to_dict() for f in again] \
            == [f.to_dict() for f in baseline]
