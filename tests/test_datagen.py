"""Tests for the TPC data generators and dataset loading."""

import numpy as np
import pytest

from repro import units
from repro.datagen import (
    TPCH_SF1000,
    generate_clickstreams,
    generate_item,
    generate_lineitem,
    generate_orders,
    load_table,
    scaled_spec,
)
from repro.datagen.dates import TPCH_CURRENT, TPCH_END, TPCH_START
from repro.network import Fabric
from repro.sim import Environment, RandomStreams
from repro.storage import S3Standard


class TestLineitem:
    def test_shapes_and_determinism(self):
        a = generate_lineitem(1000, seed=5)
        b = generate_lineitem(1000, seed=5)
        assert a.num_rows == 1000
        np.testing.assert_array_equal(a.column("l_orderkey"),
                                      b.column("l_orderkey"))

    def test_different_seeds_differ(self):
        a = generate_lineitem(100, seed=1)
        b = generate_lineitem(100, seed=2)
        assert not np.array_equal(a.column("l_extendedprice"),
                                  b.column("l_extendedprice"))

    def test_value_domains(self):
        batch = generate_lineitem(5000, seed=0)
        assert batch.column("l_quantity").min() >= 1
        assert batch.column("l_quantity").max() <= 50
        assert batch.column("l_discount").min() >= 0.0
        assert batch.column("l_discount").max() <= 0.10 + 1e-9
        assert batch.column("l_tax").max() <= 0.08 + 1e-9
        assert set(batch.column("l_returnflag")) <= {"A", "N", "R"}
        assert set(batch.column("l_linestatus")) <= {"O", "F"}

    def test_date_ordering_invariants(self):
        batch = generate_lineitem(5000, seed=0)
        ship = batch.column("l_shipdate")
        receipt = batch.column("l_receiptdate")
        assert (receipt > ship).all()
        assert (ship >= TPCH_START).all()
        assert (receipt <= TPCH_END + 160).all()

    def test_linestatus_follows_shipdate_pivot(self):
        batch = generate_lineitem(5000, seed=0)
        ship = batch.column("l_shipdate")
        status = batch.column("l_linestatus")
        for s, st in zip(ship[:500], status[:500]):
            assert st == ("F" if s <= TPCH_CURRENT else "O")

    def test_q6_predicate_selectivity_nonzero(self):
        """Q6's predicate must select a plausible slice (~2%)."""
        batch = generate_lineitem(50_000, seed=0)
        lo = (np.array(batch.column("l_shipdate"))
              >= _days(1994, 1, 1))
        hi = np.array(batch.column("l_shipdate")) < _days(1995, 1, 1)
        disc = np.abs(batch.column("l_discount") - 0.06) <= 0.01 + 1e-9
        qty = batch.column("l_quantity") < 24
        fraction = float((lo & hi & disc & qty).mean())
        assert 0.005 <= fraction <= 0.05


class TestOrders:
    def test_consecutive_orderkeys_per_partition(self):
        batch = generate_orders(100, seed=0, first_orderkey=501)
        keys = batch.column("o_orderkey")
        assert keys[0] == 501
        assert keys[-1] == 600
        assert len(np.unique(keys)) == 100

    def test_priorities_domain(self):
        batch = generate_orders(1000, seed=0)
        assert set(batch.column("o_orderpriority")) <= {
            "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}


class TestClickstreams:
    def test_purchase_fraction(self):
        batch = generate_clickstreams(50_000, seed=0)
        sales = batch.column("wcs_sales_sk")
        fraction = float((sales > 0).mean())
        assert 0.02 <= fraction <= 0.06

    def test_item_dimension_keys_dense(self):
        batch = generate_item()
        keys = batch.column("i_item_sk")
        assert keys[0] == 1
        assert len(np.unique(keys)) == len(keys)

    def test_clicks_reference_existing_items(self):
        clicks = generate_clickstreams(10_000, seed=0)
        items = generate_item()
        assert clicks.column("wcs_item_sk").max() <= \
            items.column("i_item_sk").max()


class TestDatasetSpecs:
    def test_table4_inventory(self):
        lineitem = TPCH_SF1000["lineitem"]
        assert lineitem.partition_count == 996
        assert lineitem.total_logical_bytes == pytest.approx(177.4 * units.GiB)
        assert lineitem.partition_logical_bytes == pytest.approx(
            182.4 * units.MiB, rel=0.01)
        orders = TPCH_SF1000["orders"]
        assert orders.partition_count == 249
        assert orders.partition_logical_bytes == pytest.approx(
            176.1 * units.MiB, rel=0.05)
        clicks = TPCH_SF1000["clickstreams"]
        assert clicks.partition_count == 1_000
        assert clicks.partition_logical_bytes == pytest.approx(
            92.7 * units.MiB, rel=0.05)
        assert TPCH_SF1000["item"].partition_count == 1
        assert TPCH_SF1000["item"].partition_logical_bytes == pytest.approx(
            75.8 * units.MiB)

    def test_test_scale_keeps_partition_density(self):
        scaled = scaled_spec("lineitem", partitions=8)
        assert scaled.partition_count == 8
        assert scaled.partition_logical_bytes == pytest.approx(
            TPCH_SF1000["lineitem"].partition_logical_bytes)

    def test_rows_for_partition_sums_to_total(self):
        spec = scaled_spec("lineitem", partitions=7, rows_per_partition=100)
        total = sum(spec.rows_for_partition(i)
                    for i in range(spec.partition_count))
        assert total == spec.physical_rows


class TestLoadTable:
    def test_load_table_stores_partitions_with_logical_sizes(self):
        env = Environment()
        fabric = Fabric(env)
        rng = RandomStreams(seed=0)
        s3 = S3Standard(env, fabric, rng)
        spec = scaled_spec("orders", partitions=4, rows_per_partition=50)
        proc = env.process(load_table(env, s3, spec))
        env.run(until=proc)
        metadata = proc.value
        assert metadata.partition_count == 4
        assert metadata.total_rows == 200
        assert metadata.total_logical_bytes == pytest.approx(
            4 * spec.partition_logical_bytes)
        # The stored objects report logical sizes, not physical.
        obj = s3.head(metadata.partitions[0].key)
        assert obj.size == pytest.approx(spec.partition_logical_bytes)
        assert metadata.partitions[0].physical_bytes < obj.size


def _days(year, month, day):
    from repro.datagen.dates import date_to_days
    return date_to_days(year, month, day)
