"""Tests for serving metrics: cost-per-query regimes, SLO, percentiles."""

import math

import pytest

from repro.serve.metrics import (
    CompletedQuery,
    ServingMetrics,
    cost_per_query,
)
from repro.workloads import ArrivalOutcome, burst_arrivals


class TestCostPerQuery:
    def test_no_traffic_is_free_not_infinite(self):
        """Regression: zero offered queries must not read as overload."""
        assert cost_per_query(0.0, completed=0, offered=0) == 0.0

    def test_all_shed_is_infinite(self):
        """Traffic offered, nothing served: genuinely infinite unit cost."""
        assert math.isinf(cost_per_query(0.37, completed=0, offered=100))

    def test_normal_division(self):
        assert cost_per_query(2.0, completed=4, offered=5) == 0.5


class TestArrivalOutcomeRegression:
    @staticmethod
    def _outcome(run, offered, cost=0.5):
        return ArrivalOutcome(backend="iaas", queries_per_hour=60.0,
                              window_s=600.0, queries_run=run,
                              compute_cost_usd=cost,
                              queries_offered=offered)

    def test_idle_window_cost_per_query_is_zero(self):
        """IaaS billing with no arrivals: no longer reported as inf."""
        assert self._outcome(run=0, offered=0).cost_per_query == 0.0

    def test_all_shed_window_is_infinite(self):
        assert math.isinf(self._outcome(run=0, offered=8).cost_per_query)

    def test_served_window_divides(self):
        assert self._outcome(run=4, offered=4).cost_per_query == 0.125

    def test_legacy_construction_without_offered_count(self):
        # Old call sites never set queries_offered; served runs still work.
        assert self._outcome(run=5, offered=0).cost_per_query == 0.1


class TestServingMetrics:
    @staticmethod
    def _record(tenant, submitted, started, finished, cost=0.01):
        return CompletedQuery(tenant=tenant, query_id="q",
                              submitted_at=submitted, started_at=started,
                              finished_at=finished, runtime=finished - started,
                              cost_usd=cost)

    def test_queue_wait_and_latency(self):
        record = self._record("t", submitted=10.0, started=12.5,
                              finished=14.0)
        assert record.queue_wait == 2.5
        assert record.latency == 4.0

    def test_report_percentiles_and_slo(self):
        metrics = ServingMetrics()
        for latency in (1.0, 2.0, 3.0, 4.0, 40.0):
            metrics.record_offered("t")
            metrics.record_completion(
                self._record("t", 0.0, 0.0, latency))
        report = metrics.tenant_report("t", slo_latency_s=5.0)
        assert report.offered == report.completed == 5
        assert report.latency_p50 == pytest.approx(3.0)
        assert report.latency_p99 > report.latency_p95 > report.latency_p50
        assert report.slo_attainment == pytest.approx(0.8)
        assert report.cost_usd == pytest.approx(0.05)
        assert report.cost_per_query == pytest.approx(0.01)

    def test_shed_counts_against_slo(self):
        metrics = ServingMetrics()
        for _ in range(4):
            metrics.record_offered("t")
        metrics.record_completion(self._record("t", 0.0, 0.0, 1.0))
        for _ in range(3):
            metrics.record_shed("t", at=0.0)
        report = metrics.tenant_report("t", slo_latency_s=5.0)
        assert report.shed == 3
        assert report.shed_rate == pytest.approx(0.75)
        assert report.slo_attainment == pytest.approx(0.25)
        assert math.isfinite(report.cost_per_query)

    def test_all_shed_tenant_report(self):
        metrics = ServingMetrics()
        for _ in range(2):
            metrics.record_offered("t")
            metrics.record_shed("t", at=0.0)
        report = metrics.tenant_report("t")
        assert report.completed == 0
        assert report.slo_attainment == 0.0
        assert math.isinf(report.cost_per_query)
        assert report.latency_p99 == 0.0

    def test_silent_tenant_report(self):
        metrics = ServingMetrics()
        report = metrics.tenant_report("quiet")
        assert report.offered == 0
        assert report.slo_attainment == 1.0
        assert report.cost_per_query == 0.0
        assert report.shed_rate == 0.0


class TestBurstTrace:
    def test_burst_arrivals_shape(self):
        trace = burst_arrivals(5, at=2.0)
        assert trace == [2.0] * 5
        assert burst_arrivals(0) == []
        with pytest.raises(ValueError):
            burst_arrivals(-1)
