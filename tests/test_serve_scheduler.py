"""Tests for the serving layer: policies, quotas, shedding, warm pools."""

import pytest

from repro import units
from repro.core import CloudSim
from repro.faas.function import FunctionConfig
from repro.serve import (
    ConcurrencyGovernor,
    QueryGateway,
    QueryScheduler,
    ServingMetrics,
    Tenant,
    WarmPoolManager,
    default_tenant_mix,
    make_policy,
    run_serving_workload,
)
from repro.sim import Environment


class FakeResult:
    def __init__(self, label, runtime):
        self.query_id = label
        self.runtime = runtime
        self.cost_cents = runtime  # 1 cent per second, keeps math easy


class FakeEngine:
    """Engine stand-in: fixed-duration queries, concurrency tracking."""

    def __init__(self, env, duration=1.0):
        self.env = env
        self.duration = duration
        self.started = []
        self.concurrent = 0
        self.peak_concurrent = 0

    def run_query(self, plan):
        self.started.append(plan)
        self.concurrent += 1
        self.peak_concurrent = max(self.peak_concurrent, self.concurrent)
        yield self.env.timeout(self.duration)
        self.concurrent -= 1
        return FakeResult(str(plan), self.duration)


def serve_all(env, scheduler):
    """Run the simulation until the scheduler drains."""
    def scenario(e):
        scheduler.start()
        yield scheduler.drained()
    process = env.process(scenario(env))
    env.run(until=process)


def make_stack(env, tenants, policy="fifo", governor=None, duration=1.0,
               max_pending=None):
    metrics = ServingMetrics()
    kwargs = {"max_pending": max_pending} if max_pending is not None else {}
    gateway = QueryGateway(env, metrics, **kwargs)
    for tenant in tenants:
        gateway.register(tenant)
    engine = FakeEngine(env, duration=duration)
    scheduler = QueryScheduler(env, engine, gateway, make_policy(policy),
                               governor, metrics)
    return gateway, engine, scheduler, metrics


class TestPolicies:
    def test_fifo_preserves_global_arrival_order(self):
        env = Environment()
        gateway, engine, scheduler, _ = make_stack(
            env, [Tenant(name="a"), Tenant(name="b")],
            policy="fifo", governor=ConcurrencyGovernor(1))
        for label in ("a:1", "b:1", "a:2", "b:2"):
            gateway.submit(label.split(":")[0], label)
        serve_all(env, scheduler)
        assert engine.started == ["a:1", "b:1", "a:2", "b:2"]

    def test_priority_class_preempts_backlog(self):
        env = Environment()
        gateway, engine, scheduler, _ = make_stack(
            env, [Tenant(name="bulk", priority=2),
                  Tenant(name="vip", priority=0)],
            policy="priority", governor=ConcurrencyGovernor(1))
        for i in range(3):
            gateway.submit("bulk", f"bulk:{i}")
        gateway.submit("vip", "vip:0")
        serve_all(env, scheduler)
        assert engine.started[0] == "vip:0"
        assert engine.started[1:] == ["bulk:0", "bulk:1", "bulk:2"]

    def test_fair_share_splits_by_weight(self):
        env = Environment()
        gateway, engine, scheduler, _ = make_stack(
            env, [Tenant(name="heavy", weight=1.0, max_concurrent=1),
                  Tenant(name="light", weight=3.0, max_concurrent=1)],
            policy="fair", governor=ConcurrencyGovernor(1))
        for i in range(40):
            gateway.submit("heavy", f"heavy:{i}")
            gateway.submit("light", f"light:{i}")
        serve_all(env, scheduler)
        first = engine.started[:12]
        light = sum(1 for label in first if label.startswith("light"))
        # 3:1 weights -> light gets ~9 of the first 12 dispatches.
        assert 8 <= light <= 10

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError, match="unknown policy"):
            make_policy("round-robin")


class TestQuotas:
    def test_tenant_concurrency_quota_enforced(self):
        env = Environment()
        gateway, engine, scheduler, _ = make_stack(
            env, [Tenant(name="t", max_concurrent=2)], policy="fifo")
        for i in range(6):
            gateway.submit("t", f"q:{i}")
        serve_all(env, scheduler)
        assert engine.peak_concurrent == 2
        assert len(engine.started) == 6

    def test_governor_caps_total_concurrency(self):
        env = Environment()
        tenants = [Tenant(name=f"t{i}", max_concurrent=4) for i in range(3)]
        gateway, engine, scheduler, _ = make_stack(
            env, tenants, policy="fifo", governor=ConcurrencyGovernor(3))
        for tenant in tenants:
            for i in range(4):
                gateway.submit(tenant.name, f"{tenant.name}:{i}")
        serve_all(env, scheduler)
        assert engine.peak_concurrent == 3
        assert scheduler.governor.peak_in_flight == 3

    def test_governor_derived_from_account_quota(self):
        governor = ConcurrencyGovernor.for_account(1_000, 4)
        assert governor.max_queries == 250
        with pytest.raises(ValueError):
            ConcurrencyGovernor.for_account(0, 4)

    def test_governor_release_guard(self):
        governor = ConcurrencyGovernor(1)
        with pytest.raises(RuntimeError):
            governor.release()


class TestAdmissionControl:
    def test_burst_10x_quota_sheds(self):
        """A burst 10x the account quota is mostly shed, not queued."""
        account_quota = 8
        env = Environment()
        tenant = Tenant(name="burst", max_concurrent=4, max_queue_depth=8)
        gateway, engine, scheduler, metrics = make_stack(
            env, [tenant], policy="fifo",
            governor=ConcurrencyGovernor.for_account(account_quota, 4))
        burst = 10 * account_quota
        for i in range(burst):
            gateway.submit("burst", f"q:{i}")
        serve_all(env, scheduler)
        report = metrics.tenant_report("burst")
        assert report.offered == burst
        assert report.completed == 8          # the queue bound
        assert report.shed == burst - 8
        assert report.shed_rate == pytest.approx(0.9)

    def test_gateway_wide_backpressure(self):
        env = Environment()
        gateway, engine, scheduler, metrics = make_stack(
            env, [Tenant(name="a"), Tenant(name="b")],
            policy="fifo", governor=ConcurrencyGovernor(1), max_pending=3)
        for i in range(5):
            gateway.submit("a", f"a:{i}")
        assert gateway.submit("b", "b:0") is None  # global bound reached
        serve_all(env, scheduler)
        assert metrics.shed_count("a") == 2
        assert metrics.shed_count("b") == 1

    def test_unregistered_tenant_rejected(self):
        env = Environment()
        gateway = QueryGateway(env)
        with pytest.raises(KeyError, match="not registered"):
            gateway.submit("ghost", "q")


class TestWarmPool:
    @staticmethod
    def _deploy(sim, name="pingable"):
        def handler(context, payload):
            yield context.env.timeout(0.05)
            return "ok"
        sim.platform.deploy(FunctionConfig(
            name=name, handler=handler, memory_bytes=1_769 * units.MiB,
            binary_bytes=1 * units.MiB))

    def test_keep_alive_fills_then_hits(self):
        sim = CloudSim(seed=3)
        self._deploy(sim)
        first = sim.run(sim.platform.keep_alive("pingable", 3))
        assert first == {"hits": 0, "misses": 3, "skipped": 0}
        assert sim.platform.warm_sandbox_count("pingable") == 3
        second = sim.run(sim.platform.keep_alive("pingable", 3))
        assert second == {"hits": 3, "misses": 0, "skipped": 0}

    def test_pinged_function_warmstarts(self):
        sim = CloudSim(seed=3)
        self._deploy(sim)
        sim.run(sim.platform.keep_alive("pingable", 1))
        record = sim.run(sim.platform.invoke("pingable"))
        assert record.cold is False

    def test_manager_hit_rate_beats_cold_rate(self):
        sim = CloudSim(seed=3)
        self._deploy(sim)
        manager = WarmPoolManager(sim.env, sim.platform,
                                  {"pingable": 2}, interval_s=120.0)
        sim.run(sim.env.process(manager.run(until=600.0)))
        stats = manager.stats
        assert stats.rounds >= 5
        assert stats.misses == 2      # only the initial fill coldstarts
        assert stats.hit_rate > stats.cold_start_rate
        assert stats.hit_rate > 0.7
        assert manager.ping_cost_usd() > 0.0

    def test_invalid_targets_rejected(self):
        sim = CloudSim(seed=3)
        with pytest.raises(ValueError):
            WarmPoolManager(sim.env, sim.platform, {"f": 0})
        with pytest.raises(ValueError):
            WarmPoolManager(sim.env, sim.platform, {"f": 1}, interval_s=0)


class TestServingIntegration:
    @pytest.fixture(scope="class")
    def overload_outcomes(self):
        """FIFO vs fair share on the same deterministic overload trace."""
        outcomes = {}
        for policy in ("fifo", "fair"):
            outcomes[policy] = run_serving_workload(
                default_tenant_mix(rate_scale=6.0), policy=policy,
                window_s=180.0, seed=1, max_concurrent_queries=1)
        return outcomes

    def test_same_trace_across_policies(self, overload_outcomes):
        fifo, fair = (overload_outcomes[p] for p in ("fifo", "fair"))
        for name in fifo.reports:
            assert fifo.reports[name].offered == fair.reports[name].offered

    def test_fair_share_cuts_high_priority_p99(self, overload_outcomes):
        """Acceptance: fair share reduces the premium tenant's p99."""
        fifo = overload_outcomes["fifo"].reports["interactive"]
        fair = overload_outcomes["fair"].reports["interactive"]
        assert fair.latency_p99 < 0.5 * fifo.latency_p99
        assert fair.slo_attainment >= fifo.slo_attainment

    def test_fixed_seed_is_deterministic(self):
        runs = [run_serving_workload(default_tenant_mix(), policy="fair",
                                     window_s=120.0, seed=7,
                                     max_concurrent_queries=2).summary()
                for _ in range(2)]
        assert runs[0] == runs[1]

    def test_warm_pool_reduces_coldstarts_on_sparse_traffic(self):
        mix = [w for w in default_tenant_mix() if w.tenant.name == "batch"]
        with_pool = run_serving_workload(
            mix, policy="fifo", window_s=120.0, seed=5,
            warm_targets={"skyrise-worker": 2, "skyrise-coordinator": 1},
            warm_interval_s=60.0)
        assert with_pool.warm_stats is not None
        assert with_pool.warm_stats.pings > 0
        assert with_pool.warm_cost_usd > 0.0
        assert with_pool.total_cost_usd > sum(
            r.cost_usd for r in with_pool.reports.values())
