"""Tests for the futures data partitioner (chunk geometry + ordering)."""

import pytest

from repro.futures import DataChunk, partition_object, partition_prefix


class FakeService:
    """Metadata-only storage stub: ``list_keys`` + ``head``."""

    class _Head:
        def __init__(self, size):
            self.size = size

    def __init__(self, objects):
        self._objects = dict(objects)

    def list_keys(self, prefix):
        return sorted(key for key in self._objects
                      if key.startswith(prefix))

    def head(self, key):
        return self._Head(self._objects[key])


class TestPartitionObject:
    def test_no_chunk_bytes_is_one_whole_chunk(self):
        chunks = partition_object("k", 1_000.0)
        assert chunks == [DataChunk(key="k", offset=0.0, length=1_000.0,
                                    object_size=1_000.0, part=0, parts=1)]
        assert chunks[0].whole_object

    def test_object_smaller_than_chunk_is_one_whole_chunk(self):
        (chunk,) = partition_object("k", 100.0, chunk_bytes=256.0)
        assert chunk.whole_object
        assert chunk.length == 100.0
        assert chunk.parts == 1

    def test_zero_byte_object_is_one_empty_chunk(self):
        (chunk,) = partition_object("k", 0.0, chunk_bytes=256.0)
        assert chunk.length == 0.0
        assert chunk.whole_object

    def test_boundary_exactly_at_object_size(self):
        # 1024 / 256 divides evenly: exactly 4 chunks, no empty trailer.
        chunks = partition_object("k", 1_024.0, chunk_bytes=256.0)
        assert [c.length for c in chunks] == [256.0] * 4
        assert [c.offset for c in chunks] == [0.0, 256.0, 512.0, 768.0]
        assert all(c.parts == 4 for c in chunks)

    def test_trailing_remainder_chunk(self):
        chunks = partition_object("k", 1_000.0, chunk_bytes=256.0)
        assert [c.length for c in chunks] == [256.0, 256.0, 256.0, 232.0]

    def test_chunks_tile_the_object(self):
        chunks = partition_object("k", 10_000.0, chunk_bytes=768.0,
                                  align_bytes=16.0)
        assert chunks[0].offset == 0.0
        for previous, current in zip(chunks, chunks[1:]):
            assert current.offset == previous.offset + previous.length
        assert chunks[-1].offset + chunks[-1].length == 10_000.0

    def test_alignment_floors_interior_boundaries(self):
        # Raw cuts at 300/600/900 floor to multiples of 128.
        chunks = partition_object("k", 1_000.0, chunk_bytes=300.0,
                                  align_bytes=128.0)
        assert [c.offset for c in chunks] == [0.0, 256.0, 512.0, 896.0]
        for chunk in chunks[1:]:
            assert chunk.offset % 128.0 == 0.0

    def test_collapsed_aligned_boundaries_are_dropped(self):
        # chunk_bytes < align_bytes: every raw cut floors onto an earlier
        # one; no empty chunks may be emitted.
        chunks = partition_object("k", 1_024.0, chunk_bytes=100.0,
                                  align_bytes=512.0)
        assert [c.offset for c in chunks] == [0.0, 512.0]
        assert all(c.length > 0 for c in chunks)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            partition_object("k", -1.0)
        with pytest.raises(ValueError):
            partition_object("k", 10.0, chunk_bytes=0.0)
        with pytest.raises(ValueError):
            partition_object("k", 10.0, chunk_bytes=4.0, align_bytes=-1.0)


class TestPartitionPrefix:
    def test_empty_prefix_yields_no_chunks(self):
        service = FakeService({"other/a": 100.0})
        assert partition_prefix(service, "corpus/", chunk_bytes=64.0) == []

    def test_global_index_is_sequential_over_sorted_keys(self):
        service = FakeService({"p/b": 200.0, "p/a": 100.0, "p/c": 50.0})
        chunks = partition_prefix(service, "p/", chunk_bytes=100.0)
        assert [c.index for c in chunks] == list(range(len(chunks)))
        # Keys visited in sorted order regardless of insertion order.
        assert [c.key for c in chunks] == ["p/a", "p/b", "p/b", "p/c"]

    def test_ordering_is_deterministic(self):
        service = FakeService(
            {f"p/{i:03d}": 100.0 + 7 * i for i in range(20)})
        first = partition_prefix(service, "p/", chunk_bytes=64.0,
                                 align_bytes=8.0)
        second = partition_prefix(service, "p/", chunk_bytes=64.0,
                                  align_bytes=8.0)
        assert first == second

    def test_mixed_sizes_partition_correctly(self):
        service = FakeService({"p/small": 10.0, "p/exact": 128.0,
                               "p/big": 300.0})
        chunks = partition_prefix(service, "p/", chunk_bytes=128.0)
        by_key = {}
        for chunk in chunks:
            by_key.setdefault(chunk.key, []).append(chunk)
        assert len(by_key["p/small"]) == 1
        assert by_key["p/small"][0].whole_object
        assert len(by_key["p/exact"]) == 1  # fits exactly in one chunk
        assert [c.length for c in by_key["p/big"]] == [128.0, 128.0, 44.0]
