"""SLO engine: windows, burn-rate alerts, budgets, offline evaluation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.slo import (
    BurnRule,
    SLOEngine,
    SLOPolicy,
    SlidingWindow,
    evaluate_offline,
)
from repro.telemetry import canonical_json

RULE = BurnRule(name="fast", long_window_s=120.0, short_window_s=30.0,
                factor=4.0)
POLICY = SLOPolicy(objective=0.9, latency_s=1.0, rules=(RULE,))


class TestValidation:
    def test_short_window_must_not_exceed_long(self):
        with pytest.raises(ValueError):
            BurnRule(name="bad", long_window_s=10.0, short_window_s=20.0,
                     factor=2.0)

    def test_objective_bounds(self):
        with pytest.raises(ValueError):
            SLOPolicy(objective=1.0)
        with pytest.raises(ValueError):
            SLOPolicy(objective=0.0)

    def test_policy_needs_rules(self):
        with pytest.raises(ValueError):
            SLOPolicy(rules=())

    def test_budget_fraction(self):
        assert SLOPolicy(objective=0.99).budget_fraction == pytest.approx(0.01)

    def test_is_good_classifies_latency_and_error(self):
        assert POLICY.is_good(0.5)
        assert not POLICY.is_good(1.5)
        assert not POLICY.is_good(0.5, error=True)


class TestSlidingWindow:
    def test_counts_trailing_window_only(self):
        window = SlidingWindow(window_s=10.0, bucket_s=1.0)
        window.record(1.0, True)
        window.record(5.0, False)
        window.record(14.0, True)
        good, bad = window.counts(14.0)
        assert (good, bad) == (1, 1)  # t=1 has aged out of (4, 14]
        assert window.bad_fraction(14.0) == pytest.approx(0.5)

    def test_memory_is_bounded_by_bucket_count(self):
        window = SlidingWindow(window_s=10.0, bucket_s=1.0)
        for i in range(10_000):
            window.record(float(i), True)
        assert len(window._buckets) <= 12

    def test_bulk_count_equals_repeated_records(self):
        one = SlidingWindow(window_s=10.0, bucket_s=1.0)
        bulk = SlidingWindow(window_s=10.0, bucket_s=1.0)
        for _ in range(7):
            one.record(3.0, False)
        bulk.record(3.0, False, count=7)
        assert one.counts(5.0) == bulk.counts(5.0)

    def test_empty_window_has_zero_bad_fraction(self):
        assert SlidingWindow(5.0, 1.0).bad_fraction(100.0) == 0.0


class TestBurnAlerts:
    def test_fires_only_when_both_windows_burn(self):
        engine = SLOEngine(POLICY)
        # Long window burns (>= 40% bad over 120s) but the last 30s are
        # clean: no alert.
        engine.record(10.0, "s", False, count=50)
        engine.record(10.0, "s", True, count=50)
        engine.record(115.0, "s", True, count=100)
        assert engine.evaluate(115.0) == []
        # Now the short window burns too.
        engine.record(116.0, "s", False, count=100)
        fired = engine.evaluate(116.0)
        assert [a.rule for a in fired] == ["fast"]
        assert fired[0].scope == "s"
        assert fired[0].short_burn >= RULE.factor
        assert fired[0].long_burn >= RULE.factor

    def test_alert_latches_until_long_window_recovers(self):
        engine = SLOEngine(POLICY)
        engine.record(5.0, "s", False, count=100)
        assert len(engine.evaluate(6.0)) == 1
        # Still burning: latched, no duplicate alert.
        engine.record(7.0, "s", False, count=100)
        assert engine.evaluate(8.0) == []
        # 130s later everything has aged out; the rule re-arms and a
        # fresh burst fires again.
        assert engine.evaluate(140.0) == []
        engine.record(141.0, "s", False, count=100)
        assert len(engine.evaluate(141.0)) == 1
        assert len(engine.alerts) == 2

    def test_scopes_are_independent(self):
        engine = SLOEngine(POLICY)
        engine.record(5.0, "a", False, count=100)
        engine.record(5.0, "b", True, count=100)
        fired = engine.evaluate(6.0)
        assert [a.scope for a in fired] == ["a"]


class TestBudget:
    def test_budget_consumed_is_relative_to_objective(self):
        engine = SLOEngine(POLICY)  # 10% budget
        engine.record(1.0, "s", True, count=90)
        engine.record(1.0, "s", False, count=10)
        # Exactly at the objective: budget fully (1.0x) consumed.
        assert engine.budget_consumed("s") == pytest.approx(1.0)
        engine.record(2.0, "s", False, count=100)
        assert engine.budget_consumed("s") > 1.0

    def test_unknown_scope_consumes_nothing(self):
        assert SLOEngine(POLICY).budget_consumed("nope") == 0.0

    def test_report_shape(self):
        engine = SLOEngine(POLICY)
        engine.record(1.0, "s", True)
        engine.record(2.0, "s", False, count=100)
        engine.evaluate(3.0)
        report = engine.report(3.0)
        assert report["schema"] == "repro.obs.slo/1"
        assert report["scopes"]["s"]["total"] == 101
        assert report["scopes"]["s"]["firing"] == ["fast"]
        assert len(report["alerts"]) == 1
        # Canonical JSON must serialize without type errors.
        canonical_json(report)


class TestOfflineEvaluation:
    @given(st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=300.0),
                  st.sampled_from(["tenant:a", "tenant:b", "fleet"]),
                  st.booleans()),
        max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_same_events_same_bytes(self, events):
        """Byte-identical reports for identical inputs (determinism)."""
        first = evaluate_offline(POLICY, events, window_end=300.0)
        second = evaluate_offline(POLICY, events, window_end=300.0)
        assert canonical_json(first) == canonical_json(second)

    def test_counts_every_event(self):
        events = [(10.0, "tenant:a", True)] * 5 + [(20.0, "tenant:a", False)]
        report = evaluate_offline(POLICY, events, window_end=60.0)
        scope = report["scopes"]["tenant:a"]
        assert scope["total"] == 6
        assert scope["good"] == 5
        assert scope["attainment"] == pytest.approx(5 / 6)

    def test_sustained_badness_alerts(self):
        events = [(float(t), "fleet", False)
                  for t in range(10, 290)]
        report = evaluate_offline(POLICY, events, window_end=300.0)
        assert len(report["alerts"]) >= 1
        assert report["alerts"][0]["scope"] == "fleet"
