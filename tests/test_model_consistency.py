"""Cross-model consistency: discrete vs fluid storage admission.

The simulators expose two request paths — per-request (used by the query
engine) and aggregate-rate (used by the IOPS experiments). These tests
guard against the two models drifting apart: the same offered load must
see the same sustained admission on both paths.
"""

import pytest

from repro.core import CloudSim
from repro.network import Fabric
from repro.sim import Environment, RandomStreams
from repro.storage import DynamoDB, S3Express, S3Standard
from repro.storage.base import RequestType
from repro.storage.errors import StorageError


def discrete_sustained_rate(service, offered_per_s: float,
                            duration_s: float = 4.0,
                            tick: float = 0.01) -> float:
    """Admit `offered_per_s` requests/s one by one; return the accepted
    rate over the second half of the window (post-burst)."""
    accepted_late = 0
    now = 0.0
    carry = 0.0
    while now < duration_s:
        carry += offered_per_s * tick
        while carry >= 1.0:
            carry -= 1.0
            try:
                service._admit_one(RequestType.GET, f"k{now}")
                if now >= duration_s / 2:
                    accepted_late += 1
            except StorageError:
                pass
        # Advance the service clock so token buckets refill.
        service.env._now = now  # direct clock control for the unit test
        now += tick
    return accepted_late / (duration_s / 2)


@pytest.mark.parametrize("service_cls,offered,expected", [
    (S3Standard, 20_000.0, 5_500.0),
    (DynamoDB, 50_000.0, 16_000.0),
    (S3Express, 400_000.0, 220_000.0),
])
def test_discrete_and_fluid_paths_agree(service_cls, offered, expected):
    env = Environment()
    fabric = Fabric(env)
    rng = RandomStreams(seed=0)

    fluid_service = service_cls(env, fabric, rng)
    fluid = fluid_service.offer_load(offered, 0.0, elapsed=60.0, now=0.0)
    assert fluid.accepted_read == pytest.approx(expected, rel=0.01)

    discrete_env = Environment()
    discrete_service = service_cls(discrete_env, Fabric(discrete_env),
                                   RandomStreams(seed=0))
    # Measure the post-burst steady state: DynamoDB's five-minute burst
    # bucket legitimately admits everything for a while, which the fluid
    # path folds into its calibrated sustained quota.
    if hasattr(discrete_service, "_read_tokens"):
        discrete_service._read_tokens = min(
            discrete_service._read_tokens, expected)
    sustained = discrete_sustained_rate(discrete_service, offered)
    # Discrete token buckets admit the same sustained rate (within the
    # quantization of whole requests).
    assert sustained == pytest.approx(expected, rel=0.05)


def test_underload_admits_everything_on_both_paths():
    env = Environment()
    fabric = Fabric(env)
    rng = RandomStreams(seed=0)
    s3 = S3Standard(env, fabric, rng)
    fluid = s3.offer_load(2_000.0, 0.0, elapsed=10.0, now=0.0)
    assert fluid.rejected_read == 0.0

    discrete_env = Environment()
    s3_discrete = S3Standard(discrete_env, Fabric(discrete_env),
                             RandomStreams(seed=0))
    sustained = discrete_sustained_rate(s3_discrete, 2_000.0)
    assert sustained == pytest.approx(2_000.0, rel=0.05)


def test_engine_query_costs_match_between_runs():
    """Determinism: the same seed yields the same query cost and request
    count across independent executions."""
    from repro.datagen import load_table, scaled_spec
    from repro.engine import SkyriseEngine
    from repro.engine.queries import tpch_q6

    def run_once():
        sim = CloudSim(seed=77)
        s3 = sim.s3()
        metadata = sim.run(load_table(
            sim.env, s3, scaled_spec("lineitem", 4, rows_per_partition=64)))
        engine = SkyriseEngine(sim.env, sim.platform,
                               storage={"s3-standard": s3})
        engine.register_table(metadata)
        engine.deploy()
        result = sim.run(engine.run_query(tpch_q6(scan_fragments=4)))
        return (result.runtime, result.cost_cents, result.requests,
                float(result.batch.column("revenue")[0]))

    assert run_once() == run_once()
