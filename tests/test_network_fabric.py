"""Integration tests for the fluid network fabric."""

import pytest

from repro import units
from repro.network import Fabric, IperfClient, IperfServer, ThroughputProbe
from repro.network.shaper import TokenBucketShaper, lambda_shaper
from repro.sim import Environment


def make_env():
    env = Environment()
    fabric = Fabric(env)
    return env, fabric


class TestBoundedTransfers:
    def test_unconstrained_transfer_completes_at_default_rate(self):
        env, fabric = make_env()
        src = fabric.endpoint("src")
        dst = fabric.endpoint("dst")
        flow = fabric.transfer(src, dst, size=fabric.default_rate * 2.0)
        env.run(until=flow.done)
        assert env.now == pytest.approx(2.0)
        assert flow.transferred == pytest.approx(fabric.default_rate * 2.0)

    def test_transfer_respects_link_capacity(self):
        env, fabric = make_env()
        src = fabric.endpoint("src")
        dst = fabric.endpoint("dst")
        link = fabric.link(capacity=100.0)
        flow = fabric.transfer(src, dst, size=500.0, links=(link,))
        env.run(until=flow.done)
        assert env.now == pytest.approx(5.0)

    def test_two_flows_share_link_fairly(self):
        env, fabric = make_env()
        link = fabric.link(capacity=100.0)
        a = fabric.transfer(fabric.endpoint("a"), fabric.endpoint("x"),
                            size=100.0, links=(link,))
        b = fabric.transfer(fabric.endpoint("b"), fabric.endpoint("y"),
                            size=100.0, links=(link,))
        env.run(until=a.done)
        # Both at 50 B/s -> each finishes at t=2.
        assert env.now == pytest.approx(2.0)
        env.run(until=b.done)
        assert env.now == pytest.approx(2.0)

    def test_departing_flow_frees_capacity(self):
        env, fabric = make_env()
        link = fabric.link(capacity=100.0)
        short = fabric.transfer(fabric.endpoint("a"), fabric.endpoint("x"),
                                size=50.0, links=(link,))
        long = fabric.transfer(fabric.endpoint("b"), fabric.endpoint("y"),
                               size=150.0, links=(link,))
        env.run(until=short.done)
        assert env.now == pytest.approx(1.0)
        env.run(until=long.done)
        # long had 50 after 1s at 50 B/s, then 100 remaining at 100 B/s.
        assert env.now == pytest.approx(2.0)

    def test_max_min_respects_per_flow_bottleneck(self):
        env, fabric = make_env()
        shared = fabric.link(capacity=100.0)
        slow_nic = fabric.link(capacity=10.0)
        capped = fabric.transfer(fabric.endpoint("a"), fabric.endpoint("x"),
                                 size=10.0, links=(shared, slow_nic))
        free = fabric.transfer(fabric.endpoint("b"), fabric.endpoint("y"),
                               size=90.0, links=(shared,))
        env.run(until=capped.done)
        # capped at 10 B/s -> 1s; free gets the residual 90 B/s -> 1s too.
        assert env.now == pytest.approx(1.0)
        env.run(until=free.done)
        assert env.now == pytest.approx(1.0)

    def test_invalid_size_rejected(self):
        env, fabric = make_env()
        with pytest.raises(ValueError):
            fabric.transfer(fabric.endpoint("a"), fabric.endpoint("b"), size=0)


class TestShapedTransfers:
    def test_burst_then_baseline(self):
        env, fabric = make_env()
        shaper = TokenBucketShaper(capacity=100.0, burst_rate=100.0,
                                   refill_rate=10.0, mode="continuous",
                                   initial_level=100.0)
        src = fabric.endpoint("server")
        dst = fabric.endpoint("fn", ingress=shaper)
        # 200 bytes: ~111 at burst (100 bucket + refill), rest at baseline.
        flow = fabric.transfer(src, dst, size=211.0)
        env.run(until=flow.done)
        # Burst phase: drain 100 net at (100-10)=90/s -> 10/9 s, moving
        # 100*10/9 = 111.1 bytes. Remaining 99.9 at 10/s -> ~9.99 s.
        assert env.now == pytest.approx(10 / 9 + (211 - 100 * 10 / 9) / 10, rel=1e-6)

    def test_aggregate_shaper_limits_sum_of_flows(self):
        env, fabric = make_env()
        shaper = TokenBucketShaper(capacity=1.0, burst_rate=100.0,
                                   refill_rate=100.0, mode="continuous",
                                   initial_level=1.0)
        dst = fabric.endpoint("fn", ingress=shaper)
        a = fabric.transfer(fabric.endpoint("s1"), dst, size=100.0)
        b = fabric.transfer(fabric.endpoint("s2"), dst, size=100.0)
        env.run(until=a.done)
        assert env.now == pytest.approx(2.0)  # 50 B/s each
        env.run(until=b.done)
        assert env.now == pytest.approx(2.0)

    def test_idle_refill_requires_a_real_idle_period(self):
        env, fabric = make_env()
        shaper = TokenBucketShaper(capacity=100.0, burst_rate=10.0,
                                   refill_rate=0.0, mode="continuous",
                                   idle_refill_level=50.0, initial_level=100.0)
        dst = fabric.endpoint("fn", ingress=shaper)
        src = fabric.endpoint("s")

        def scenario(env):
            first = fabric.transfer(src, dst, size=100.0)
            yield first.done
            drained_level = shaper.level
            # After a multi-second idle period the next flow finds the
            # bucket refilled halfway (short gaps are covered by the
            # shaper unit tests).
            yield env.timeout(5.0)
            late = fabric.transfer(src, dst, size=1.0)
            refilled_level = shaper.level
            yield late.done
            return drained_level, refilled_level

        proc = env.process(scenario(env))
        env.run(until=proc)
        drained, refilled = proc.value
        assert drained == pytest.approx(0.0, abs=1.0)
        assert refilled == pytest.approx(50.0, abs=1.0)


class TestLambdaNetworkModel:
    """Reproduces the headline numbers of Section 4.2.1 at model level."""

    def run_iperf(self, duration=5.0, direction="download"):
        env, fabric = make_env()
        server = IperfServer(env, fabric, capacity=20 * units.GiB)
        fn = fabric.endpoint("lambda-fn", ingress=lambda_shaper("in"),
                             egress=lambda_shaper("out"))
        client = IperfClient(env, fabric, fn, server)
        proc = env.process(client.run(duration, direction=direction))
        env.run(until=proc)
        return proc.value

    def test_initial_inbound_burst_rate_and_duration(self):
        result = self.run_iperf()
        profile = result.burst_profile()
        # ~1.2 GiB/s sustained for ~250 ms (300 MiB / 1.2 GiB/s).
        assert profile.burst_rate == pytest.approx(1.2 * units.GiB, rel=0.05)
        assert 0.2 <= profile.burst_duration <= 0.3

    def test_baseline_bandwidth_75_mib_per_s(self):
        result = self.run_iperf(duration=5.0)
        # After the burst, average throughput approaches 75 MiB/s.
        rates = result.series.rates()
        tail = rates[len(rates) // 2:]
        mean_tail = sum(tail) / len(tail)
        assert mean_tail == pytest.approx(75 * units.MiB, rel=0.1)

    def test_baseline_is_spiky_at_20ms_sampling(self):
        result = self.run_iperf(duration=3.0)
        rates = result.series.rates()
        tail = rates[len(rates) // 2:]
        # Quantized grants: some 20 ms windows idle, some carry a grant.
        assert min(tail) == 0.0
        assert max(tail) > 10 * 75 * units.MiB / 10

    def test_outbound_burst_is_lower_than_inbound(self):
        inbound = self.run_iperf(direction="download").burst_profile()
        outbound = self.run_iperf(direction="upload").burst_profile()
        assert outbound.burst_rate < inbound.burst_rate

    def test_second_burst_after_break_is_shorter(self):
        """The bucket refills to half on idle, so burst #2 moves less data."""
        env, fabric = make_env()
        server = IperfServer(env, fabric, capacity=20 * units.GiB)
        fn = fabric.endpoint("fn", ingress=lambda_shaper("in"))
        client = IperfClient(env, fabric, fn, server)

        def scenario(env):
            first = yield env.process(client.run(1.0))
            yield env.timeout(3.0)
            second = yield env.process(client.run(1.0))
            return first, second

        proc = env.process(scenario(env))
        env.run(until=proc)
        first, second = proc.value
        first_burst = first.burst_profile().bucket_bytes
        second_burst = second.burst_profile().bucket_bytes
        # Roughly half: 150 MiB rechargeable vs 300 MiB initial. The
        # profile estimator works on 20 ms samples of a spiky series, so
        # allow a generous band around the ideal 0.5 ratio.
        assert 0.35 * first_burst <= second_burst <= 0.8 * first_burst


class TestVpcCap:
    def test_vpc_link_caps_aggregate_throughput(self):
        env, fabric = make_env()
        vpc = fabric.link(20 * units.GiB, name="vpc")
        flows = []
        for i in range(64):
            dst = fabric.endpoint(f"fn-{i}", ingress=lambda_shaper("in"))
            src = fabric.endpoint(f"server-{i}")
            flows.append(fabric.open_flow(src, dst, links=(vpc,)))
        probe = ThroughputProbe(env, fabric, flows, interval=0.02, duration=0.2)
        env.run(until=probe.process)
        peak = probe.series.peak_rate()
        # 64 x 1.2 GiB/s of demand would be 76.8 GiB/s; VPC caps at 20.
        assert peak <= 20 * units.GiB * 1.01
        assert peak >= 19 * units.GiB


class TestProbe:
    def test_probe_interval_validation(self):
        env, fabric = make_env()
        with pytest.raises(ValueError):
            ThroughputProbe(env, fabric, [], interval=0.0)

    def test_probe_total_matches_flow(self):
        env, fabric = make_env()
        link = fabric.link(capacity=100.0)
        flow = fabric.transfer(fabric.endpoint("a"), fabric.endpoint("b"),
                               size=100.0, links=(link,))
        probe = ThroughputProbe(env, fabric, [flow], interval=0.1, duration=2.0)
        env.run(until=probe.process)
        assert probe.series.total_bytes() == pytest.approx(100.0)

    def test_conservation_total_transferred_le_offered(self):
        env, fabric = make_env()
        shaper = TokenBucketShaper(capacity=50.0, burst_rate=100.0,
                                   refill_rate=10.0, mode="continuous",
                                   initial_level=50.0)
        dst = fabric.endpoint("fn", ingress=shaper)
        flow = fabric.open_flow(fabric.endpoint("s"), dst)
        env.run(until=2.0)
        fabric.sync_now()
        # Transferred can never exceed initial bucket + refill over time.
        assert flow.transferred <= 50.0 + 10.0 * 2.0 + 1e-6
