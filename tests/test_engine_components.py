"""Unit tests for engine internals: barriers, shuffle, I/O stack, plans."""

import numpy as np
import pytest

from repro import units
from repro.engine.barrier import Barrier, BarrierRegistry
from repro.engine.cost import CpuCostModel, DEFAULT_COST_MODEL
from repro.engine.io import IoStack, _chunk_sizes
from repro.engine.plan import (
    PhysicalPlan,
    PipelineSpec,
    ResultSink,
    ShuffleSink,
    ShuffleSource,
    TableSource,
)
from repro.engine.shuffle import ShuffleReader, ShuffleWriter, _hash_partition
from repro.formats.batch import RecordBatch
from repro.formats.schema import DataType, Field, Schema
from repro.network import Fabric
from repro.sim import Environment, RandomStreams
from repro.storage import S3Standard


def make_stack():
    env = Environment()
    fabric = Fabric(env)
    rng = RandomStreams(seed=1)
    s3 = S3Standard(env, fabric, rng)
    endpoint = fabric.endpoint("worker")
    return env, fabric, s3, endpoint


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def sample_batch(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return RecordBatch(
        Schema([Field("key", DataType.INT64), Field("v", DataType.FLOAT64)]),
        {"key": rng.integers(0, 50, n).astype(np.int64),
         "v": rng.random(n)})


class TestBarrier:
    def test_releases_when_all_arrive(self):
        env = Environment()
        barrier = Barrier(env, parties=3)
        times = []

        def party(env, delay):
            yield env.timeout(delay)
            yield barrier.wait()
            times.append(env.now)

        for delay in (1.0, 2.0, 5.0):
            env.process(party(env, delay))
        env.run()
        # Everyone released at the moment the last party arrived.
        assert times == [5.0, 5.0, 5.0]

    def test_overrun_detected(self):
        env = Environment()
        barrier = Barrier(env, parties=1)

        def party(env):
            yield barrier.wait()

        env.process(party(env))
        env.run()
        with pytest.raises(RuntimeError, match="overrun"):
            barrier.wait()

    def test_parties_validated(self):
        with pytest.raises(ValueError):
            Barrier(Environment(), parties=0)

    def test_registry_creates_and_clears(self):
        env = Environment()
        registry = BarrierRegistry(env)
        a = registry.get("q1", "join", parties=4)
        assert registry.get("q1", "join", parties=4) is a
        with pytest.raises(ValueError, match="parties"):
            registry.get("q1", "join", parties=5)
        registry.clear("q1")
        b = registry.get("q1", "join", parties=5)
        assert b is not a


class TestCostModel:
    def test_cpu_seconds_scales_with_bytes(self):
        model = CpuCostModel()
        one = model.cpu_seconds("decode", units.GiB)
        two = model.cpu_seconds("decode", 2 * units.GiB)
        assert two == pytest.approx(2 * one)
        assert one == pytest.approx(model.decode_per_gib)

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError, match="unknown CPU operation"):
            DEFAULT_COST_MODEL.cpu_seconds("teleport", 1.0)

    def test_all_operator_cost_classes_priced(self):
        for op in ("decode", "scan", "filter", "project", "aggregate",
                   "join", "sort", "udf", "encode"):
            assert DEFAULT_COST_MODEL.cpu_seconds(op, units.GiB) > 0


class TestChunking:
    def test_chunk_sizes_cover_total(self):
        sizes = _chunk_sizes(150 * units.MiB, 64 * units.MiB)
        assert len(sizes) == 3
        assert sum(sizes) == pytest.approx(150 * units.MiB)
        assert sizes[-1] == pytest.approx(22 * units.MiB)

    def test_zero_total_still_costs_a_request(self):
        assert _chunk_sizes(0, 64 * units.MiB) == [1.0]

    def test_io_stack_validation(self):
        env, fabric, s3, endpoint = make_stack()
        with pytest.raises(ValueError):
            IoStack(env, s3, endpoint, chunk_bytes=0)
        with pytest.raises(ValueError):
            IoStack(env, s3, endpoint, concurrency=0)

    def test_read_object_counts_chunk_requests(self):
        env, fabric, s3, endpoint = make_stack()
        run(env, s3.put("big", b"payload", size=150 * units.MiB))
        io = IoStack(env, s3, endpoint, chunk_bytes=64 * units.MiB)
        run(env, io.read_object("big"))
        assert io.stats.requests == 3
        assert io.stats.read_requests == 3
        assert io.stats.bytes_read == pytest.approx(150 * units.MiB)

    def test_logical_override_controls_request_count(self):
        env, fabric, s3, endpoint = make_stack()
        run(env, s3.put("obj", b"x", size=300 * units.MiB))
        io = IoStack(env, s3, endpoint, chunk_bytes=64 * units.MiB)
        # Read only a 40 MiB projection: a single range request.
        run(env, io.read_object("obj", logical_bytes=40 * units.MiB))
        assert io.stats.requests == 1

    def test_write_object_records_stats(self):
        env, fabric, s3, endpoint = make_stack()
        io = IoStack(env, s3, endpoint)
        run(env, io.write_object("out", b"data", logical_bytes=units.MiB))
        assert io.stats.write_requests == 1
        assert io.stats.bytes_written == pytest.approx(units.MiB)
        assert s3.exists("out")

    def test_throttled_chunks_are_retried_to_success(self):
        env, fabric, s3, endpoint = make_stack()
        run(env, s3.put("k", b"v", size=units.KiB))
        # Drain the partition tokens: the first attempts throttle, then
        # the bucket refills (5,500/s) and the retry succeeds.
        partition = s3.partitions.partition_for("k")
        partition.refresh_tokens(env.now)
        partition.read_tokens = 0.0
        io = IoStack(env, s3, endpoint)
        run(env, io.read_object("k", logical_bytes=units.KiB))
        assert io.stats.retried >= 1
        assert io.stats.bytes_read == pytest.approx(units.KiB)


class TestShuffle:
    def test_hash_partition_stable_and_in_range(self):
        keys = np.array([1, 2, 3, 1, 2, 3], dtype=np.int64)
        first = _hash_partition(keys, 4)
        second = _hash_partition(keys, 4)
        np.testing.assert_array_equal(first, second)
        assert first.min() >= 0 and first.max() < 4
        # Equal keys land in equal partitions.
        assert first[0] == first[3]

    def test_string_keys_supported(self):
        keys = np.array(["MAIL", "SHIP", "MAIL"], dtype=object)
        assignment = _hash_partition(keys, 8)
        assert assignment[0] == assignment[2]

    def test_write_then_read_roundtrip(self):
        env, fabric, s3, endpoint = make_stack()
        io = IoStack(env, s3, endpoint)
        batch = sample_batch(200)
        writer = ShuffleWriter(io, "q", "pipe", fragment=0,
                               partition_key="key", partitions=4)
        run(env, writer.write(batch))
        pieces = []
        for partition in range(4):
            reader = ShuffleReader(io, "q", "pipe", producer_fragments=1,
                                   partition=partition)
            pieces.append(run(env, reader.read()))
        total = sum(p.num_rows for p in pieces)
        assert total == 200
        # Each key's rows all land in one partition.
        for piece in pieces:
            for key in set(piece.column("key")):
                others = [p for p in pieces if p is not piece
                          and key in set(p.column("key"))]
                assert not others

    def test_multiple_producers_concatenate(self):
        env, fabric, s3, endpoint = make_stack()
        io = IoStack(env, s3, endpoint)
        for fragment in range(3):
            writer = ShuffleWriter(io, "q", "pipe", fragment=fragment,
                                   partition_key="key", partitions=2)
            run(env, writer.write(sample_batch(100, seed=fragment)))
        reader = ShuffleReader(io, "q", "pipe", producer_fragments=3,
                               partition=0)
        merged = run(env, reader.read())
        assert merged.num_rows > 0
        # 3 producers -> 3 slice requests (plus the 3 write requests).
        assert io.stats.read_requests == 3

    def test_empty_batch_produces_empty_partitions(self):
        env, fabric, s3, endpoint = make_stack()
        io = IoStack(env, s3, endpoint)
        schema = sample_batch(1).schema
        writer = ShuffleWriter(io, "q", "pipe", fragment=0,
                               partition_key="key", partitions=3)
        run(env, writer.write(RecordBatch.empty(schema)))
        reader = ShuffleReader(io, "q", "pipe", producer_fragments=1,
                               partition=1)
        piece = run(env, reader.read())
        assert piece.num_rows == 0

    def test_none_partition_key_routes_to_partition_zero(self):
        env, fabric, s3, endpoint = make_stack()
        io = IoStack(env, s3, endpoint)
        writer = ShuffleWriter(io, "q", "pipe", fragment=0,
                               partition_key=None, partitions=1)
        slices = writer.partition_batch(sample_batch(50))
        assert slices[0].rows == 50

    def test_invalid_parameters_rejected(self):
        env, fabric, s3, endpoint = make_stack()
        io = IoStack(env, s3, endpoint)
        with pytest.raises(ValueError):
            ShuffleWriter(io, "q", "p", 0, "key", partitions=0)
        with pytest.raises(ValueError):
            ShuffleReader(io, "q", "p", 1, 0, concurrency=0)
        reader = ShuffleReader(io, "q", "p", producer_fragments=0,
                               partition=0)
        with pytest.raises(ValueError, match="zero producers"):
            run(env, reader.read())


class TestPlans:
    def make_plan(self):
        scan = PipelineSpec(
            id="scan",
            source=TableSource(table="t", columns=["a"]),
            sink=ShuffleSink(partition_key="a"))
        final = PipelineSpec(
            id="final",
            source=ShuffleSource(inputs={"main": "scan"}, main="main"),
            sink=ResultSink(), depends_on=["scan"], fragments=1)
        return PhysicalPlan(query_id="q", pipelines=[scan, final])

    def test_serialization_roundtrip(self):
        plan = self.make_plan()
        rebuilt = PhysicalPlan.from_dict(plan.to_dict())
        assert rebuilt.to_dict() == plan.to_dict()

    def test_duplicate_pipeline_ids_rejected(self):
        scan = PipelineSpec(id="x", source=TableSource("t", ["a"]))
        with pytest.raises(ValueError, match="duplicate"):
            PhysicalPlan(query_id="q", pipelines=[scan, scan])

    def test_unknown_dependency_rejected(self):
        bad = PipelineSpec(id="x", source=TableSource("t", ["a"]),
                           depends_on=["ghost"])
        with pytest.raises(ValueError, match="unknown pipeline"):
            PhysicalPlan(query_id="q", pipelines=[bad])

    def test_stage_ordering_respects_dependencies(self):
        plan = self.make_plan()
        stages = plan.stages()
        assert [p.id for stage in stages for p in stage] == ["scan", "final"]

    def test_cycle_detected(self):
        a = PipelineSpec(id="a", source=TableSource("t", ["x"]),
                         depends_on=["b"])
        b = PipelineSpec(id="b", source=TableSource("t", ["x"]),
                         depends_on=["a"], sink=ResultSink())
        plan = PhysicalPlan.__new__(PhysicalPlan)
        plan.query_id = "q"
        plan.pipelines = [a, b]
        with pytest.raises(ValueError, match="cyclic"):
            plan.stages()

    def test_final_pipeline_uniqueness_enforced(self):
        scan = PipelineSpec(id="scan", source=TableSource("t", ["a"]),
                            sink=ResultSink())
        final = PipelineSpec(id="final", source=TableSource("t", ["a"]),
                             sink=ResultSink())
        plan = PhysicalPlan(query_id="q", pipelines=[scan, final])
        with pytest.raises(ValueError, match="exactly one"):
            _ = plan.final_pipeline

    def test_pipeline_lookup(self):
        plan = self.make_plan()
        assert plan.pipeline("scan").id == "scan"
        with pytest.raises(KeyError):
            plan.pipeline("ghost")
