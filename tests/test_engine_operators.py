"""Unit tests for expressions and vectorized operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.expressions import (
    And,
    Between,
    BinOp,
    Col,
    Compare,
    IfThenElse,
    InSet,
    Lit,
    Not,
    Or,
    expr_from_dict,
)
from repro.engine.operators import (
    AggSpec,
    FilterOperator,
    HashAggregateOperator,
    HashJoinOperator,
    LimitOperator,
    MapUdfOperator,
    ProjectOperator,
    SortOperator,
    operator_from_dict,
    register_udf,
)
from repro.formats.batch import RecordBatch
from repro.formats.schema import DataType, Field, Schema


def make_batch(**cols):
    fields = []
    arrays = {}
    for name, values in cols.items():
        array = np.asarray(values)
        if array.dtype.kind in ("U", "O"):
            dtype = DataType.STRING
            array = array.astype(object)
        elif array.dtype.kind == "f":
            dtype = DataType.FLOAT64
        else:
            dtype = DataType.INT64
            array = array.astype(np.int64)
        fields.append(Field(name, dtype))
        arrays[name] = array
    return RecordBatch(Schema(fields), arrays)


class TestExpressions:
    def test_arithmetic(self):
        batch = make_batch(a=[1.0, 2.0], b=[10.0, 20.0])
        expr = BinOp("+", BinOp("*", Col("a"), Lit(2.0)), Col("b"))
        np.testing.assert_allclose(expr.evaluate(batch), [12.0, 24.0])

    def test_compare_and_logic(self):
        batch = make_batch(x=[1, 5, 10])
        expr = And(Compare(">", Col("x"), Lit(2)),
                   Not(Compare("==", Col("x"), Lit(10))))
        np.testing.assert_array_equal(expr.evaluate(batch),
                                      [False, True, False])

    def test_or(self):
        batch = make_batch(x=[1, 5, 10])
        expr = Or(Compare("<", Col("x"), Lit(2)),
                  Compare(">", Col("x"), Lit(9)))
        np.testing.assert_array_equal(expr.evaluate(batch),
                                      [True, False, True])

    def test_between_inclusive(self):
        batch = make_batch(d=[0.04, 0.05, 0.07, 0.08])
        expr = Between(Col("d"), 0.05, 0.07)
        np.testing.assert_array_equal(expr.evaluate(batch),
                                      [False, True, True, False])

    def test_in_set_strings(self):
        batch = make_batch(mode=["MAIL", "AIR", "SHIP"])
        expr = InSet(Col("mode"), ["MAIL", "SHIP"])
        np.testing.assert_array_equal(expr.evaluate(batch),
                                      [True, False, True])

    def test_if_then_else(self):
        batch = make_batch(x=[1, 5])
        expr = IfThenElse(Compare(">", Col("x"), Lit(2)), Lit(1.0), Lit(0.0))
        np.testing.assert_allclose(expr.evaluate(batch), [0.0, 1.0])

    def test_columns_discovery(self):
        expr = And(Compare(">", Col("a"), Col("b")),
                   InSet(Col("c"), [1]))
        assert expr.columns() == {"a", "b", "c"}

    def test_serialization_roundtrip(self):
        expr = IfThenElse(
            And(Between(Col("a"), 1, 2), InSet(Col("b"), ["x"])),
            BinOp("*", Col("c"), Lit(2.0)), Lit(0.0))
        rebuilt = expr_from_dict(expr.to_dict())
        batch = make_batch(a=[1, 5], b=["x", "x"], c=[3.0, 4.0])
        np.testing.assert_allclose(rebuilt.evaluate(batch),
                                   expr.evaluate(batch))

    def test_unknown_ops_rejected(self):
        with pytest.raises(ValueError):
            BinOp("%", Col("a"), Lit(1))
        with pytest.raises(ValueError):
            Compare("~", Col("a"), Lit(1))


class TestFilterProject:
    def test_filter_keeps_matching_rows(self):
        batch = make_batch(x=[1, 2, 3, 4])
        out = FilterOperator(Compare(">", Col("x"), Lit(2))).execute(batch)
        assert list(out.column("x")) == [3, 4]

    def test_filter_empty_batch_passthrough(self):
        batch = make_batch(x=np.empty(0, dtype=np.int64))
        out = FilterOperator(Compare(">", Col("x"), Lit(0))).execute(batch)
        assert out.num_rows == 0

    def test_project_computes_columns(self):
        batch = make_batch(p=[10.0, 20.0], d=[0.1, 0.2])
        op = ProjectOperator([
            ("revenue", BinOp("*", Col("p"), Col("d")), DataType.FLOAT64)])
        out = op.execute(batch)
        np.testing.assert_allclose(out.column("revenue"), [1.0, 4.0])
        assert out.schema.names() == ["revenue"]

    def test_project_requires_outputs(self):
        with pytest.raises(ValueError):
            ProjectOperator([])


class TestAggregate:
    def test_complete_groupby_sums(self):
        batch = make_batch(k=["a", "b", "a"], v=[1.0, 2.0, 3.0])
        op = HashAggregateOperator(["k"], [AggSpec("total", "sum", Col("v"))])
        out = op.execute(batch)
        result = dict(zip(out.column("k"), out.column("total")))
        assert result == {"a": 4.0, "b": 2.0}

    def test_count_star(self):
        batch = make_batch(k=["a", "b", "a"])
        op = HashAggregateOperator(["k"], [AggSpec("n", "count")])
        out = op.execute(batch)
        result = dict(zip(out.column("k"), out.column("n")))
        assert result == {"a": 2, "b": 1}

    def test_avg_min_max(self):
        batch = make_batch(k=["a", "a", "b"], v=[1.0, 3.0, 5.0])
        op = HashAggregateOperator(["k"], [
            AggSpec("mean", "avg", Col("v")),
            AggSpec("lo", "min", Col("v")),
            AggSpec("hi", "max", Col("v"))])
        out = op.execute(batch)
        by_key = {k: (m, lo, hi) for k, m, lo, hi in zip(
            out.column("k"), out.column("mean"), out.column("lo"),
            out.column("hi"))}
        assert by_key["a"] == (2.0, 1.0, 3.0)
        assert by_key["b"] == (5.0, 5.0, 5.0)

    def test_global_aggregate_no_keys(self):
        batch = make_batch(v=[1.0, 2.0, 3.0])
        op = HashAggregateOperator([], [AggSpec("s", "sum", Col("v"))])
        out = op.execute(batch)
        assert out.num_rows == 1
        assert out.column("s")[0] == 6.0

    def test_partial_final_composition_equals_complete(self):
        """Property at the heart of distributed aggregation."""
        rng = np.random.default_rng(0)
        batch = make_batch(
            k=[f"k{i % 7}" for i in range(500)],
            v=rng.random(500))
        aggs = [AggSpec("s", "sum", Col("v")),
                AggSpec("m", "avg", Col("v")),
                AggSpec("n", "count")]
        complete = HashAggregateOperator(["k"], aggs).execute(batch)
        # Split into 3 shards, partial-aggregate each, then final-merge.
        partials = []
        for shard in range(3):
            idx = np.arange(shard, 500, 3)
            partials.append(HashAggregateOperator(
                ["k"], aggs, mode="partial").execute(batch.take(idx)))
        merged = HashAggregateOperator(["k"], aggs, mode="final").execute(
            RecordBatch.concat(partials))
        a = {k: (s, m, n) for k, s, m, n in zip(
            complete.column("k"), complete.column("s"),
            complete.column("m"), complete.column("n"))}
        b = {k: (s, m, n) for k, s, m, n in zip(
            merged.column("k"), merged.column("s"),
            merged.column("m"), merged.column("n"))}
        assert set(a) == set(b)
        for key in a:
            np.testing.assert_allclose(a[key], b[key])

    def test_invalid_func_rejected(self):
        with pytest.raises(ValueError):
            AggSpec("x", "median", Col("v"))

    def test_count_needs_no_expr_others_do(self):
        AggSpec("n", "count")  # fine
        with pytest.raises(ValueError):
            AggSpec("s", "sum")

    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6),
                           min_size=1, max_size=200),
           shards=st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_partial_final_sum_property(self, values, shards):
        batch = make_batch(k=["g"] * len(values),
                           v=np.array(values, dtype=np.float64))
        aggs = [AggSpec("s", "sum", Col("v"))]
        complete = HashAggregateOperator(["k"], aggs).execute(batch)
        partials = [
            HashAggregateOperator(["k"], aggs, mode="partial").execute(
                batch.take(np.arange(i, len(values), shards)))
            for i in range(shards)]
        partials = [p for p in partials if p.num_rows]
        merged = HashAggregateOperator(["k"], aggs, mode="final").execute(
            RecordBatch.concat(partials))
        np.testing.assert_allclose(merged.column("s")[0],
                                   complete.column("s")[0], rtol=1e-9)


class TestJoin:
    def test_inner_join_matches(self):
        probe = make_batch(l_orderkey=[1, 2, 3, 2], mode=["A", "B", "C", "D"])
        build = make_batch(o_orderkey=[2, 3], prio=["HIGH", "LOW"])
        op = HashJoinOperator(probe_key="l_orderkey", build_side="orders",
                              build_key="o_orderkey")
        out = op.execute(probe, {"orders": build})
        rows = sorted(zip(out.column("l_orderkey"), out.column("mode"),
                          out.column("prio")))
        assert rows == [(2, "B", "HIGH"), (2, "D", "HIGH"), (3, "C", "LOW")]

    def test_join_without_side_raises(self):
        probe = make_batch(k=[1])
        op = HashJoinOperator("k", "missing", "k")
        with pytest.raises(ValueError, match="side input"):
            op.execute(probe, {})

    def test_join_duplicate_build_keys_multiply(self):
        probe = make_batch(k=[1])
        build = make_batch(bk=[1, 1], tag=["x", "y"])
        op = HashJoinOperator("k", "b", "bk")
        out = op.execute(probe, {"b": build})
        assert sorted(out.column("tag")) == ["x", "y"]


class TestSortLimit:
    def test_multi_key_sort(self):
        batch = make_batch(a=["b", "a", "a"], b=[1, 2, 1])
        out = SortOperator(["a", "b"]).execute(batch)
        assert list(zip(out.column("a"), out.column("b"))) == [
            ("a", 1), ("a", 2), ("b", 1)]

    def test_descending_numeric(self):
        batch = make_batch(v=[1, 3, 2])
        out = SortOperator(["v"], ascending=[False]).execute(batch)
        assert list(out.column("v")) == [3, 2, 1]

    def test_descending_strings(self):
        batch = make_batch(s=["a", "c", "b"])
        out = SortOperator(["s"], ascending=[False]).execute(batch)
        assert list(out.column("s")) == ["c", "b", "a"]

    def test_limit(self):
        batch = make_batch(v=[1, 2, 3])
        assert LimitOperator(2).execute(batch).num_rows == 2
        assert LimitOperator(10).execute(batch).num_rows == 3

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            LimitOperator(-1)


class TestUdf:
    def test_registered_udf_applies(self):
        def double(batch, sides):
            return batch.with_columns(
                {"y": (DataType.INT64, batch.column("x") * 2)})

        register_udf("test-double", double)
        batch = make_batch(x=[1, 2])
        out = MapUdfOperator("test-double").execute(batch)
        assert list(out.column("y")) == [2, 4]

    def test_unknown_udf_raises(self):
        with pytest.raises(KeyError, match="not registered"):
            MapUdfOperator("ghost").execute(make_batch(x=[1]))


class TestOperatorSerialization:
    @pytest.mark.parametrize("operator", [
        FilterOperator(Compare(">", Col("x"), Lit(1))),
        ProjectOperator([("y", BinOp("*", Col("x"), Lit(2.0)),
                          DataType.FLOAT64)]),
        HashAggregateOperator(["k"], [AggSpec("s", "sum", Col("x"))],
                              mode="partial"),
        HashJoinOperator("a", "side", "b"),
        SortOperator(["x"], ascending=[False]),
        LimitOperator(5),
        MapUdfOperator("some-udf"),
    ])
    def test_roundtrip(self, operator):
        rebuilt = operator_from_dict(operator.to_dict())
        assert rebuilt.to_dict() == operator.to_dict()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            operator_from_dict({"kind": "mystery"})
