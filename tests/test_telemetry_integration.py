"""End-to-end telemetry: cross-layer traces on real queries.

Covers the acceptance bar of the unified-telemetry PR: a traced TPC-H
Q12 run produces worker spans that nest storage/network child spans, a
metrics snapshot carrying shaper token-level and per-prefix IOPS time
series, and — with telemetry off (the default) — results byte-identical
to an instrumented-but-disabled run.
"""

import dataclasses
import functools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import CloudSim
from repro.engine.tracing import QueryTrace, WorkerSpan, hedge_candidates
from repro.serve.gateway import QueryGateway, Tenant
from repro.sim import Environment
from repro.telemetry import (
    chrome_trace,
    metrics_snapshot,
    recording,
    validate_chrome_trace,
)
from repro.workloads.suite import SuiteSetup, build_plan, setup_engine


def _fingerprint(result) -> dict:
    """Deterministic, comparable digest of a QueryResult."""
    digest = dataclasses.asdict(result)
    digest["batch"] = result.batch.to_pydict()
    return digest


def _run_query(query: str, seed: int = 7, record: bool = False):
    if record:
        with recording() as recorder:
            result = _run_query(query, seed=seed, record=False)[0]
        return result, recorder
    sim = CloudSim(seed=seed)
    setup = SuiteSetup(queries=(query,), lineitem_partitions=3,
                       orders_partitions=2, rows_per_partition=96)
    engine = setup_engine(sim, setup)
    return sim.run(engine.run_query(build_plan(query))), None


@functools.lru_cache(maxsize=1)
def _traced_q12():
    return _run_query("tpch-q12", record=True)


# -- span hierarchy -----------------------------------------------------------

def test_q12_worker_spans_nest_storage_children():
    _, recorder = _traced_q12()
    workers = [s for s in recorder.spans if s.category == "worker"]
    assert workers, "no worker spans recorded"
    nested = [child for worker in workers
              for child in recorder.children_of(worker)]
    storage_children = [s for s in nested if s.category == "storage"]
    assert storage_children, "worker spans have no storage children"
    phase_children = [s for s in nested if s.category == "phase"]
    assert phase_children, "worker spans have no phase children"
    # Child intervals stay inside their worker span.
    by_id = {s.span_id: s for s in recorder.spans}
    for child in storage_children:
        worker = by_id[child.parent_id]
        assert worker.start <= child.start
        assert child.end <= worker.end + 1e-9


def test_q12_trace_has_full_layer_coverage():
    _, recorder = _traced_q12()
    categories = {span.category for span in recorder.spans}
    assert {"query", "faas", "coordinator", "stage", "worker", "storage",
            "phase", "operator"} <= categories
    # Invoke spans carry sandbox temperature children.
    starts = [s for s in recorder.spans
              if s.name in ("coldstart", "warmstart")]
    assert starts, "no sandbox startup spans recorded"


def test_q12_spans_share_one_trace():
    _, recorder = _traced_q12()
    assert len(recorder.traces()) == 1
    root = recorder.spans[0]
    assert root.category == "query"
    assert root.parent_id is None
    assert root.finished
    assert root.attrs["query_id"] == "tpch-q12"


def test_q12_chrome_trace_validates():
    _, recorder = _traced_q12()
    counts = validate_chrome_trace(chrome_trace(recorder))
    assert counts["X"] == len(recorder.spans)


# -- metrics coverage ---------------------------------------------------------

def test_q12_snapshot_has_shaper_and_prefix_iops_series():
    _, recorder = _traced_q12()
    snapshot = metrics_snapshot(recorder)
    level_series = [name for name, body in snapshot["series"].items()
                    if name.startswith("shaper.") and name.endswith(".level")
                    and body["points"]]
    assert level_series, "no shaper token-level series with samples"
    iops_series = [name for name, body in snapshot["series"].items()
                   if name.endswith(".read_iops") and body["points"]]
    assert iops_series, "no per-prefix read-IOPS series with samples"
    assert snapshot["counters"]["sim.events_processed"] > 0
    assert snapshot["counters"]["lambda.cold_starts"] > 0
    assert snapshot["gauges"]["lambda.concurrent"]["peak"] >= 1


def test_q12_storage_admission_counters():
    _, recorder = _traced_q12()
    counters = recorder.metrics.counters
    assert counters["storage.s3-standard.get.ok"].value > 0
    assert counters["storage.s3-standard.prefix.read.admitted"].value > 0


# -- determinism neutrality ---------------------------------------------------

@settings(max_examples=4, deadline=None)
@given(st.integers(min_value=0, max_value=99))
def test_telemetry_is_determinism_neutral(seed):
    """Property: identical QueryResults with telemetry on vs. off."""
    on, _ = _run_query("tpch-q6", seed=seed, record=True)
    off, _ = _run_query("tpch-q6", seed=seed, record=False)
    assert _fingerprint(on) == _fingerprint(off)


def test_q12_determinism_neutral_single_seed():
    on, _ = _traced_q12()
    off, _ = _run_query("tpch-q12", seed=7, record=False)
    assert _fingerprint(on) == _fingerprint(off)


# -- serving layer ------------------------------------------------------------

def test_gateway_shed_emits_telemetry():
    with recording() as recorder:
        env = Environment()
        gateway = QueryGateway(env)
        gateway.register(Tenant(name="batch", max_queue_depth=1))
        assert gateway.submit("batch", plan=None) is not None
        assert gateway.submit("batch", plan=None) is None  # shed
    assert recorder.metrics.counters["gateway.shed"].value == 1
    sheds = [e for e in recorder.events if e["name"] == "gateway.shed"]
    assert sheds[0]["tenant"] == "batch"
    assert sheds[0]["queue_depth"] == 1
    depth = recorder.metrics.series["gateway.queue_depth"]
    assert depth.last == 1.0


def test_gateway_depth_gauge_tracks_pop():
    with recording() as recorder:
        env = Environment()
        gateway = QueryGateway(env)
        gateway.register(Tenant(name="t"))
        gateway.submit("t", plan=None)
        gateway.submit("t", plan=None)
        gateway.pop("t")
    gauge = recorder.metrics.gauges["gateway.queue_depth"]
    assert gauge.value == 1.0
    assert gauge.peak == 2.0


# -- recovery telemetry (satellite: hedge decisions as events) ---------------

def test_hedge_candidates_recorded_as_event():
    with recording() as recorder:
        candidates = hedge_candidates(
            {1: 10.0, 2: 0.1}, [0.5, 0.6, 0.7], total=4,
            now=12.0, pipeline="scan")
    assert candidates == [1]
    events = [e for e in recorder.events if e["name"] == "hedge.candidates"]
    assert len(events) == 1
    assert events[0]["pipeline"] == "scan"
    assert events[0]["fragments"] == [1]
    assert events[0]["completed"] == 3 and events[0]["total"] == 4


def test_hedge_candidates_silent_without_now_or_recorder():
    # No recorder: plain behaviour.
    assert hedge_candidates({1: 10.0}, [0.5, 0.6], total=2) == [1]
    with recording() as recorder:
        # Recorder on but no clock passed: no event either.
        assert hedge_candidates({1: 10.0}, [0.5, 0.6], total=2) == [1]
    assert recorder.events == []


# -- gantt markers (satellite: attempt/hedged rendering) ----------------------

def _markers(gantt: str) -> dict[int, str]:
    out = {}
    for line in gantt.splitlines():
        parts = line.split()
        if len(parts) >= 3 and parts[0].isdigit():
            out[int(parts[0])] = parts[1]
    return out


def test_render_gantt_marks_retries_and_hedges():
    trace = QueryTrace(query_id="q", spans=[
        WorkerSpan("scan", 0, 0.0, 0.5, 1.0, cold=False),
        WorkerSpan("scan", 1, 0.0, 0.5, 1.2, cold=True),
        WorkerSpan("scan", 2, 0.2, 0.6, 1.5, cold=True, attempt=1),
        WorkerSpan("scan", 3, 0.3, 0.7, 1.4, cold=False, attempt=1,
                   hedged=True),
    ])
    markers = _markers(trace.render_gantt())
    assert markers == {0: "w", 1: "C", 2: "r", 3: "h"}
