"""Tests for the coordinator's recovery layer under fault injection."""

import numpy as np
import pytest

from repro.chaos import WorkerCrash
from repro.chaos.runner import run_chaos_suite
from repro.core import CloudSim
from repro.datagen import load_table, scaled_spec
from repro.engine import SkyriseEngine
from repro.engine.coordinator import FragmentFailure, RecoveryConfig
from repro.engine.io import IoStack
from repro.engine.queries import tpch_q6
from repro.engine.shuffle import ShuffleWriter
from repro.formats.batch import RecordBatch
from repro.formats.schema import DataType, Field, Schema
from repro.network import Fabric
from repro.sim import Environment, RandomStreams
from repro.storage import S3Standard
from repro.storage.base import RequestType
from repro.storage.errors import NoSuchKey


class TestFragmentFailure:
    def test_carries_fragment_identity(self):
        cause = WorkerCrash("injected worker crash")
        failure = FragmentFailure("scan", 3, 2, cause)
        assert failure.pipeline == "scan"
        assert failure.fragment == 3
        assert failure.attempts == 2
        assert failure.cause is cause
        assert "scan/3" in str(failure)
        assert "2 attempt(s)" in str(failure)


class TestRecoveryUnderDemoOutage:
    """The acceptance scenario: the retry-free engine dies, the
    recovery layer survives with measurable retries and hedge wins."""

    def test_retry_free_engine_fails_with_named_fragments(self):
        report = run_chaos_suite(
            "demo-outage", repeats=2, seed=0, baseline=False,
            recovery=RecoveryConfig(max_attempts=1, hedge_enabled=False))
        assert report.unrecovered >= 1
        failures = [o for o in report.outcomes if not o.ok]
        for outcome in failures:
            # Concurrent fragment failures keep their identity instead
            # of collapsing into one anonymous invoker error.
            assert outcome.error.startswith("FragmentFailure: fragment ")
            assert "scan/" in outcome.error
            assert "1 attempt(s)" in outcome.error

    def test_recovery_layer_absorbs_the_same_plan(self):
        report = run_chaos_suite("demo-outage", repeats=2, seed=0)
        assert report.goodput == 1.0
        assert report.unrecovered == 0
        assert report.total_retries >= 1
        assert report.recovered >= 1
        # Hedge wins are counted separately from retries.
        assert report.total_hedges >= report.total_hedge_wins >= 1
        retried = [o for o in report.outcomes if o.retries or o.hedges]
        assert retried
        for outcome in retried:
            # Retried/hedged attempts are billed: itemized, and
            # *included in* the query cost, not added on top.
            assert outcome.retry_cost_cents > 0
            assert outcome.retry_cost_cents < outcome.cost_cents
        # The baseline pass populates the overhead columns: recovery
        # costs extra runtime and extra cents versus fault-free.
        assert report.total_recovery_latency_s > 0
        assert report.total_cost_overhead_cents > 0
        assert report.fault_counts.get("worker_crash", 0) >= 1

    def test_report_tracks_injected_faults(self):
        report = run_chaos_suite("demo-outage", repeats=2, seed=0,
                                 baseline=False)
        assert sum(report.fault_counts.values()) == len(
            report.fault_timeline) + report.dropped_fault_events
        for event in report.fault_timeline:
            assert event["kind"] in report.fault_counts


class TestNonRetryableErrors:
    def test_missing_partition_propagates_unchanged(self):
        """Application errors (NoSuchKey) bypass the retry machinery."""
        sim = CloudSim(seed=41)
        s3 = sim.s3()
        metadata = sim.run(load_table(
            sim.env, s3, scaled_spec("lineitem", 4, rows_per_partition=128)))
        engine = SkyriseEngine(sim.env, sim.platform,
                               storage={"s3-standard": s3},
                               recovery=RecoveryConfig(max_attempts=3))
        engine.register_table(metadata)
        engine.deploy()
        victim = engine.catalog["lineitem"].partitions[2].key
        s3.delete(victim)

        def scenario(env):
            try:
                yield from engine.run_query(tpch_q6(scan_fragments=4))
            except FragmentFailure as exc:  # pragma: no cover - regression
                return ("WRAPPED", str(exc))
            except NoSuchKey as exc:
                return ("RAW", str(exc))

        kind, message = sim.run(sim.env.process(scenario(sim.env)))
        # Raised as-is — not retried into a FragmentFailure — and still
        # naming the missing key.
        assert kind == "RAW"
        assert victim in message


class TestIdempotentShuffleWrites:
    @pytest.fixture
    def stack(self):
        env = Environment()
        fabric = Fabric(env)
        rng = RandomStreams(seed=3)
        s3 = S3Standard(env, fabric, rng)
        io = IoStack(env, s3, fabric.endpoint("worker-0"))
        return env, s3, io

    def run(self, env, gen):
        proc = env.process(gen)
        env.run(until=proc)
        return proc.value

    def batch(self):
        return RecordBatch(Schema([Field("a", DataType.INT64)]),
                           {"a": np.arange(16, dtype=np.int64)})

    def writer(self, io, epoch, combine=True):
        return ShuffleWriter(io, "q", "scan", fragment=0, partition_key="a",
                             partitions=2, combine=combine, epoch=epoch)

    def test_same_epoch_rewrite_is_skipped(self, stack):
        env, s3, io = stack
        first = self.run(env, self.writer(io, epoch=1).write(self.batch()))
        puts = s3.stats.total(RequestType.PUT)
        assert puts >= 1
        # A retried/hedged attempt carries the same epoch: the object is
        # already committed, so the write is a free metadata check.
        again = self.run(env, self.writer(io, epoch=1).write(self.batch()))
        assert s3.stats.total(RequestType.PUT) == puts
        assert again["epoch"] == first["epoch"] == 1

    def test_new_epoch_overwrites(self, stack):
        env, s3, io = stack
        self.run(env, self.writer(io, epoch=1).write(self.batch()))
        puts = s3.stats.total(RequestType.PUT)
        # A fresh execution of the same plan bumps the epoch and must
        # not read the previous run's output as its own.
        result = self.run(env, self.writer(io, epoch=2).write(self.batch()))
        assert s3.stats.total(RequestType.PUT) > puts
        assert result["epoch"] == 2

    def test_uncombined_index_is_the_commit_record(self, stack):
        env, s3, io = stack
        writer = self.writer(io, epoch=1, combine=False)
        index = self.run(env, writer.write(self.batch()))
        assert index["epoch"] == 1 and index["combined"] is False
        assert s3.exists(writer.key)
        assert s3.exists(f"{writer.key}/p-00000")
        puts = s3.stats.total(RequestType.PUT)
        self.run(env, self.writer(io, epoch=1, combine=False)
                 .write(self.batch()))
        assert s3.stats.total(RequestType.PUT) == puts
