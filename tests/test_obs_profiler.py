"""Resource-attribution profiler: span folds, shares, and stage costs."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from test_telemetry_export import record_q6  # noqa: E402

from repro.obs.profiler import PROFILE_SCHEMA, profile_recorder, profile_spans
from repro.pricing.calculator import stage_cost
from repro.telemetry import canonical_json
from repro.telemetry.spans import Span
from repro import units


def _span(trace, span_id, parent, name, category, start, end, **attrs):
    span = Span(trace_id=trace, span_id=span_id, parent_id=parent,
                name=name, category=category, start=start)
    span.finish(end, **attrs)
    return span


def _synthetic_stage():
    """One stage, one worker: 6s of worker time, fully attributed.

    scan 2s (storage_wait) + compute 3s + write 1s (storage_wait),
    plus a 0.5s coldstart under the stage's invoke.
    """
    return [
        _span("q0", 1, None, "stage scan-0", "stage", 0.0, 7.0,
              pipeline="scan-0"),
        _span("q0", 2, 1, "invoke scan-0/0", "faas", 0.0, 7.0,
              memory_mb=1792.0),
        _span("q0", 3, 2, "coldstart", "faas", 0.0, 0.5),
        _span("q0", 4, 2, "worker scan-0/0", "worker", 0.5, 6.5,
              bytes_read=int(8 * units.MiB),
              bytes_written=int(2 * units.MiB), rows_out=1000),
        _span("q0", 5, 4, "phase scan", "phase", 0.5, 2.5),
        _span("q0", 6, 4, "phase compute", "phase", 2.5, 5.5),
        _span("q0", 7, 4, "phase write", "phase", 5.5, 6.5),
        _span("q0", 8, 5, "storage.read", "storage", 0.5, 2.5,
              service="s3-standard", bytes=int(8 * units.MiB), chunks=2),
        _span("q0", 9, 7, "storage.write", "storage", 5.5, 6.5,
              service="s3-standard", bytes=int(2 * units.MiB)),
        _span("q0", 10, 6, "filter", "operator", 2.5, 5.5, rows_out=1000),
    ]


class TestSyntheticStage:
    def test_fold_shape(self):
        feed = profile_spans(_synthetic_stage())
        assert feed["schema"] == PROFILE_SCHEMA
        assert feed["stage_count"] == 1
        profile = feed["queries"]["q0"]["stages"]["scan-0"]
        assert profile["workers"] == 1
        assert profile["worker_s"] == pytest.approx(6.0)
        assert profile["wall_s"] == pytest.approx(7.0)
        assert profile["rows_out"] == 1000
        assert profile["cold_starts"] == 1
        assert profile["startup_s"] == pytest.approx(0.5)

    def test_phase_shares(self):
        profile = profile_spans(_synthetic_stage())[
            "queries"]["q0"]["stages"]["scan-0"]
        # Attributed = 2 + 3 + 1 + 0.5 startup = 6.5 > worker_s 6.0,
        # so the denominator is 6.5 and "other" collapses to zero.
        shares = profile["shares"]
        assert shares["compute"] == pytest.approx(3.0 / 6.5, abs=1e-6)
        assert shares["storage_wait"] == pytest.approx(3.0 / 6.5, abs=1e-6)
        assert shares["startup"] == pytest.approx(0.5 / 6.5, abs=1e-6)
        assert shares["other"] == pytest.approx(0.0, abs=1e-6)
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-6)

    def test_storage_accounting(self):
        profile = profile_spans(_synthetic_stage())[
            "queries"]["q0"]["stages"]["scan-0"]
        s3 = profile["storage"]["s3-standard"]
        assert s3["reads"] == 2  # chunks attr
        assert s3["writes"] == 1  # chunks defaults to 1
        assert s3["read_bytes"] == int(8 * units.MiB)
        assert s3["wait_s"] == pytest.approx(3.0)

    def test_cost_matches_stage_cost(self):
        profile = profile_spans(_synthetic_stage())[
            "queries"]["q0"]["stages"]["scan-0"]
        expected = stage_cost(
            [(1792.0 * units.MiB, 7.0)],
            {"s3-standard": (2, int(8 * units.MiB))},
            {"s3-standard": (1, int(2 * units.MiB))})
        for key in ("compute_usd", "storage_usd", "total_usd"):
            assert profile["cost"][key] == pytest.approx(expected[key],
                                                         rel=1e-6)
        assert profile["cost"]["total_usd"] > 0

    def test_operators_folded(self):
        profile = profile_spans(_synthetic_stage())[
            "queries"]["q0"]["stages"]["scan-0"]
        assert profile["operators"]["filter"]["n"] == 1
        assert profile["operators"]["filter"]["rows_out"] == 1000

    def test_non_stage_traces_contribute_nothing(self):
        spans = [_span("j0", 1, None, "job map", "futures", 0.0, 5.0)]
        feed = profile_spans(spans)
        assert feed["queries"] == {}
        assert feed["cost"]["total_usd"] == 0.0


class TestRealTrace:
    def test_q6_profile(self):
        """The recorded TPC-H Q6 trace folds into a costed profile."""
        _, recorder = record_q6()
        feed = profile_recorder(recorder)
        assert feed["schema"] == PROFILE_SCHEMA
        assert feed["stage_count"] >= 1
        (query,) = feed["queries"]
        stages = feed["queries"][query]["stages"]
        for profile in stages.values():
            assert profile["workers"] >= 1
            assert 0.0 <= sum(profile["shares"].values()) <= 1.0 + 1e-6
        assert feed["cost"]["compute_usd"] > 0
        assert feed["cost"]["total_usd"] >= feed["cost"]["compute_usd"]

    def test_q6_profile_is_deterministic(self):
        _, first = record_q6()
        _, second = record_q6()
        assert canonical_json(profile_recorder(first)) == \
            canonical_json(profile_recorder(second))
