"""Partition-directory tests: epochs, routes, and the stale-route fence."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.gateway import QueryGateway, StaleEpoch, Tenant
from repro.shard.directory import PartitionDirectory

TENANTS = [f"t{i}" for i in range(200)]


class _Clock:
    now = 0.0


def lazy_gateway(shard):
    return QueryGateway(
        _Clock(), shard_id=shard,
        default_tenant=Tenant(name="__default__",
                              max_queue_depth=math.inf))


class TestEpochs:
    def test_every_mutation_bumps_the_global_epoch_once(self):
        directory = PartitionDirectory(shards=3)
        epoch = directory.epoch
        directory.add_shard()
        assert directory.epoch == epoch + 1
        new = directory.split_shard(directory.shards()[0])
        assert directory.epoch == epoch + 2
        directory.merge_shard(new, directory.shards()[0])
        assert directory.epoch == epoch + 3
        directory.fail_shard(directory.shards()[-1])
        assert directory.epoch == epoch + 4

    def test_split_advances_both_halves(self):
        directory = PartitionDirectory(shards=2)
        hot = directory.shards()[0]
        cold = directory.shards()[1]
        cold_epoch = directory.shard_epoch(cold)
        new = directory.split_shard(hot)
        assert directory.shard_epoch(hot) == directory.epoch
        assert directory.shard_epoch(new) == directory.epoch
        # The untouched shard's fence did not move.
        assert directory.shard_epoch(cold) == cold_epoch

    def test_locate_embeds_the_shards_current_epoch(self):
        directory = PartitionDirectory(shards=3)
        for tenant in TENANTS:
            route = directory.locate(tenant)
            assert route.shard in directory.shards()
            assert route.epoch == directory.shard_epoch(route.shard)

    def test_fail_shard_bumps_the_heirs(self):
        directory = PartitionDirectory(shards=4)
        dead = directory.shards()[1]
        heirs = directory.fail_shard(dead)
        assert heirs and dead not in directory.shards()
        for heir in heirs:
            assert directory.shard_epoch(heir) == directory.epoch

    def test_pin_and_unpin_override_the_ring(self):
        directory = PartitionDirectory(shards=3)
        tenant = "t-pinned"
        natural = directory.locate(tenant).shard
        other = next(shard for shard in directory.shards()
                     if shard != natural)
        directory.pin(tenant, other)
        assert directory.locate(tenant).shard == other
        directory.unpin(tenant)
        assert directory.locate(tenant).shard == natural
        with pytest.raises(KeyError):
            directory.pin(tenant, "no-such-shard")

    def test_merge_rewrites_pins_and_failure_releases_them(self):
        directory = PartitionDirectory(shards=3)
        a, b, c = directory.shards()
        directory.pin("t-a", a)
        directory.merge_shard(a, b)
        assert directory.locate("t-a").shard == b
        directory.pin("t-b", b)
        directory.fail_shard(b)
        assert directory.locate("t-b").shard in directory.shards()
        assert "t-b" not in directory.overrides()


class TestStaleRouteFence:
    @given(ops=st.lists(st.sampled_from(["add", "split", "merge", "fail"]),
                        min_size=1, max_size=8),
           tenant_id=st.integers(min_value=0, max_value=9999))
    @settings(max_examples=40, deadline=None)
    def test_mutated_shards_fence_out_pre_mutation_routes(self, ops,
                                                          tenant_id):
        """Any mutation sequence: a route whose shard's epoch moved is
        rejected by the fence, and a freshly located route is admitted."""
        directory = PartitionDirectory(shards=3)
        gateways = {shard: lazy_gateway(shard)
                    for shard in directory.shards()}
        tenant = f"t{tenant_id}"
        stale = directory.locate(tenant)

        for op in ops:
            shards = directory.shards()
            if op == "add":
                gateways[directory.add_shard()] = None
            elif op == "split":
                gateways[directory.split_shard(shards[0])] = None
            elif op == "merge" and len(shards) > 1:
                directory.merge_shard(shards[0], shards[1])
            elif op == "fail" and len(shards) > 1:
                directory.fail_shard(shards[-1])
        for shard in directory.shards():
            if gateways.get(shard) is None:
                gateways[shard] = lazy_gateway(shard)
            gateways[shard].epoch = directory.shard_epoch(shard)

        if stale.shard in directory.shards() \
                and directory.shard_epoch(stale.shard) != stale.epoch:
            with pytest.raises(StaleEpoch):
                gateways[stale.shard].submit(tenant, 1.0,
                                             epoch=stale.epoch)
            assert gateways[stale.shard].stale_rejections == 1

        fresh = directory.locate(tenant)
        request = gateways[fresh.shard].submit(tenant, 1.0,
                                               epoch=fresh.epoch)
        assert request is not None
