"""Tests for the unit constants and formatting helpers."""

import pytest

from repro import units


class TestConstants:
    def test_binary_units(self):
        assert units.KiB == 1024
        assert units.MiB == 1024 ** 2
        assert units.GiB == 1024 ** 3

    def test_gbps_is_decimal_bits(self):
        assert units.Gbps == pytest.approx(125_000_000.0)

    def test_time_units(self):
        assert units.HOUR == 3600
        assert units.DAY == 24 * units.HOUR
        assert units.MONTH == 30 * units.DAY


class TestConversions:
    def test_gib_per_s(self):
        assert units.gib_per_s(2 * units.GiB) == pytest.approx(2.0)

    def test_mib_per_s(self):
        assert units.mib_per_s(75 * units.MiB) == pytest.approx(75.0)


class TestFormatting:
    @pytest.mark.parametrize("value,expected", [
        (512, "512 B"),
        (4 * units.KiB, "4.0 KiB"),
        (182.4 * units.MiB, "182.4 MiB"),
        (2 * units.GiB, "2.0 GiB"),
        (3 * units.TiB, "3.0 TiB"),
    ])
    def test_fmt_bytes(self, value, expected):
        assert units.fmt_bytes(value) == expected

    @pytest.mark.parametrize("value,expected", [
        (38, "38s"),
        (27 * 60, "27min"),
        (23 * units.HOUR, "23h"),
        (59 * units.DAY, "59d"),
    ])
    def test_fmt_duration(self, value, expected):
        assert units.fmt_duration(value) == expected
