"""Tests for the retrying storage client."""

import pytest

from repro.network import Fabric
from repro.sim import Environment, RandomStreams
from repro.storage import DynamoDB, RetryingClient, RetryPolicy, S3Standard
from repro.storage.dynamodb import DDB_MAX_ITEM_SIZE
from repro.storage.errors import ItemTooLarge, NoSuchKey, RequestTimeout


@pytest.fixture
def stack():
    env = Environment()
    fabric = Fabric(env)
    rng = RandomStreams(seed=7)
    s3 = S3Standard(env, fabric, rng)
    return env, fabric, rng, s3


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_multiplier=2.0)
        assert policy.backoff(1) == pytest.approx(0.05)
        assert policy.backoff(2) == pytest.approx(0.10)
        assert policy.backoff(3) == pytest.approx(0.20)

    def test_backoff_capped(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_multiplier=10.0,
                             backoff_cap=5.0)
        assert policy.backoff(4) == 5.0


class TestRetryingClient:
    def test_successful_get(self, stack):
        env, fabric, rng, s3 = stack
        run(env, s3.put("k", b"v"))
        client = RetryingClient(env, s3, RetryPolicy(request_timeout=60.0))
        obj = run(env, client.get("k"))
        assert obj.payload == b"v"
        assert client.stats.successes == 1
        assert client.stats.attempts == 1

    def test_non_retryable_error_propagates(self, stack):
        env, fabric, rng, s3 = stack
        client = RetryingClient(env, s3, RetryPolicy(request_timeout=60.0))

        def attempt(env):
            try:
                yield from client.get("missing")
            except NoSuchKey:
                return "missing"

        assert run(env, attempt(env)) == "missing"
        assert client.stats.attempts == 1

    def test_timeout_triggers_retry_with_backoff(self, stack):
        env, fabric, rng, s3 = stack
        run(env, s3.put("k", b"v"))
        # Impossible timeout: every attempt times out, then gives up.
        policy = RetryPolicy(request_timeout=1e-6, max_attempts=3,
                             backoff_base=0.1)
        client = RetryingClient(env, s3, policy)

        def attempt(env):
            try:
                yield from client.get("k")
            except RequestTimeout:
                return "gave-up"

        assert run(env, attempt(env)) == "gave-up"
        assert client.stats.attempts == 3
        assert client.stats.timeouts == 3
        assert client.stats.giveups == 1
        # Backoff waits of 0.1 + 0.2 elapsed between the three attempts.
        assert client.stats.backoff_time == pytest.approx(0.3)
        assert env.now >= 0.3

    def test_throttle_retried_until_tokens_refill(self, stack):
        env, fabric, rng, s3 = stack
        run(env, s3.put("k", b"v"))
        # Drain the partition's read tokens so the first attempt throttles.
        partition = s3.partitions.partition_for("k")
        partition.refresh_tokens(env.now)
        partition.read_tokens = 0.0
        client = RetryingClient(
            env, s3, RetryPolicy(request_timeout=60.0, backoff_base=0.05))
        obj = run(env, client.get("k"))
        assert obj.payload == b"v"
        assert client.stats.throttles >= 1
        assert client.stats.successes == 1

    def test_put_roundtrip_through_client(self, stack):
        env, fabric, rng, s3 = stack
        client = RetryingClient(env, s3, RetryPolicy(request_timeout=60.0))
        run(env, client.put("new-key", b"payload"))
        assert s3.head("new-key").payload == b"payload"


class TestNonRetryableErrorsBurnNothing:
    """Application errors must fail fast: exactly one attempt, zero
    backoff — retrying a missing key or an oversized item cannot
    succeed, it only wastes the retry budget."""

    def test_no_such_key_not_retried_and_no_backoff(self, stack):
        env, fabric, rng, s3 = stack
        client = RetryingClient(
            env, s3, RetryPolicy(request_timeout=60.0, max_attempts=8))

        def attempt(env):
            try:
                yield from client.get("missing")
            except NoSuchKey as exc:
                return exc

        error = run(env, attempt(env))
        assert isinstance(error, NoSuchKey)
        assert "missing" in str(error)
        assert client.stats.attempts == 1
        assert client.stats.backoff_time == 0.0
        assert client.stats.throttles == 0
        assert client.stats.timeouts == 0

    def test_item_too_large_not_retried_and_no_backoff(self):
        env = Environment()
        fabric = Fabric(env)
        rng = RandomStreams(seed=7)
        ddb = DynamoDB(env, fabric, rng)
        client = RetryingClient(
            env, ddb, RetryPolicy(request_timeout=60.0, max_attempts=8))
        oversized = b"x" * (int(DDB_MAX_ITEM_SIZE) + 1)

        def attempt(env):
            try:
                yield from client.put("big", oversized)
            except ItemTooLarge as exc:
                return exc

        error = run(env, attempt(env))
        assert isinstance(error, ItemTooLarge)
        assert client.stats.attempts == 1
        assert client.stats.backoff_time == 0.0
        assert client.stats.giveups == 0
