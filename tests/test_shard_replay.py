"""Replay tests: determinism, conservation, failure recovery, O(1) proof."""

import pytest

from repro.shard import ReplayConfig, run_replay, run_unsharded_replay
from repro.shard.replay import ScanGuard

SMALL = ReplayConfig(tenants=5_000, events=8_000, window_s=240.0,
                     shards=3, slots_per_shard=2,
                     max_pending_per_shard=256, tenant_queue_depth=8,
                     control_interval_s=30.0, max_shards=6,
                     fail_at=(60.0,), fault_plan="shard-failure")


@pytest.fixture(scope="module")
def outcome():
    return run_replay(SMALL)


class TestDeterminism:
    def test_same_seed_runs_are_byte_identical(self, outcome):
        again = run_replay(SMALL)
        assert outcome.digest() == again.digest()
        assert outcome.to_dict() == again.to_dict()

    def test_seed_changes_the_outcome(self, outcome):
        other = run_replay(ReplayConfig(**{
            **SMALL.__dict__, "seed": SMALL.seed + 1}))
        assert other.digest() != outcome.digest()


class TestConservation:
    def test_roll_up_reconciles_after_quiesce(self, outcome):
        report = outcome.report
        assert report["balanced"]
        assert report["pending"] == 0
        assert report["offered"] == report["completed"] + report["shed"] \
            + report["failed"]

    def test_trace_covers_every_tenant(self, outcome):
        assert outcome.distinct_tenants == SMALL.tenants
        assert outcome.events == SMALL.events

    def test_shard_failures_fire_and_recover(self, outcome):
        """Both failure paths (explicit fail_at + the chaos plan) kill a
        shard, and the victims' backlogs are re-homed, not dropped."""
        assert outcome.failures_injected >= 1
        assert outcome.recovered > 0
        assert outcome.report["recovered"] >= outcome.recovered

    def test_hot_path_never_walks_tenant_state(self, outcome):
        assert outcome.full_scans == 0

    def test_rebalances_are_recorded_with_stable_keys(self, outcome):
        for row in outcome.rebalances:
            assert row["action"] in ("split", "merge")
            assert row["moved"] >= 0


class TestUnshardedBaseline:
    def test_monolithic_replay_conserves_queries(self):
        report = run_unsharded_replay(SMALL)
        assert report["offered"] == SMALL.events
        assert report["offered"] == report["completed"] + report["shed"]
        assert report["p50"] <= report["p99"]

    def test_sharded_and_unsharded_see_the_same_trace(self, outcome):
        """Same seed -> same arrivals: offered totals agree."""
        report = run_unsharded_replay(SMALL)
        assert outcome.report["offered"] == report["offered"]


class TestScanGuard:
    def test_keyed_access_stays_free(self):
        guard = ScanGuard({"a": 1, "b": 2})
        assert guard["a"] == 1
        assert guard.get("c") is None
        assert "b" in guard
        assert len(guard) == 2
        assert guard.full_scans == 0

    def test_python_level_walks_are_counted(self):
        guard = ScanGuard({"a": 1, "b": 2})
        list(guard)
        list(guard.keys())
        list(guard.values())
        list(guard.items())
        assert guard.full_scans == 4

    def test_copy_counts_exactly_one_scan(self):
        """``copy`` must count one scan no matter how CPython routes
        the walk: because the guard overrides ``__iter__``, current
        CPython sends ``dict.copy`` through the generic merge path
        (which calls the counted ``keys()``); the override normalizes
        to exactly +1 either way, so a future fast path that skips
        ``keys()`` cannot silently uncount copies."""
        guard = ScanGuard({"a": 1, "b": 2})
        copied = guard.copy()
        assert copied == {"a": 1, "b": 2}
        assert type(copied) is dict
        assert guard.full_scans == 1

    def test_c_level_walk_census(self):
        """The documented blind-spot census on this CPython.

        Overriding ``__iter__`` defeats ``PyDict_Merge``'s exact-dict
        fast path, so subclass-consuming constructors and unpacking
        *are* counted (they dispatch through ``keys()``). What stays
        invisible are walks that read the key table directly at the C
        level: ``repr`` and ``==``. If a CPython release shifts any
        of these between groups, this test fails and the guard's
        contract must be re-audited.
        """
        counted = {
            "dict(sg)": lambda sg: dict(sg),
            "{**sg}": lambda sg: {**sg},
            "ScanGuard(sg)": lambda sg: ScanGuard(sg),
        }
        for label, walk in counted.items():
            guard = ScanGuard({"a": 1, "b": 2})
            assert walk(guard) == {"a": 1, "b": 2}, label
            assert guard.full_scans == 1, label
        uncounted = {
            "repr(sg)": repr,
            "sg == other": lambda sg: sg == {"a": 1, "b": 2},
        }
        for label, walk in uncounted.items():
            guard = ScanGuard({"a": 1, "b": 2})
            walk(guard)
            assert guard.full_scans == 0, label


class TestConfig:
    def test_smoke_variant_meets_the_gate_floor(self):
        smoke = ReplayConfig().smoke()
        assert smoke.tenants >= 100_000
        assert smoke.fail_at and smoke.fault_plan
