"""Replay tests: determinism, conservation, failure recovery, O(1) proof."""

import pytest

from repro.shard import ReplayConfig, run_replay, run_unsharded_replay

SMALL = ReplayConfig(tenants=5_000, events=8_000, window_s=240.0,
                     shards=3, slots_per_shard=2,
                     max_pending_per_shard=256, tenant_queue_depth=8,
                     control_interval_s=30.0, max_shards=6,
                     fail_at=(60.0,), fault_plan="shard-failure")


@pytest.fixture(scope="module")
def outcome():
    return run_replay(SMALL)


class TestDeterminism:
    def test_same_seed_runs_are_byte_identical(self, outcome):
        again = run_replay(SMALL)
        assert outcome.digest() == again.digest()
        assert outcome.to_dict() == again.to_dict()

    def test_seed_changes_the_outcome(self, outcome):
        other = run_replay(ReplayConfig(**{
            **SMALL.__dict__, "seed": SMALL.seed + 1}))
        assert other.digest() != outcome.digest()


class TestConservation:
    def test_roll_up_reconciles_after_quiesce(self, outcome):
        report = outcome.report
        assert report["balanced"]
        assert report["pending"] == 0
        assert report["offered"] == report["completed"] + report["shed"] \
            + report["failed"]

    def test_trace_covers_every_tenant(self, outcome):
        assert outcome.distinct_tenants == SMALL.tenants
        assert outcome.events == SMALL.events

    def test_shard_failures_fire_and_recover(self, outcome):
        """Both failure paths (explicit fail_at + the chaos plan) kill a
        shard, and the victims' backlogs are re-homed, not dropped."""
        assert outcome.failures_injected >= 1
        assert outcome.recovered > 0
        assert outcome.report["recovered"] >= outcome.recovered

    def test_hot_path_never_walks_tenant_state(self, outcome):
        assert outcome.full_scans == 0

    def test_rebalances_are_recorded_with_stable_keys(self, outcome):
        for row in outcome.rebalances:
            assert row["action"] in ("split", "merge")
            assert row["moved"] >= 0


class TestUnshardedBaseline:
    def test_monolithic_replay_conserves_queries(self):
        report = run_unsharded_replay(SMALL)
        assert report["offered"] == SMALL.events
        assert report["offered"] == report["completed"] + report["shed"]
        assert report["p50"] <= report["p99"]

    def test_sharded_and_unsharded_see_the_same_trace(self, outcome):
        """Same seed -> same arrivals: offered totals agree."""
        report = run_unsharded_replay(SMALL)
        assert outcome.report["offered"] == report["offered"]


class TestConfig:
    def test_smoke_variant_meets_the_gate_floor(self):
        smoke = ReplayConfig().smoke()
        assert smoke.tenants >= 100_000
        assert smoke.fail_at and smoke.fault_plan
