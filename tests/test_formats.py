"""Tests for schemas, record batches, and the columnar file format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import (
    ColumnarFile,
    DataType,
    Field,
    RecordBatch,
    Schema,
    read_file,
    read_metadata,
    write_file,
)


def sample_schema():
    return Schema([
        Field("id", DataType.INT64),
        Field("price", DataType.FLOAT64),
        Field("flag", DataType.STRING),
        Field("shipdate", DataType.DATE),
    ])


def sample_batch(n=100):
    rng = np.random.default_rng(0)
    return RecordBatch(sample_schema(), {
        "id": np.arange(n, dtype=np.int64),
        "price": rng.random(n),
        "flag": np.array([("A" if i % 2 else "N") for i in range(n)],
                         dtype=object),
        "shipdate": rng.integers(8000, 10000, n).astype(np.int32),
    })


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Schema([Field("a", DataType.INT64), Field("a", DataType.INT64)])

    def test_select_preserves_order(self):
        schema = sample_schema()
        sub = schema.select(["flag", "id"])
        assert sub.names() == ["flag", "id"]

    def test_unknown_field_raises(self):
        with pytest.raises(KeyError):
            sample_schema().field("nope")

    def test_roundtrip_dict(self):
        schema = sample_schema()
        assert Schema.from_dict(schema.to_dict()) == schema


class TestRecordBatch:
    def test_length_consistency_enforced(self):
        with pytest.raises(ValueError, match="rows"):
            RecordBatch(Schema([Field("a", DataType.INT64),
                                Field("b", DataType.INT64)]),
                        {"a": np.arange(3), "b": np.arange(4)})

    def test_missing_column_rejected(self):
        with pytest.raises(ValueError, match="missing column"):
            RecordBatch(Schema([Field("a", DataType.INT64)]), {})

    def test_take_mask_scales_logical_bytes(self):
        batch = sample_batch(100)
        batch.logical_bytes = 1000.0
        mask = batch.column("id") < 50
        subset = batch.take(mask)
        assert subset.num_rows == 50
        assert subset.logical_bytes == pytest.approx(500.0)

    def test_select_scales_logical_bytes_by_width(self):
        batch = sample_batch(100)
        batch.logical_bytes = 1000.0
        narrow = batch.select(["id"])
        assert narrow.logical_bytes < 1000.0
        assert narrow.schema.names() == ["id"]

    def test_concat_sums_rows_and_logical(self):
        a, b = sample_batch(10), sample_batch(20)
        merged = RecordBatch.concat([a, b])
        assert merged.num_rows == 30
        assert merged.logical_bytes == pytest.approx(
            a.logical_bytes + b.logical_bytes)

    def test_concat_schema_mismatch_rejected(self):
        a = sample_batch(5)
        b = a.select(["id"])
        with pytest.raises(ValueError, match="schema"):
            RecordBatch.concat([a, b])

    def test_with_columns_appends(self):
        batch = sample_batch(10)
        extended = batch.with_columns(
            {"double_id": (DataType.INT64, batch.column("id") * 2)})
        assert "double_id" in extended.schema
        assert list(extended.column("double_id")) == \
            [2 * v for v in batch.column("id")]

    def test_with_columns_rejects_duplicates(self):
        batch = sample_batch(5)
        with pytest.raises(ValueError):
            batch.with_columns({"id": (DataType.INT64, np.arange(5))})

    def test_empty_batch(self):
        empty = RecordBatch.empty(sample_schema())
        assert empty.num_rows == 0
        assert empty.logical_bytes == 0.0


class TestColumnarFormat:
    def test_roundtrip_all_columns(self):
        batch = sample_batch(1000)
        data = write_file(batch)
        back = read_file(data)
        assert back.num_rows == 1000
        np.testing.assert_array_equal(back.column("id"), batch.column("id"))
        np.testing.assert_allclose(back.column("price"),
                                   batch.column("price"))
        assert list(back.column("flag")) == list(batch.column("flag"))

    def test_projection_pushdown_reads_subset(self):
        batch = sample_batch(100)
        data = write_file(batch)
        narrow = read_file(data, columns=["price", "id"])
        assert narrow.schema.names() == ["price", "id"]

    def test_metadata_exposes_zone_maps(self):
        batch = sample_batch(100)
        metadata = read_metadata(write_file(batch))
        id_chunk = [chunk for chunk in metadata.row_groups[0]
                    if chunk.column == "id"][0]
        assert id_chunk.min_value == 0
        assert id_chunk.max_value == 99

    def test_zone_map_filter_skips_row_groups(self):
        batch = sample_batch(1000)
        data = write_file(batch, row_group_size=100)
        # Only row groups whose id range intersects [0, 99] survive.
        result = read_file(data, columns=["id"], zone_map_filters={
            "id": lambda lo, hi: lo is not None and lo < 100})
        assert result.num_rows == 100
        assert result.column("id").max() == 99

    def test_zone_map_filter_can_skip_everything(self):
        batch = sample_batch(100)
        data = write_file(batch, row_group_size=10)
        result = read_file(data, columns=["id"], zone_map_filters={
            "id": lambda lo, hi: False})
        assert result.num_rows == 0

    def test_multiple_row_groups_reassemble_in_order(self):
        batch = sample_batch(1000)
        data = write_file(batch, row_group_size=64)
        back = read_file(data, columns=["id"])
        np.testing.assert_array_equal(back.column("id"), np.arange(1000))

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            read_metadata(b"NOPE" + b"x" * 100 + b"NOPE")

    def test_empty_batch_roundtrip(self):
        empty = RecordBatch.empty(sample_schema())
        back = read_file(write_file(empty))
        assert back.num_rows == 0

    def test_compression_shrinks_redundant_data(self):
        n = 10_000
        batch = RecordBatch(Schema([Field("k", DataType.INT64)]),
                            {"k": np.zeros(n, dtype=np.int64)})
        data = write_file(batch)
        assert len(data) < n * 8 / 10  # at least 10x on constant data

    def test_columnar_file_wrapper(self):
        file = ColumnarFile.from_batch(sample_batch(50))
        assert file.num_rows == 50
        assert file.size == len(file.data)
        assert file.read(columns=["id"]).num_rows == 50


class TestPropertyRoundtrip:
    @given(values=st.lists(st.integers(min_value=-2**62, max_value=2**62),
                           min_size=0, max_size=300),
           row_group=st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_int_roundtrip_any_row_group_size(self, values, row_group):
        batch = RecordBatch(Schema([Field("v", DataType.INT64)]),
                            {"v": np.array(values, dtype=np.int64)})
        back = read_file(write_file(batch, row_group_size=row_group))
        assert list(back.column("v")) == values

    @given(values=st.lists(
        st.text(alphabet=st.characters(blacklist_characters="\x00",
                                       blacklist_categories=("Cs",)),
                max_size=20),
        min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_string_roundtrip(self, values):
        batch = RecordBatch(Schema([Field("s", DataType.STRING)]),
                            {"s": np.array(values, dtype=object)})
        back = read_file(write_file(batch))
        assert list(back.column("s")) == values


class TestDictionaryEncoding:
    def make_flags(self, n):
        rng = np.random.default_rng(0)
        values = np.array(["A", "N", "R"], dtype=object)
        return RecordBatch(
            Schema([Field("flag", DataType.STRING)]),
            {"flag": values[rng.integers(0, 3, n)]})

    def test_low_cardinality_strings_use_dictionary(self):
        from repro.formats.columnar import read_metadata
        data = write_file(self.make_flags(5_000))
        metadata = read_metadata(data)
        encodings = {chunk.encoding for group in metadata.row_groups
                     for chunk in group}
        assert encodings == {"dict-zlib"}

    def test_dictionary_roundtrip(self):
        batch = self.make_flags(5_000)
        back = read_file(write_file(batch))
        assert list(back.column("flag")) == list(batch.column("flag"))

    def test_dictionary_beats_plain_utf8(self):
        from repro.formats.columnar import _encode_column
        batch = self.make_flags(50_000)
        array = batch.column("flag")
        dict_payload, dict_tag = _encode_column(array, DataType.STRING)
        assert dict_tag == "dict-zlib"
        # Force the plain encoding for comparison by making values unique.
        unique = np.array([f"{v}{i}" for i, v in enumerate(array)],
                          dtype=object)
        plain_payload, plain_tag = _encode_column(unique, DataType.STRING)
        assert plain_tag == "utf8-zlib"
        assert len(dict_payload) < len(plain_payload)

    def test_high_cardinality_strings_stay_plain(self):
        from repro.formats.columnar import read_metadata
        batch = RecordBatch(
            Schema([Field("s", DataType.STRING)]),
            {"s": np.array([f"unique-{i}" for i in range(1_000)],
                           dtype=object)})
        metadata = read_metadata(write_file(batch))
        encodings = {chunk.encoding for group in metadata.row_groups
                     for chunk in group}
        assert encodings == {"utf8-zlib"}

    def test_mixed_row_groups_roundtrip(self):
        batch = self.make_flags(1_000)
        back = read_file(write_file(batch, row_group_size=64))
        assert list(back.column("flag")) == list(batch.column("flag"))
