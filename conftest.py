"""Pytest root configuration.

Ensures ``src/`` is importable even when the package has not been
pip-installed (e.g. in offline environments where editable installs
cannot build wheels).
"""

import sys
from pathlib import Path

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
