"""Byte-stable exporters: canonical JSON, Chrome trace events, snapshots.

Every artifact the simulation writes to disk goes through
:func:`canonical_json` — sorted keys, two-space indent, floats rounded
before serialization — so the determinism contract is byte-exact: same
seed, same configuration, identical bytes. The chaos
:class:`~repro.chaos.report.ResilienceReport` and serving artifacts
share these helpers.

:func:`chrome_trace` converts a recorder's spans, events, and time
series into the Chrome trace-event format (``ph: "X"`` complete events,
``"C"`` counters, ``"i"`` instants) loadable in Perfetto or
``chrome://tracing``. One OS-level *process* per trace id; lanes
(*threads*) are allocated greedily so concurrent workers get their own
rows while a worker's phases nest inside it.
"""

from __future__ import annotations

import json
from typing import Optional


def round_for_json(value: Optional[float], digits: int = 9) -> Optional[float]:
    """Round a float for canonical JSON (None passes through)."""
    return None if value is None else round(float(value), digits)


def round_floats(obj, digits: int = 9):
    """Recursively round every float in a JSON-ready structure."""
    if isinstance(obj, float):
        return round(obj, digits)
    if isinstance(obj, dict):
        return {k: round_floats(v, digits) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [round_floats(v, digits) for v in obj]
    return obj


def canonical_json(obj) -> str:
    """Serialize ``obj`` as byte-stable JSON (sorted keys, indent=2).

    Floats must already be rounded (:func:`round_floats` or
    :func:`round_for_json`) — rounding twice is a no-op, so callers that
    round field-by-field stay byte-identical.
    """
    return json.dumps(obj, sort_keys=True, indent=2)


# -- metrics snapshot ---------------------------------------------------------

def metrics_snapshot(recorder) -> dict:
    """JSON-ready snapshot of every instrument plus the event timeline."""
    snapshot = recorder.metrics.snapshot()
    snapshot["events"] = list(recorder.events)
    snapshot["span_count"] = len(recorder.spans)
    return round_floats(snapshot)


# -- Chrome trace events ------------------------------------------------------

def _us(t: float) -> float:
    """Virtual seconds → trace microseconds, rounded for byte stability."""
    return round(t * 1e6, 3)


def _alloc_lane(lanes: list[list[tuple[float, float]]], start: float,
                end: float, preferred: Optional[int]) -> int:
    """Pick a lane for [start, end): the preferred (parent's) lane when the
    interval nests or sits clear of everything already there, else the
    first conflict-free lane, else a new one. A placed interval conflicts
    only on *partial* overlap — containment either way renders as
    nesting, which is what we want."""
    def fits(lane: list[tuple[float, float]]) -> bool:
        for s, e in lane:
            if end <= s or start >= e:        # disjoint
                continue
            if s <= start and end <= e:       # nested inside existing
                continue
            if start <= s and e <= end:       # existing nested inside us
                continue
            return False
        return True

    order = list(range(len(lanes)))
    if preferred is not None:
        order.remove(preferred)
        order.insert(0, preferred)
    for i in order:
        if fits(lanes[i]):
            lanes[i].append((start, end))
            return i
    lanes.append([(start, end)])
    return len(lanes) - 1


def chrome_trace(recorder, include_counters: bool = True,
                 trace_ids=None) -> dict:
    """Render a recorder's state as a Chrome trace-event document.

    ``trace_ids`` (an iterable of trace-id strings) restricts the export
    to those traces: only their spans are rendered, and the global
    event/counter rows are dropped — the shape ``repro trace --trace``
    and incident-bundle excerpt re-export want. ``None`` exports
    everything.
    """
    trace_events: list[dict] = []
    pids: dict[str, int] = {}
    lanes_by_pid: dict[int, list[list[tuple[float, float]]]] = {}
    lane_of_span: dict[tuple[str, int], int] = {}
    selected = None if trace_ids is None else set(trace_ids)
    spans = recorder.spans if selected is None \
        else [span for span in recorder.spans if span.trace_id in selected]

    max_t = 0.0
    for span in spans:
        if span.end is not None and span.end > max_t:
            max_t = span.end
        elif span.start > max_t:
            max_t = span.start

    for span in spans:
        pid = pids.get(span.trace_id)
        if pid is None:
            pid = pids[span.trace_id] = len(pids) + 1
            lanes_by_pid[pid] = []
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": span.trace_id},
            })
        end = span.end if span.end is not None else max_t
        preferred = lane_of_span.get((span.trace_id, span.parent_id)) \
            if span.parent_id is not None else None
        lane = _alloc_lane(lanes_by_pid[pid], span.start, end, preferred)
        lane_of_span[(span.trace_id, span.span_id)] = lane

        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        args.update(round_floats(span.attrs))
        if span.end is None:
            args["unfinished"] = True
        trace_events.append({
            "name": span.name, "cat": span.category, "ph": "X",
            "ts": _us(span.start), "dur": _us(end - span.start),
            "pid": pid, "tid": lane, "args": args,
        })
        for ev in span.events:
            ev_args = {k: v for k, v in ev.items() if k not in ("t", "name")}
            trace_events.append({
                "name": ev["name"], "cat": span.category, "ph": "i",
                "ts": _us(ev["t"]), "pid": pid, "tid": lane, "s": "t",
                "args": round_floats(ev_args),
            })

    if recorder.events and selected is None:
        trace_events.append({
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": "events"},
        })
        for ev in recorder.events:
            ev_args = {k: v for k, v in ev.items()
                       if k not in ("t", "name", "category")}
            trace_events.append({
                "name": ev["name"], "cat": ev.get("category", "event"),
                "ph": "i", "ts": _us(ev["t"]), "pid": 0, "tid": 0,
                "s": "g", "args": round_floats(ev_args),
            })

    if include_counters and selected is None:
        for name, series in sorted(recorder.metrics.series.items()):
            for t, v in series.points:
                trace_events.append({
                    "name": name, "cat": "metric", "ph": "C",
                    "ts": _us(t), "pid": 0, "tid": 0,
                    "args": {"value": round_for_json(v)},
                })

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def validate_chrome_trace(trace: dict) -> dict:
    """Schema sanity check; raises ``ValueError`` on the first violation.

    Verifies the document shape, that every complete event carries the
    required fields, and that every span's ``parent_id`` refers to a span
    that exists in the same process. Returns per-phase event counts.
    """
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    span_ids: dict[int, set] = {}
    counts: dict[str, int] = {}
    for ev in events:
        ph = ev.get("ph")
        counts[ph] = counts.get(ph, 0) + 1
        if "name" not in ev or "pid" not in ev:
            raise ValueError(f"event missing name/pid: {ev!r}")
        if ph == "X":
            for key in ("ts", "dur", "tid", "args"):
                if key not in ev:
                    raise ValueError(f"X event missing {key!r}: {ev!r}")
            if ev["dur"] < 0:
                raise ValueError(f"negative duration: {ev!r}")
            span_ids.setdefault(ev["pid"], set()).add(ev["args"]["span_id"])
    for ev in events:
        if ev.get("ph") != "X":
            continue
        parent = ev["args"].get("parent_id")
        if parent is not None and parent not in span_ids[ev["pid"]]:
            raise ValueError(
                f"span {ev['args']['span_id']} ({ev['name']!r}) has "
                f"unknown parent {parent}")
    return counts
