"""Simulation-wide observability: metrics, spans, and exporters.

The default recorder is a no-op; wrap simulation construction in
:func:`recording` (or call :func:`enable` first) to capture telemetry::

    from repro.telemetry import recording
    from repro.telemetry.export import chrome_trace, metrics_snapshot

    with recording() as rec:
        sim = CloudSim(seed=7)
        engine, plans = setup_engine(sim, setup)
        result = sim.run(engine.run_query(plans["tpch-q12"]))
    trace = chrome_trace(rec)            # Perfetto-loadable
    snapshot = metrics_snapshot(rec)     # canonical metrics dict

See ``docs/observability.md`` for the instrument catalog and span
hierarchy.
"""

from repro.telemetry.dashboard import render_dashboard, sparkline
from repro.telemetry.export import (
    canonical_json,
    chrome_trace,
    metrics_snapshot,
    round_floats,
    round_for_json,
    validate_chrome_trace,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    LatencyHistogram,
    MetricRegistry,
    TimeSeries,
)
from repro.telemetry.recorder import (
    NULL_RECORDER,
    KernelMonitor,
    NullRecorder,
    TelemetryRecorder,
    disable,
    enable,
    get_recorder,
    recording,
    set_recorder,
)
from repro.telemetry.spans import Span, parent_ids

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KernelMonitor",
    "LatencyHistogram",
    "MetricRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Span",
    "TelemetryRecorder",
    "TimeSeries",
    "canonical_json",
    "chrome_trace",
    "disable",
    "enable",
    "get_recorder",
    "metrics_snapshot",
    "parent_ids",
    "recording",
    "render_dashboard",
    "round_floats",
    "round_for_json",
    "set_recorder",
    "sparkline",
    "validate_chrome_trace",
]
