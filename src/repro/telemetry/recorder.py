"""The telemetry recorder and the global no-op default.

One :class:`TelemetryRecorder` observes one simulation: a metric
registry of typed instruments, the span store of every trace, and a
global timeline of instant events (faults, sheds, throttle transitions,
hedge decisions). The module-level default is a :class:`NullRecorder`
whose ``enabled`` flag is ``False`` — every instrumentation site in the
simulation guards on that flag, so an uninstrumented run does no
recording work beyond a predicate check and stays byte-identical to a
build without telemetry.

Usage::

    from repro.telemetry import recording
    with recording() as rec:
        sim = CloudSim(seed=0)          # construct INSIDE the context
        ...                             # run queries, workloads, ...
    snapshot = metrics_snapshot(rec)

Components capture the global recorder at construction time, so the
recorder must be installed *before* the simulation is built. Recording
never creates simulation events, advances the clock, or draws from any
RNG stream — telemetry on vs. off yields byte-identical results (a
property test enforces this).
"""

from __future__ import annotations

import contextlib
from typing import Optional

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    TimeSeries,
)
from repro.telemetry.spans import Span, parent_ids

#: The kernel monitor samples ready-queue depth every this many events.
KERNEL_SAMPLE_EVERY = 256


class KernelMonitor:
    """Hook object installed on :class:`~repro.sim.kernel.Environment`.

    The kernel calls :meth:`on_event` once per processed event — the
    hottest loop in the whole simulation — so the monitor only bumps a
    counter and samples queue depth at a fixed stride.
    """

    __slots__ = ("_events", "_processes", "_depth", "_stride", "_i")

    def __init__(self, recorder: "TelemetryRecorder",
                 stride: int = KERNEL_SAMPLE_EVERY) -> None:
        self._events = recorder.counter("sim.events_processed")
        self._processes = recorder.counter("sim.processes_started")
        self._depth = recorder.timeseries("sim.ready_queue_depth")
        self._stride = stride
        self._i = 0

    def on_event(self, now: float, queue_depth: int) -> None:
        """One event was processed at virtual time ``now``."""
        self._events.value += 1
        self._i += 1
        if self._i >= self._stride:
            self._i = 0
            self._depth.sample(now, float(queue_depth))

    def on_process(self, name: Optional[str]) -> None:
        """A new process was started."""
        self._processes.value += 1


class TelemetryRecorder:
    """Collects metrics, spans, and events for one simulation."""

    enabled = True

    def __init__(self) -> None:
        self.metrics = MetricRegistry()
        self.spans: list[Span] = []
        self.events: list[dict] = []
        self._span_seq = 0
        self._trace_seq = 0
        self._name_serials: dict[str, int] = {}

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called ``name``."""
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``."""
        return self.metrics.gauge(name)

    def timeseries(self, name: str, min_dt: float = 0.0) -> TimeSeries:
        """The time series called ``name``."""
        return self.metrics.timeseries(name, min_dt=min_dt)

    def histogram(self, name: str) -> Histogram:
        """The latency histogram called ``name``."""
        return self.metrics.histogram(name)

    def unique_name(self, base: str) -> str:
        """``base#N`` with a per-base serial — deterministic identity for
        per-instance instruments (one shaper per sandbox direction)."""
        serial = self._name_serials.get(base, 0)
        self._name_serials[base] = serial + 1
        return f"{base}#{serial}"

    # -- spans ---------------------------------------------------------------

    def start_trace(self, name: str, t: float, category: str = "query",
                    attrs: Optional[dict] = None) -> Span:
        """Open a new root span under a fresh trace id."""
        self._trace_seq += 1
        trace_id = f"trace-{self._trace_seq:04d}"
        return self._open(trace_id, None, name, category, t, attrs)

    def start_span(self, name: str, t: float, parent=None,
                   category: str = "span",
                   attrs: Optional[dict] = None) -> Span:
        """Open a child span under ``parent`` (a Span or a ctx dict).

        With no parent the span joins an implicit ambient trace — useful
        for background activity (warm-pool pings, serving machinery)
        that belongs to no particular query.
        """
        trace_id, parent_id = parent_ids(parent)
        if trace_id is None:
            trace_id = "trace-ambient"
        return self._open(trace_id, parent_id, name, category, t, attrs)

    def record_span(self, name: str, start: float, end: float, parent=None,
                    category: str = "span",
                    attrs: Optional[dict] = None) -> Span:
        """Record an already-completed span (start and end both known)."""
        span = self.start_span(name, start, parent=parent,
                               category=category, attrs=attrs)
        span.end = end
        return span

    def _open(self, trace_id: str, parent_id: Optional[int], name: str,
              category: str, t: float, attrs: Optional[dict]) -> Span:
        self._span_seq += 1
        span = Span(trace_id=trace_id, span_id=self._span_seq,
                    parent_id=parent_id, name=name, category=category,
                    start=t, attrs=dict(attrs) if attrs else {})
        self.spans.append(span)
        return span

    # -- events --------------------------------------------------------------

    def event(self, t: float, name: str, category: str = "event",
              **attrs) -> None:
        """Record a global instant event on the virtual timeline."""
        entry = {"t": t, "name": name, "category": category}
        if attrs:
            entry.update(attrs)
        self.events.append(entry)

    # -- views ---------------------------------------------------------------

    def traces(self) -> list[str]:
        """Trace ids in first-appearance order."""
        seen: list[str] = []
        for span in self.spans:
            if span.trace_id not in seen:
                seen.append(span.trace_id)
        return seen

    def spans_of(self, trace_id: str) -> list[Span]:
        """All spans of one trace, in creation order."""
        return [span for span in self.spans if span.trace_id == trace_id]

    def children_of(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in creation order."""
        return [s for s in self.spans
                if s.trace_id == span.trace_id
                and s.parent_id == span.span_id]

    # -- attachment ----------------------------------------------------------

    def attach_kernel(self, env) -> None:
        """Install a :class:`KernelMonitor` on a simulation environment."""
        env.set_monitor(KernelMonitor(self))


class _NullSpan(Span):
    """Shared inert span returned by the :class:`NullRecorder`."""

    def __init__(self) -> None:
        super().__init__(trace_id="null", span_id=0, parent_id=None,
                         name="null", category="null", start=0.0, end=0.0)

    def add_event(self, t, name, **attrs) -> None:
        pass

    def finish(self, t, **attrs) -> "Span":
        return self


class _NullHistogram(Histogram):
    """Shared inert histogram: observations vanish, percentiles are 0."""

    __slots__ = ()

    def observe(self, value_s: float) -> None:
        pass


_NULL_SPAN = _NullSpan()
_NULL_COUNTER = Counter("null")
_NULL_GAUGE = Gauge("null")
_NULL_SERIES = TimeSeries("null", max_points=0)
_NULL_HISTOGRAM = _NullHistogram("null")


class NullRecorder:
    """Determinism-neutral default: records nothing, allocates nothing.

    Every method mirrors :class:`TelemetryRecorder` and returns shared
    inert objects, so instrumentation sites that skip the ``enabled``
    guard still cannot fail — they just record into the void.
    """

    enabled = False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def timeseries(self, name: str, min_dt: float = 0.0) -> TimeSeries:
        return _NULL_SERIES

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM

    def unique_name(self, base: str) -> str:
        return base

    def start_trace(self, name, t, category="query", attrs=None) -> Span:
        return _NULL_SPAN

    def start_span(self, name, t, parent=None, category="span",
                   attrs=None) -> Span:
        return _NULL_SPAN

    def record_span(self, name, start, end, parent=None, category="span",
                    attrs=None) -> Span:
        return _NULL_SPAN

    def event(self, t, name, category="event", **attrs) -> None:
        pass

    def attach_kernel(self, env) -> None:
        pass


NULL_RECORDER = NullRecorder()

_current: object = NULL_RECORDER


def get_recorder():
    """The active recorder (the shared no-op one unless enabled)."""
    return _current


def set_recorder(recorder) -> object:
    """Install ``recorder`` as the global; returns the previous one."""
    global _current
    previous = _current
    _current = recorder  # repro-lint: disable=CONC001 deliberate process-wide switch: recording is per-run, installed before any domain starts and restored after it drains
    return previous


def enable() -> TelemetryRecorder:
    """Install (and return) a fresh :class:`TelemetryRecorder`."""
    recorder = TelemetryRecorder()
    set_recorder(recorder)
    return recorder


def disable() -> None:
    """Restore the no-op default recorder."""
    set_recorder(NULL_RECORDER)


@contextlib.contextmanager
def recording():
    """Context manager: fresh recorder inside, previous restored after.

    Build the simulation inside the ``with`` block — components capture
    the recorder at construction time.
    """
    previous = set_recorder(TelemetryRecorder())
    try:
        yield _current
    finally:
        set_recorder(previous)
