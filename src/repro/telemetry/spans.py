"""Hierarchical spans with trace/span ids for distributed correlation.

Section 3.2 of the paper: the engine "traces runtime information with
query context ... compared between distributed workers, as their clocks
are tightly synchronized". In the simulation every component shares one
virtual clock, so spans from the coordinator, invokers, workers, and
storage calls are exactly comparable. A span's identity is
``(trace_id, span_id)``; the trace id groups everything belonging to one
query, and ``parent_id`` nests worker spans under their dispatching
stage, storage reads under their worker, and so on.

Trace context crosses "process" boundaries (coordinator → invoker →
worker) as a plain ``{"trace_id", "span_id"}`` dict carried inside the
invocation payload — the simulation analogue of W3C traceparent
propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Span:
    """One timed operation in a trace."""

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start: float
    end: Optional[float] = None
    attrs: dict = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Span length in virtual seconds (0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        """Whether the span has been closed."""
        return self.end is not None

    def ctx(self) -> dict:
        """Serializable trace context for payload propagation."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def add_event(self, t: float, name: str, **attrs) -> None:
        """Attach a point-in-time event to this span."""
        event = {"t": t, "name": name}
        if attrs:
            event.update(attrs)
        self.events.append(event)

    def finish(self, t: float, **attrs) -> "Span":
        """Close the span at virtual time ``t`` (idempotent)."""
        if self.end is None:
            self.end = t
        if attrs:
            self.attrs.update(attrs)
        return self


def parent_ids(parent) -> tuple[Optional[str], Optional[int]]:
    """Extract (trace_id, span_id) from a parent Span, ctx dict, or None."""
    if parent is None:
        return None, None
    if isinstance(parent, Span):
        return parent.trace_id, parent.span_id
    if isinstance(parent, dict):
        return parent.get("trace_id"), parent.get("span_id")
    raise TypeError(f"parent must be a Span, ctx dict, or None, "
                    f"got {type(parent).__name__}")
