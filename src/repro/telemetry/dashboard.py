"""Text dashboard: a terminal rendering of a recorder's state.

Counters and gauges as aligned tables, time series as unicode
sparklines, the busiest spans by total time. Used by the ``repro
metrics`` CLI; pure string formatting, no simulation imports.
"""

from __future__ import annotations

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 48) -> str:
    """Render ``values`` as a fixed-width unicode sparkline."""
    if not values:
        return ""
    if len(values) > width:
        # Downsample by bucketing; keep each bucket's mean.
        step = len(values) / width
        values = [sum(values[int(i * step):int((i + 1) * step) or 1])
                  / max(1, len(values[int(i * step):int((i + 1) * step) or 1]))
                  for i in range(width)]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[0] * len(values)
    return "".join(_BLOCKS[min(len(_BLOCKS) - 1,
                               int((v - lo) / span * len(_BLOCKS)))]
                   for v in values)


def render_dashboard(recorder, series_width: int = 48,
                     top_spans: int = 12) -> str:
    """Multi-section text dashboard for one recorder."""
    lines: list[str] = []
    metrics = recorder.metrics

    if metrics.counters:
        lines.append("== counters ==")
        width = max(len(n) for n in metrics.counters)
        for name in sorted(metrics.counters):
            lines.append(f"  {name:<{width}}  "
                         f"{metrics.counters[name].value:>12}")

    if metrics.gauges:
        lines.append("== gauges ==")
        width = max(len(n) for n in metrics.gauges)
        for name in sorted(metrics.gauges):
            g = metrics.gauges[name]
            lines.append(f"  {name:<{width}}  value={g.value:>12.3f}  "
                         f"peak={g.peak:>12.3f}")

    if metrics.histograms:
        lines.append("== latency percentiles ==")
        width = max(len(n) for n in metrics.histograms)
        for name in sorted(metrics.histograms):
            h = metrics.histograms[name]
            lines.append(
                f"  {name:<{width}}  n={h.count:>8}  "
                f"p50={h.percentile(50.0):>9.4f}s  "
                f"p95={h.percentile(95.0):>9.4f}s  "
                f"p99={h.percentile(99.0):>9.4f}s")

    if metrics.series:
        lines.append("== time series ==")
        for name in sorted(metrics.series):
            s = metrics.series[name]
            values = s.values()
            if not values:
                continue
            lo, hi = min(values), max(values)
            extra = f" dropped={s.dropped}" if s.dropped else ""
            lines.append(f"  {name} [{len(values)} pts, "
                         f"min={lo:.3f}, max={hi:.3f}{extra}]")
            lines.append(f"    {sparkline(values, series_width)}")

    if recorder.spans:
        lines.append(f"== spans ({len(recorder.spans)} total, "
                     f"top {top_spans} by total time) ==")
        totals: dict[tuple[str, str], tuple[float, int]] = {}
        for span in recorder.spans:
            key = (span.category, span.name)
            total, count = totals.get(key, (0.0, 0))
            totals[key] = (total + span.duration, count + 1)
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1][0], kv[0]))
        for (category, name), (total, count) in ranked[:top_spans]:
            lines.append(f"  {category + ':' + name:<42} "
                         f"n={count:>5}  total={total:>10.3f}s  "
                         f"mean={total / count:>8.4f}s")

    if recorder.events:
        lines.append(f"== events ({len(recorder.events)}) ==")
        by_name: dict[str, int] = {}
        for ev in recorder.events:
            by_name[ev["name"]] = by_name.get(ev["name"], 0) + 1
        for name in sorted(by_name):
            lines.append(f"  {name:<42} {by_name[name]:>6}")

    return "\n".join(lines) if lines else "(no telemetry recorded)"
