"""Typed metric instruments stamped on the virtual clock.

Four instrument kinds cover every telemetry need of the simulation:

* :class:`Counter` — a monotonically increasing count (events processed,
  cold starts, ``SlowDown`` emissions);
* :class:`Gauge` — a last-value-wins level with a high-watermark
  (concurrent executions, queue depth);
* :class:`TimeSeries` — (virtual-time, value) samples with optional
  minimum sample spacing and a hard point cap, so high-frequency probes
  (a token bucket draining during Figure 5) stay bounded in memory;
* :class:`Histogram` — a fixed log-bucketed latency distribution
  (:class:`LatencyHistogram`) with deterministic percentiles, O(1)
  memory per observation.

Instruments are created lazily through a :class:`MetricRegistry` and are
identified by dotted names (``lambda.cold_starts``,
``shaper.sandbox-worker/in#0.level``). All state is plain Python — no
clock reads, no RNG, no events — so recording can never perturb the
simulation it observes.
"""

from __future__ import annotations

import math

#: Default cap on stored samples per time series. Beyond it, samples are
#: counted in ``dropped`` instead of stored, so a runaway probe cannot
#: exhaust memory.
DEFAULT_MAX_POINTS = 8_192

#: Histogram range: 1 ms to ~10^4 s, 64 buckets per decade.
_LOG_MIN = -3.0
_LOG_MAX = 4.0
_BUCKETS_PER_DECADE = 64
_BUCKETS = int((_LOG_MAX - _LOG_MIN) * _BUCKETS_PER_DECADE)

#: Percentile points every histogram reduction reports.
HISTOGRAM_POINTS = (50.0, 95.0, 99.0)


class LatencyHistogram:
    """Fixed log-bucketed latency distribution with stable percentiles.

    Buckets span 1 ms to 10^4 s at 64 per decade (~3.7% relative
    resolution); out-of-range samples clamp to the edge buckets. The
    reported percentile is the upper edge of the bucket where the
    cumulative count crosses the rank — a deterministic value that
    merges associatively across shards.
    """

    __slots__ = ("counts", "total")

    def __init__(self) -> None:
        self.counts = [0] * (_BUCKETS + 2)
        self.total = 0

    def record(self, latency_s: float) -> None:
        if latency_s <= 0.0:
            index = 0
        else:
            position = (math.log10(latency_s) - _LOG_MIN) * _BUCKETS_PER_DECADE
            index = min(max(int(position) + 1, 0), _BUCKETS + 1)
        self.counts[index] += 1
        self.total += 1

    def merge(self, other: "LatencyHistogram") -> None:
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total

    def percentile(self, p: float) -> float:
        """Upper-edge latency of the bucket holding the ``p``-th centile."""
        if self.total == 0:
            return 0.0
        rank = math.ceil(self.total * p / 100.0)
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                if index == 0:
                    return 0.0
                exponent = _LOG_MIN + index / _BUCKETS_PER_DECADE
                return round(10.0 ** exponent, 9)
        return round(10.0 ** _LOG_MAX, 9)


class Histogram:
    """A named latency distribution instrument.

    Thin instrument wrapper over :class:`LatencyHistogram` so recorders
    can hand out histograms by dotted name like every other instrument
    kind. The snapshot reduction reports the count plus the
    :data:`HISTOGRAM_POINTS` percentiles — the full bucket array stays
    in memory only.
    """

    __slots__ = ("name", "dist")

    def __init__(self, name: str) -> None:
        self.name = name
        self.dist = LatencyHistogram()

    def observe(self, value_s: float) -> None:
        """Record one duration/latency sample (seconds)."""
        self.dist.record(value_s)

    @property
    def count(self) -> int:
        """Samples observed so far."""
        return self.dist.total

    def percentile(self, p: float) -> float:
        """Deterministic bucket-edge percentile (see LatencyHistogram)."""
        return self.dist.percentile(p)


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the count."""
        self.value += n


class Gauge:
    """Last-observed level plus its high-watermark."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        """Record the current level (and update the watermark)."""
        self.value = value
        if value > self.peak:
            self.peak = value


class TimeSeries:
    """(t, value) samples on the virtual clock.

    ``min_dt`` drops samples closer than that to the previous *kept*
    sample (value changes are still visible at the next kept sample);
    ``max_points`` caps storage, counting overflow in :attr:`dropped`.
    """

    __slots__ = ("name", "min_dt", "max_points", "points", "dropped",
                 "_last_t")

    def __init__(self, name: str, min_dt: float = 0.0,
                 max_points: int = DEFAULT_MAX_POINTS) -> None:
        self.name = name
        self.min_dt = min_dt
        self.max_points = max_points
        self.points: list[tuple[float, float]] = []
        self.dropped = 0
        self._last_t = float("-inf")

    def sample(self, t: float, value: float) -> None:
        """Record ``value`` at virtual time ``t`` (subject to spacing/cap)."""
        if t - self._last_t < self.min_dt:
            self.dropped += 1
            return
        if len(self.points) >= self.max_points:
            self.dropped += 1
            return
        self.points.append((t, value))
        self._last_t = t

    @property
    def last(self) -> float | None:
        """Most recent sampled value, or ``None`` if empty."""
        return self.points[-1][1] if self.points else None

    def values(self) -> list[float]:
        """The sampled values, in time order."""
        return [v for _, v in self.points]

    def times(self) -> list[float]:
        """The sample timestamps, in time order."""
        return [t for t, _ in self.points]


class MetricRegistry:
    """Lazily creates and caches instruments by dotted name."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.series: dict[str, TimeSeries] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def timeseries(self, name: str, min_dt: float = 0.0,
                   max_points: int = DEFAULT_MAX_POINTS) -> TimeSeries:
        """The time series called ``name`` (created on first use).

        ``min_dt``/``max_points`` only apply at creation time; later
        lookups return the existing series unchanged.
        """
        instrument = self.series.get(name)
        if instrument is None:
            instrument = self.series[name] = TimeSeries(
                name, min_dt=min_dt, max_points=max_points)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> dict:
        """JSON-ready dict of every instrument's current state."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "gauges": {name: {"value": g.value, "peak": g.peak}
                       for name, g in sorted(self.gauges.items())},
            "series": {name: {"points": [[t, v] for t, v in s.points],
                              "dropped": s.dropped}
                       for name, s in sorted(self.series.items())},
            "histograms": {
                name: {"count": h.count,
                       **{f"p{point:g}": h.percentile(point)
                          for point in HISTOGRAM_POINTS}}
                for name, h in sorted(self.histograms.items())},
        }
