"""Simulator of the S3 Express One Zone storage class.

Calibration (Sections 2.2 and 4.3):

* zonal deployment gives significantly lower and less variable latency
  (median and p95 read latency ~5 ms);
* no per-prefix partition quota — the bucket is pre-warmed; account-level
  IOPS measured at ~220K reads and ~42K writes;
* throughput scales linearly like S3 Standard, with more consistent write
  IOPS behaviour;
* requests are priced by size beyond 512 KiB, and transfers carry per-GiB
  charges (which is why Express never breaks even for shuffle, Table 8).
"""

from __future__ import annotations

from repro import units
from repro.network.fabric import Fabric
from repro.sim import Environment, RandomStreams
from repro.storage.base import FluidAdmission, RequestType, StorageService
from repro.storage.errors import SlowDown
from repro.storage.latency import LatencyModel

#: Figure 10 calibration: low, consistent zonal latencies.
EXPRESS_READ_LATENCY = LatencyModel(median=0.005, p95=0.0055,
                                    tail_probability=1e-5, tail_alpha=1.6,
                                    ceiling=1.0)
EXPRESS_WRITE_LATENCY = LatencyModel(median=0.007, p95=0.008,
                                     tail_probability=1e-5, tail_alpha=1.6,
                                     ceiling=1.0)

#: Figure 9 calibration: account-level IOPS ceilings.
EXPRESS_READ_IOPS = 220_000.0
EXPRESS_WRITE_IOPS = 42_000.0

S3_EXPRESS_MAX_OBJECT_SIZE = 5 * units.TiB


class S3Express(StorageService):
    """S3 Express One Zone: pre-warmed, low-latency, account-level quotas."""

    name = "s3-express"

    def __init__(self, env: Environment, fabric: Fabric, rng: RandomStreams,
                 read_iops: float = EXPRESS_READ_IOPS,
                 write_iops: float = EXPRESS_WRITE_IOPS) -> None:
        super().__init__(env, fabric, rng,
                         read_latency=EXPRESS_READ_LATENCY,
                         write_latency=EXPRESS_WRITE_LATENCY,
                         read_bandwidth=None, write_bandwidth=None,
                         max_item_size=S3_EXPRESS_MAX_OBJECT_SIZE)
        self.read_iops = float(read_iops)
        self.write_iops = float(write_iops)
        self._read_tokens = self.read_iops
        self._write_tokens = self.write_iops
        self._tokens_at = env.now

    def _refresh_tokens(self) -> None:
        elapsed = self.env.now - self._tokens_at
        if elapsed <= 0:
            return
        self._read_tokens = min(self.read_iops,
                                self._read_tokens + elapsed * self.read_iops)
        self._write_tokens = min(self.write_iops,
                                 self._write_tokens + elapsed * self.write_iops)
        self._tokens_at = self.env.now

    def _admit_one(self, op: RequestType, key: str) -> None:
        self._refresh_tokens()
        if op is RequestType.GET:
            if self._read_tokens < 1.0:
                self.stats.record(op, "throttled")
                raise SlowDown("s3-express: account read IOPS exceeded")
            self._read_tokens -= 1.0
        else:
            if self._write_tokens < 1.0:
                self.stats.record(op, "throttled")
                raise SlowDown("s3-express: account write IOPS exceeded")
            self._write_tokens -= 1.0

    def _admit_rate(self, read_iops: float, write_iops: float,
                    elapsed: float, now: float) -> FluidAdmission:
        ok_read = min(read_iops, self.read_iops)
        ok_write = min(write_iops, self.write_iops)
        return FluidAdmission(accepted_read=ok_read,
                              rejected_read=read_iops - ok_read,
                              accepted_write=ok_write,
                              rejected_write=write_iops - ok_write)
