"""Common machinery for serverless storage service simulators.

A :class:`StorageService` really stores payloads (the query engine keeps
its Parquet-like files and shuffle intermediates in them) and exposes two
request paths:

* a **discrete** path (:meth:`StorageService.get` / :meth:`put`), simulated
  per request with admission control, a sampled first-byte latency, and a
  data transfer over the network fabric — used by the query engine and
  latency experiments;
* a **fluid** path (:meth:`StorageService.offer_load`), which admits an
  aggregate request *rate* over a time step — used by the IOPS scaling
  experiments, whose paper originals issue tens of millions of requests
  (far beyond per-event simulation).

Every request — successes, throttles, timeouts, retries — is counted in
:class:`RequestStats`, mirroring the paper's client hook for cost
accounting (Section 4.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.network.fabric import Endpoint, Fabric, FluidLink
from repro.sim import Environment, RandomStreams
from repro.storage.errors import NoSuchKey
from repro.storage.latency import LatencyModel
from repro.telemetry import get_recorder


class RequestType(enum.Enum):
    """Kind of storage request, for accounting and pricing."""

    GET = "get"
    PUT = "put"


@dataclass
class StorageObject:
    """A stored value plus its metadata.

    ``size`` is the *logical* byte size used for timing and pricing; it may
    exceed ``len(payload)`` when the dataset scale knob models larger files
    than are physically materialized.
    """

    key: str
    payload: Any
    size: float
    created_at: float
    version: int = 0


@dataclass
class RequestStats:
    """Aggregate request accounting (the paper's client-side hook)."""

    counts: dict[tuple[str, str], int] = field(default_factory=dict)
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    #: Optional observer ``(op, outcome, count, nbytes)`` invoked on every
    #: record — the telemetry recorder hooks in here so one accounting
    #: site feeds both cost reporting and metrics.
    on_record: Optional[Any] = None

    def record(self, op: RequestType, outcome: str, count: int = 1,
               nbytes: float = 0.0) -> None:
        """Count ``count`` requests of ``op`` with the given outcome."""
        key = (op.value, outcome)
        self.counts[key] = self.counts.get(key, 0) + count
        if outcome == "ok":
            if op is RequestType.GET:
                self.bytes_read += nbytes
            else:
                self.bytes_written += nbytes
        if self.on_record is not None:
            self.on_record(op, outcome, count, nbytes)

    def total(self, op: Optional[RequestType] = None,
              outcome: Optional[str] = None) -> int:
        """Total requests matching the (optional) op/outcome filters."""
        total = 0
        for (op_name, out_name), count in self.counts.items():
            if op is not None and op_name != op.value:
                continue
            if outcome is not None and out_name != outcome:
                continue
            total += count
        return total

    @property
    def successes(self) -> int:
        """Requests that completed successfully."""
        return self.total(outcome="ok")

    @property
    def failures(self) -> int:
        """Requests that were throttled, timed out, or otherwise failed."""
        return self.total() - self.successes


@dataclass
class FluidAdmission:
    """Outcome of one fluid-load step: admitted/rejected request rates."""

    accepted_read: float
    rejected_read: float
    accepted_write: float
    rejected_write: float

    @property
    def read_error_rate(self) -> float:
        """Fraction of offered reads that were rejected."""
        offered = self.accepted_read + self.rejected_read
        return self.rejected_read / offered if offered else 0.0


class StorageService:
    """Base class for the storage simulators.

    Subclasses configure latency models, service-level bandwidth caps, and
    implement admission control via :meth:`_admit_one` (discrete path) and
    :meth:`_admit_rate` (fluid path).
    """

    #: Human-readable service name, overridden by subclasses.
    name = "storage"

    def __init__(self, env: Environment, fabric: Fabric,
                 rng: RandomStreams,
                 read_latency: LatencyModel, write_latency: LatencyModel,
                 read_bandwidth: Optional[float] = None,
                 write_bandwidth: Optional[float] = None,
                 max_item_size: Optional[float] = None) -> None:
        self.env = env
        self.fabric = fabric
        self.endpoint: Endpoint = fabric.endpoint(f"{self.name}-frontend")
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.read_link: Optional[FluidLink] = (
            fabric.link(read_bandwidth, name=f"{self.name}-read")
            if read_bandwidth else None)
        self.write_link: Optional[FluidLink] = (
            fabric.link(write_bandwidth, name=f"{self.name}-write")
            if write_bandwidth else None)
        self.max_item_size = max_item_size
        self.stats = RequestStats()
        self._rng = rng.stream(f"storage.{self.name}")
        self._objects: dict[str, StorageObject] = {}
        #: Chaos hook: ``hook(op, key, now)`` returning an error to
        #: inject for this request, or ``None``. Default: no injection.
        self.fault_hook = None
        recorder = get_recorder()
        self._telemetry = recorder if recorder.enabled else None
        if self._telemetry is not None:
            self.stats.on_record = self._record_metric

    def _record_metric(self, op: RequestType, outcome: str, count: int,
                       nbytes: float) -> None:
        """Telemetry observer wired into :class:`RequestStats`."""
        if count <= 0:
            return
        recorder = self._telemetry
        recorder.counter(
            f"storage.{self.name}.{op.value}.{outcome}").value += count
        if outcome in ("throttled", "timeout", "injected-fault"):
            recorder.event(self.env.now, f"storage.{outcome}",
                           category="storage", service=self.name,
                           op=op.value, count=count)

    # -- discrete request path ----------------------------------------------

    def check_fault(self, op: RequestType, key: str) -> None:
        """Raise an injected fault for this request, if one strikes.

        Injected errors count in :class:`RequestStats` like real
        failures (the request reached the service frontend), under the
        dedicated ``injected-fault`` outcome.
        """
        if self.fault_hook is None:
            return
        error = self.fault_hook(op.value, key, self.env.now)
        if error is not None:
            self.stats.record(op, "injected-fault")
            raise error

    def get(self, key: str, endpoint: Optional[Endpoint] = None):
        """Process: read the object at ``key``.

        Returns the :class:`StorageObject`. Raises the service's throttle
        error type if admission fails, :class:`NoSuchKey` if absent.
        """
        self.check_fault(RequestType.GET, key)
        self._admit_one(RequestType.GET, key)
        obj = self._objects.get(key)
        if obj is None:
            self.stats.record(RequestType.GET, "missing")
            raise NoSuchKey(key)
        latency = self.read_latency.sample_one(self._rng)
        yield self.env.timeout(latency)
        yield from self._transfer(RequestType.GET, obj.size, endpoint)
        self.stats.record(RequestType.GET, "ok", nbytes=obj.size)
        return obj

    def get_range(self, key: str, offset: float, length: float,
                  endpoint: Optional[Endpoint] = None):
        """Process: read ``length`` bytes of ``key`` starting at ``offset``.

        The simulated ranged GET (``Range: bytes=...``): billed and
        admitted like any GET, but only the requested bytes cross the
        fabric. The range is clamped to the object's logical size, so a
        tail chunk shorter than the request succeeds with fewer bytes.
        Returns a :class:`StorageObject` view whose ``size`` is the
        byte count actually read; the payload is sliced when the object
        physically materializes its logical bytes, and shared otherwise.
        """
        if offset < 0 or length < 0:
            raise ValueError(f"range [{offset}, +{length}) is invalid")
        self.check_fault(RequestType.GET, key)
        self._admit_one(RequestType.GET, key)
        obj = self._objects.get(key)
        if obj is None:
            self.stats.record(RequestType.GET, "missing")
            raise NoSuchKey(key)
        nbytes = max(0.0, min(float(length), obj.size - offset))
        latency = self.read_latency.sample_one(self._rng)
        yield self.env.timeout(latency)
        yield from self._transfer(RequestType.GET, nbytes, endpoint)
        self.stats.record(RequestType.GET, "ok", nbytes=nbytes)
        payload = obj.payload
        if isinstance(payload, (bytes, bytearray, str)) \
                and len(payload) == obj.size:
            payload = payload[int(offset):int(offset + nbytes)]
        return StorageObject(key=key, payload=payload, size=nbytes,
                             created_at=obj.created_at, version=obj.version)

    def put(self, key: str, payload: Any, size: Optional[float] = None,
            endpoint: Optional[Endpoint] = None):
        """Process: write ``payload`` under ``key``.

        ``size`` overrides the logical byte size (defaults to
        ``len(payload)`` when the payload supports it, else 0).
        Returns the stored :class:`StorageObject`.
        """
        nbytes = float(size if size is not None else _payload_size(payload))
        if self.max_item_size is not None and nbytes > self.max_item_size:
            self.stats.record(RequestType.PUT, "too-large")
            self._reject_too_large(nbytes)
        self.check_fault(RequestType.PUT, key)
        self._admit_one(RequestType.PUT, key)
        latency = self.write_latency.sample_one(self._rng)
        yield self.env.timeout(latency)
        yield from self._transfer(RequestType.PUT, nbytes, endpoint)
        previous = self._objects.get(key)
        obj = StorageObject(key=key, payload=payload, size=nbytes,
                            created_at=self.env.now,
                            version=(previous.version + 1) if previous else 0)
        self._objects[key] = obj
        self.stats.record(RequestType.PUT, "ok", nbytes=nbytes)
        return obj

    def delete(self, key: str) -> None:
        """Remove ``key`` if present (no latency modelled; free in AWS)."""
        self._objects.pop(key, None)

    def exists(self, key: str) -> bool:
        """Whether ``key`` currently holds an object."""
        return key in self._objects

    def list_keys(self, prefix: str = "") -> list[str]:
        """All keys starting with ``prefix``, sorted."""
        return sorted(key for key in self._objects if key.startswith(prefix))

    def head(self, key: str) -> StorageObject:
        """Metadata-only lookup (no latency modelled)."""
        obj = self._objects.get(key)
        if obj is None:
            raise NoSuchKey(key)
        return obj

    @property
    def object_count(self) -> int:
        """Number of stored objects."""
        return len(self._objects)

    @property
    def stored_bytes(self) -> float:
        """Sum of logical sizes of all stored objects."""
        return sum(obj.size for obj in self._objects.values())

    # -- fluid request path ---------------------------------------------------

    def offer_load(self, read_iops: float, write_iops: float,
                   elapsed: float, now: float | None = None) -> FluidAdmission:
        """Admit an aggregate request rate over ``elapsed`` seconds.

        ``now`` overrides the admission timestamp for time-stepped
        drivers that advance analytic time outside the event loop;
        defaults to the simulation clock. Updates partition/burst state
        and request accounting; returns the accepted and rejected rates.
        """
        admission = self._admit_rate(read_iops, write_iops, elapsed,
                                     self.env.now if now is None else now)
        self.stats.record(RequestType.GET, "ok",
                          count=int(admission.accepted_read * elapsed))
        self.stats.record(RequestType.GET, "throttled",
                          count=int(admission.rejected_read * elapsed))
        self.stats.record(RequestType.PUT, "ok",
                          count=int(admission.accepted_write * elapsed))
        self.stats.record(RequestType.PUT, "throttled",
                          count=int(admission.rejected_write * elapsed))
        return admission

    # -- vectorized latency sampling ------------------------------------------

    def sample_latencies(self, op: RequestType, count: int) -> np.ndarray:
        """Draw ``count`` request latencies without simulating each request.

        Used by the latency distribution experiment (Figure 10), whose
        paper original issues one million requests per service at low load
        — statistically equivalent to direct sampling.
        """
        model = self.read_latency if op is RequestType.GET else self.write_latency
        self.stats.record(op, "ok", count=count)
        return model.sample(self._rng, size=count)

    # -- subclass hooks ---------------------------------------------------------

    def _admit_one(self, op: RequestType, key: str) -> None:
        """Admission control for a single discrete request.

        Raise the service's throttle error to reject. Default: admit.
        """

    def _admit_rate(self, read_iops: float, write_iops: float,
                    elapsed: float, now: float) -> FluidAdmission:
        """Admission control for the fluid path. Default: admit everything."""
        return FluidAdmission(accepted_read=read_iops, rejected_read=0.0,
                              accepted_write=write_iops, rejected_write=0.0)

    def _reject_too_large(self, nbytes: float) -> None:
        from repro.storage.errors import ItemTooLarge
        raise ItemTooLarge(
            f"{self.name}: item of {nbytes:.0f} B exceeds the "
            f"{self.max_item_size:.0f} B limit")

    # -- helpers -----------------------------------------------------------------

    def _transfer(self, op: RequestType, nbytes: float,
                  endpoint: Optional[Endpoint]):
        """Move the payload bytes across the fabric (if any)."""
        if nbytes <= 0:
            return
        link = self.read_link if op is RequestType.GET else self.write_link
        links = (link,) if link is not None else ()
        if endpoint is None:
            # No client endpoint given: only the service-side cap applies.
            if link is None:
                return
            src = self.endpoint if op is RequestType.GET else None
            flow = (self.fabric.transfer(self.endpoint,
                                         self.fabric.endpoint("anon"),
                                         nbytes, links)
                    if src is not None else
                    self.fabric.transfer(self.fabric.endpoint("anon"),
                                         self.endpoint, nbytes, links))
            yield flow.done
            return
        if op is RequestType.GET:
            flow = self.fabric.transfer(self.endpoint, endpoint, nbytes, links)
        else:
            flow = self.fabric.transfer(endpoint, self.endpoint, nbytes, links)
        yield flow.done


def _payload_size(payload: Any) -> float:
    """Best-effort physical size of a payload in bytes."""
    if payload is None:
        return 0.0
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return float(len(payload))
    if isinstance(payload, str):
        return float(len(payload.encode("utf-8")))
    if hasattr(payload, "nbytes"):
        return float(payload.nbytes)
    return 0.0
