"""Error types raised by storage service simulators."""

from __future__ import annotations


class StorageError(Exception):
    """Base class for storage service failures."""

    #: Whether a client may retry the request.
    retryable = False


class NoSuchKey(StorageError):
    """The requested key/object/file does not exist."""


class SlowDown(StorageError):
    """S3-style 503 SlowDown: the prefix partition is over its request rate.

    Clients are expected to retry with exponential backoff (cf. the
    retry/backoff discussion around Figure 11).
    """

    retryable = True


class Throttled(StorageError):
    """DynamoDB/EFS-style throttling: provisioned or burst capacity exceeded."""

    retryable = True


class RequestTimeout(StorageError):
    """The request exceeded the client's configured timeout."""

    retryable = True


class ItemTooLarge(StorageError):
    """The value exceeds the service's item/object size limit."""
