"""Simulator of DynamoDB with on-demand capacity.

Calibration (Sections 2, 4.3):

* items are capped at 400 KiB;
* new on-demand tables serve slightly more than their documented quotas —
  the paper measures ~16K read and ~9.6K write IOPS;
* unused capacity accrues for up to 5 minutes of burst (Section 2);
* table throughput is saturated by a single client VM: ~380 MiB/s reads
  and ~30 MiB/s writes, with requests throttled or timing out once ~16
  clients contend;
* latency is slightly lower than S3 Express but more variable (Figure 10).
"""

from __future__ import annotations

from repro import units
from repro.network.fabric import Fabric
from repro.sim import Environment, RandomStreams
from repro.storage.base import FluidAdmission, RequestType, StorageService
from repro.storage.errors import Throttled
from repro.storage.latency import LatencyModel

#: Figure 10 calibration: low median, wider spread than S3 Express.
DDB_READ_LATENCY = LatencyModel(median=0.004, p95=0.009,
                                tail_probability=5e-5, tail_alpha=1.4,
                                ceiling=2.0)
DDB_WRITE_LATENCY = LatencyModel(median=0.006, p95=0.014,
                                 tail_probability=5e-5, tail_alpha=1.4,
                                 ceiling=2.0)

#: Figure 9 calibration: measured table-level IOPS for on-demand tables.
DDB_READ_IOPS = 16_000.0
DDB_WRITE_IOPS = 9_600.0

#: Up to 5 minutes of unused capacity accrue as burst (Section 2).
DDB_BURST_WINDOW_S = 300.0

#: Figure 8 calibration: table throughput ceilings.
DDB_READ_BANDWIDTH = 380 * units.MiB
DDB_WRITE_BANDWIDTH = 30 * units.MiB

DDB_MAX_ITEM_SIZE = 400 * units.KiB


class DynamoDB(StorageService):
    """On-demand DynamoDB table: low latency, strict IOPS and bandwidth."""

    name = "dynamodb"

    def __init__(self, env: Environment, fabric: Fabric, rng: RandomStreams,
                 read_iops: float = DDB_READ_IOPS,
                 write_iops: float = DDB_WRITE_IOPS) -> None:
        super().__init__(env, fabric, rng,
                         read_latency=DDB_READ_LATENCY,
                         write_latency=DDB_WRITE_LATENCY,
                         read_bandwidth=DDB_READ_BANDWIDTH,
                         write_bandwidth=DDB_WRITE_BANDWIDTH,
                         max_item_size=DDB_MAX_ITEM_SIZE)
        self.read_iops = float(read_iops)
        self.write_iops = float(write_iops)
        # Burst buckets start full: a new table has its full burst budget.
        self._read_tokens = self.read_iops * DDB_BURST_WINDOW_S
        self._write_tokens = self.write_iops * DDB_BURST_WINDOW_S
        self._tokens_at = env.now

    def _refresh_tokens(self) -> None:
        elapsed = self.env.now - self._tokens_at
        if elapsed <= 0:
            return
        cap_r = self.read_iops * DDB_BURST_WINDOW_S
        cap_w = self.write_iops * DDB_BURST_WINDOW_S
        self._read_tokens = min(cap_r, self._read_tokens + elapsed * self.read_iops)
        self._write_tokens = min(cap_w, self._write_tokens + elapsed * self.write_iops)
        self._tokens_at = self.env.now

    def _admit_one(self, op: RequestType, key: str) -> None:
        self._refresh_tokens()
        if op is RequestType.GET:
            if self._read_tokens < 1.0:
                self.stats.record(op, "throttled")
                raise Throttled("dynamodb: read capacity exceeded")
            self._read_tokens -= 1.0
        else:
            if self._write_tokens < 1.0:
                self.stats.record(op, "throttled")
                raise Throttled("dynamodb: write capacity exceeded")
            self._write_tokens -= 1.0

    def _admit_rate(self, read_iops: float, write_iops: float,
                    elapsed: float, now: float) -> FluidAdmission:
        # The sustained fluid rate is the table quota. The calibrated
        # quotas (16K/9.6K) already include the typical burst headroom
        # the paper measures over the documented 12K/4K on-demand limits;
        # request-level bursting remains modelled on the discrete path.
        ok_read = min(read_iops, self.read_iops)
        ok_write = min(write_iops, self.write_iops)
        return FluidAdmission(accepted_read=ok_read,
                              rejected_read=read_iops - ok_read,
                              accepted_write=ok_write,
                              rejected_write=write_iops - ok_write)
