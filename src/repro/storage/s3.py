"""Simulator of the S3 Standard object store.

Calibration (Sections 2.2, 4.3, 4.4 of the paper):

* request latency: read median 27 ms / p95 75 ms, write median 40 ms, with
  rare heavy-tail outliers up to ~10 s (374x the median over 1M requests);
* IOPS: 5.5K reads and 3.5K writes per prefix partition, with partitions
  splitting under sustained read load (~1 partition per ~6.5 min of
  sustained overload) and merging back after days of idleness;
* throughput: scales linearly with offered load (no practical service-side
  ceiling in the evaluated range — client NICs bottleneck first);
* requests are priced independently of size (1 B – 5 TiB).
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.network.fabric import Fabric
from repro.sim import Environment, RandomStreams
from repro.storage.base import (
    FluidAdmission,
    RequestType,
    StorageService,
)
from repro.storage.errors import SlowDown
from repro.storage.latency import LatencyModel
from repro.storage.partitions import PartitionTree

#: Figure 10 calibration: S3 Standard has the highest median and tail
#: latencies of all evaluated services.
S3_READ_LATENCY = LatencyModel(median=0.027, p95=0.075,
                               tail_probability=2e-4, tail_alpha=1.1,
                               ceiling=10.5)
S3_WRITE_LATENCY = LatencyModel(median=0.040, p95=0.110,
                                tail_probability=2e-4, tail_alpha=1.1,
                                ceiling=10.5)

#: S3 accepts objects from 1 B to 5 TiB; request price is size-independent.
S3_MAX_OBJECT_SIZE = 5 * units.TiB


class S3Standard(StorageService):
    """S3 Standard: scalable throughput, partition-limited IOPS."""

    name = "s3-standard"

    def __init__(self, env: Environment, fabric: Fabric, rng: RandomStreams,
                 partitions: Optional[PartitionTree] = None) -> None:
        super().__init__(env, fabric, rng,
                         read_latency=S3_READ_LATENCY,
                         write_latency=S3_WRITE_LATENCY,
                         read_bandwidth=None, write_bandwidth=None,
                         max_item_size=S3_MAX_OBJECT_SIZE)
        self.partitions = partitions if partitions is not None else PartitionTree()
        if self._telemetry is not None:
            self.partitions.enable_telemetry(
                self._telemetry, f"storage.{self.name}.prefix")

    @property
    def partition_count(self) -> int:
        """Current number of prefix partitions backing the bucket."""
        return self.partitions.partition_count

    def _admit_one(self, op: RequestType, key: str) -> None:
        is_read = op is RequestType.GET
        if not self.partitions.try_admit(key, is_read, self.env.now):
            self.stats.record(op, "throttled")
            raise SlowDown(
                f"s3: prefix partition over its "
                f"{'read' if is_read else 'write'} rate for key {key!r}")

    def _admit_rate(self, read_iops: float, write_iops: float,
                    elapsed: float, now: float) -> FluidAdmission:
        step = self.partitions.offer_load(read_iops, write_iops, elapsed,
                                          now=now)
        return FluidAdmission(accepted_read=step.accepted_read,
                              rejected_read=step.rejected_read,
                              accepted_write=step.accepted_write,
                              rejected_write=step.rejected_write)

    def prewarm(self, partition_count: int) -> None:
        """Pre-split the bucket to ``partition_count`` partitions.

        Models a bucket that has seen sustained load (e.g. the "warm"
        bucket of the Figure 15 shuffle experiment). The resulting
        partitions tile the key space evenly, as they would after S3
        rebalanced a uniformly loaded bucket.
        """
        if partition_count > self.partitions.partition_count:
            self.partitions.retile(partition_count, now=self.env.now)
