"""Calibrated request latency distributions.

Figure 10 of the paper shows per-service latency distributions over one
million 1 KiB requests. We model each service/operation pair as a
lognormal body (parameterized by its median and 95th percentile) mixed
with a Pareto tail that produces the rare extreme outliers S3 Standard
exhibits (slowest read ~374x the median).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LatencyModel:
    """Lognormal-body + Pareto-tail latency distribution.

    Parameters
    ----------
    median:
        Median latency in seconds.
    p95:
        95th-percentile latency in seconds; must exceed ``median``.
    tail_probability:
        Chance that a request falls into the heavy Pareto tail.
    tail_alpha:
        Pareto shape for tail samples (smaller = heavier tail).
    ceiling:
        Hard upper bound on any sample (service-side request deadline).
    """

    median: float
    p95: float
    tail_probability: float = 0.0
    tail_alpha: float = 1.5
    ceiling: float = 30.0

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ValueError(f"median must be positive, got {self.median}")
        if self.p95 < self.median:
            raise ValueError("p95 must be >= median")
        if not 0 <= self.tail_probability < 1:
            raise ValueError("tail_probability must be in [0, 1)")

    @property
    def sigma(self) -> float:
        """Lognormal shape parameter implied by the median/p95 pair."""
        if self.p95 == self.median:
            return 0.0
        # For X ~ LogNormal(mu, sigma): p95 = median * exp(1.645 * sigma).
        return math.log(self.p95 / self.median) / 1.6448536269514722

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` latencies (seconds) as a numpy array."""
        mu = math.log(self.median)
        body = rng.lognormal(mean=mu, sigma=self.sigma, size=size)
        if self.tail_probability > 0:
            in_tail = rng.random(size) < self.tail_probability
            n_tail = int(in_tail.sum())
            if n_tail:
                # Tail samples start at the p95 and decay as Pareto(alpha).
                tail = self.p95 * (1.0 + rng.pareto(self.tail_alpha, size=n_tail))
                body[in_tail] = tail
        return np.minimum(body, self.ceiling)

    def sample_one(self, rng: np.random.Generator) -> float:
        """Draw a single latency (seconds)."""
        return float(self.sample(rng, size=1)[0])


def percentile_summary(samples: np.ndarray) -> dict[str, float]:
    """Summary statistics used when reporting Figure 10 style results."""
    return {
        "p50": float(np.percentile(samples, 50)),
        "p95": float(np.percentile(samples, 95)),
        "p99": float(np.percentile(samples, 99)),
        "max": float(np.max(samples)),
        "mean": float(np.mean(samples)),
    }
