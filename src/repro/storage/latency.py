"""Calibrated request latency distributions.

Figure 10 of the paper shows per-service latency distributions over one
million 1 KiB requests. We model each service/operation pair as a
lognormal body (parameterized by its median and 95th percentile) mixed
with a Pareto tail that produces the rare extreme outliers S3 Standard
exhibits (slowest read ~374x the median).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LatencyModel:
    """Lognormal-body + Pareto-tail latency distribution.

    Parameters
    ----------
    median:
        Median latency in seconds.
    p95:
        95th-percentile latency in seconds; must exceed ``median``.
    tail_probability:
        Chance that a request falls into the heavy Pareto tail.
    tail_alpha:
        Pareto shape for tail samples (smaller = heavier tail).
    ceiling:
        Hard upper bound on any sample (service-side request deadline).
    """

    median: float
    p95: float
    tail_probability: float = 0.0
    tail_alpha: float = 1.5
    ceiling: float = 30.0

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ValueError(f"median must be positive, got {self.median}")
        if self.p95 < self.median:
            raise ValueError("p95 must be >= median")
        if not 0 <= self.tail_probability < 1:
            raise ValueError("tail_probability must be in [0, 1)")
        # Distribution parameters are fixed for the model's lifetime but
        # were recomputed (two ``math.log`` calls) on every sample — and
        # first-byte latency is drawn once per simulated request. The
        # dataclass is frozen, so stash them via object.__setattr__.
        if self.p95 == self.median:
            sigma = 0.0
        else:
            # For X ~ LogNormal(mu, sigma): p95 = median * exp(1.645 * sigma).
            sigma = math.log(self.p95 / self.median) / 1.6448536269514722
        object.__setattr__(self, "_sigma", sigma)
        object.__setattr__(self, "_mu", math.log(self.median))

    @property
    def sigma(self) -> float:
        """Lognormal shape parameter implied by the median/p95 pair."""
        return self._sigma

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` latencies (seconds) as a numpy array."""
        body = rng.lognormal(mean=self._mu, sigma=self._sigma, size=size)
        if self.tail_probability > 0:
            in_tail = rng.random(size) < self.tail_probability
            n_tail = int(in_tail.sum())
            if n_tail:
                # Tail samples start at the p95 and decay as Pareto(alpha).
                tail = self.p95 * (1.0 + rng.pareto(self.tail_alpha, size=n_tail))
                body[in_tail] = tail
        return np.minimum(body, self.ceiling)

    def sample_one(self, rng: np.random.Generator) -> float:
        """Draw a single latency (seconds).

        Scalar twin of ``sample(size=1)``: it draws from ``rng`` in the
        same order and quantity (one lognormal, one uniform when the
        tail is enabled, one Pareto when taken), so the two paths yield
        bit-identical streams.
        """
        body = rng.lognormal(mean=self._mu, sigma=self._sigma)
        if self.tail_probability > 0 and rng.random() < self.tail_probability:
            body = self.p95 * (1.0 + rng.pareto(self.tail_alpha))
        return float(body) if body < self.ceiling else float(self.ceiling)

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` latencies, RNG-stream-identical to ``n``×
        :meth:`sample_one`.

        This is *not* :meth:`sample`: with a tail enabled, ``sample``
        draws all lognormals, then all uniforms, then all Paretos
        (three batched passes over the bit stream), while repeated
        ``sample_one`` interleaves the draws per request. This method
        keeps the ``sample_one`` stream contract so a replay can swap
        per-event draws for a batch without perturbing any later draw:

        * tail disabled — one lognormal per request either way, and
          numpy's batched sampler consumes the bit stream element-wise,
          so a single vectorized draw is bit-identical;
        * tail enabled — the draw *count* per request is data-dependent
          (the uniform decides whether a Pareto is consumed), so the
          only stream-faithful order is the per-request loop.

        The equivalence test sweeps both regimes.
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if self.tail_probability == 0.0:
            body = rng.lognormal(mean=self._mu, sigma=self._sigma, size=n)
            return np.minimum(body, self.ceiling)
        out = np.empty(n, dtype=np.float64)
        for index in range(n):
            out[index] = self.sample_one(rng)
        return out


def percentile_summary(samples: np.ndarray) -> dict[str, float]:
    """Summary statistics used when reporting Figure 10 style results."""
    return {
        "p50": float(np.percentile(samples, 50)),
        "p95": float(np.percentile(samples, 95)),
        "p99": float(np.percentile(samples, 99)),
        "max": float(np.max(samples)),
        "mean": float(np.mean(samples)),
    }
