"""Simulator of Amazon EFS with elastic throughput.

Calibration (Sections 2, 4.3):

* per-filesystem throughput quotas of 20 GiB/s reads and 5 GiB/s writes —
  the paper's throughput measurements converge to these (Figure 8);
* achievable IOPS fall short of the documented per-filesystem quotas
  (250K reads / 50K writes) by more than an order of magnitude; the
  measured ceilings are modeled here as ~15K reads and ~2K writes;
* sharding over two filesystems doubles read IOPS but writes do not
  scale, and reads do not scale beyond two filesystems (Figure 9);
* read latency is low and consistent like S3 Express; write latency is
  2-3x higher (Figure 10).
"""

from __future__ import annotations

from repro import units
from repro.network.fabric import Fabric
from repro.sim import Environment, RandomStreams
from repro.storage.base import FluidAdmission, RequestType, StorageService
from repro.storage.errors import Throttled
from repro.storage.latency import LatencyModel

#: Figure 10 calibration.
EFS_READ_LATENCY = LatencyModel(median=0.005, p95=0.007,
                                tail_probability=2e-5, tail_alpha=1.5,
                                ceiling=2.0)
EFS_WRITE_LATENCY = LatencyModel(median=0.014, p95=0.020,
                                 tail_probability=2e-5, tail_alpha=1.5,
                                 ceiling=2.0)

#: Documented elastic-throughput quotas per filesystem [23].
EFS_READ_BANDWIDTH_QUOTA = 20 * units.GiB
EFS_WRITE_BANDWIDTH_QUOTA = 5 * units.GiB

#: Documented per-filesystem IOPS quotas (missed by >10x in practice).
EFS_READ_IOPS_QUOTA = 250_000.0
EFS_WRITE_IOPS_QUOTA = 50_000.0

#: Measured, achievable per-filesystem IOPS ceilings (Figure 9).
EFS_READ_IOPS_ACHIEVABLE = 15_000.0
EFS_WRITE_IOPS_ACHIEVABLE = 2_000.0

#: Read IOPS double when sharding over two filesystems, then stop scaling.
EFS_MAX_SCALING_FILESYSTEMS = 2


class EFS(StorageService):
    """Elastic-throughput EFS, optionally sharded over several filesystems."""

    name = "efs"

    def __init__(self, env: Environment, fabric: Fabric, rng: RandomStreams,
                 filesystem_count: int = 1) -> None:
        if filesystem_count < 1:
            raise ValueError("filesystem_count must be >= 1")
        self.filesystem_count = filesystem_count
        scaling = min(filesystem_count, EFS_MAX_SCALING_FILESYSTEMS)
        super().__init__(
            env, fabric, rng,
            read_latency=EFS_READ_LATENCY,
            write_latency=EFS_WRITE_LATENCY,
            read_bandwidth=EFS_READ_BANDWIDTH_QUOTA * filesystem_count,
            write_bandwidth=EFS_WRITE_BANDWIDTH_QUOTA * filesystem_count,
            max_item_size=None)
        self.read_iops = EFS_READ_IOPS_ACHIEVABLE * scaling
        # Writes do not benefit from sharding in the paper's measurements.
        self.write_iops = EFS_WRITE_IOPS_ACHIEVABLE
        self._read_tokens = self.read_iops
        self._write_tokens = self.write_iops
        self._tokens_at = env.now

    def _refresh_tokens(self) -> None:
        elapsed = self.env.now - self._tokens_at
        if elapsed <= 0:
            return
        self._read_tokens = min(self.read_iops,
                                self._read_tokens + elapsed * self.read_iops)
        self._write_tokens = min(self.write_iops,
                                 self._write_tokens + elapsed * self.write_iops)
        self._tokens_at = self.env.now

    def _admit_one(self, op: RequestType, key: str) -> None:
        self._refresh_tokens()
        if op is RequestType.GET:
            if self._read_tokens < 1.0:
                self.stats.record(op, "throttled")
                raise Throttled("efs: read IOPS ceiling reached")
            self._read_tokens -= 1.0
        else:
            if self._write_tokens < 1.0:
                self.stats.record(op, "throttled")
                raise Throttled("efs: write IOPS ceiling reached")
            self._write_tokens -= 1.0

    def _admit_rate(self, read_iops: float, write_iops: float,
                    elapsed: float, now: float) -> FluidAdmission:
        ok_read = min(read_iops, self.read_iops)
        ok_write = min(write_iops, self.write_iops)
        return FluidAdmission(accepted_read=ok_read,
                              rejected_read=read_iops - ok_read,
                              accepted_write=ok_write,
                              rejected_write=write_iops - ok_write)
