"""Storage client with timeouts, retries, and exponential backoff.

Models the paper's S3 client configuration for the IOPS scaling
experiment (Section 4.4.1): a 200 ms request timeout with exponential
backoff — "an eager but not aggressive retry behaviour". Clients whose
requests are repeatedly rejected wait exponentially longer and turn into
stragglers, which is exactly the effect behind the throughput dips of
Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.network.fabric import Endpoint
from repro.sim import AnyOf, Environment
from repro.storage.base import StorageService
from repro.storage.errors import RequestTimeout, StorageError


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side timeout and backoff configuration."""

    request_timeout: float = 0.2
    max_attempts: int = 8
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap: float = 10.0

    def backoff(self, attempt: int) -> float:
        """Backoff delay before retry number ``attempt`` (1-based)."""
        delay = self.backoff_base * self.backoff_multiplier ** (attempt - 1)
        return min(delay, self.backoff_cap)


@dataclass
class ClientStats:
    """Per-client request accounting, including failures and retries."""

    attempts: int = 0
    successes: int = 0
    timeouts: int = 0
    throttles: int = 0
    giveups: int = 0
    backoff_time: float = 0.0
    outcomes: dict[str, int] = field(default_factory=dict)


class RetryingClient:
    """Wraps a storage service with timeout/retry semantics."""

    def __init__(self, env: Environment, service: StorageService,
                 policy: Optional[RetryPolicy] = None,
                 endpoint: Optional[Endpoint] = None) -> None:
        self.env = env
        self.service = service
        self.policy = policy if policy is not None else RetryPolicy()
        self.endpoint = endpoint
        self.stats = ClientStats()
        #: Chaos hook: ``hook(op, key, now)`` returning an error to
        #: inject client-side, or ``None``. Injected errors go through
        #: the same retry/backoff classification as real ones.
        self.fault_hook = None

    def get(self, key: str):
        """Process: read ``key`` with retries. Returns the StorageObject."""
        result = yield from self._with_retries("get", key, None, None)
        return result

    def get_range(self, key: str, offset: float, length: float):
        """Process: ranged read with retries. Returns the StorageObject."""
        result = yield from self._with_retries("get-range", key, None, None,
                                               offset=offset, length=length)
        return result

    def put(self, key: str, payload, size: Optional[float] = None):
        """Process: write ``key`` with retries. Returns the StorageObject."""
        result = yield from self._with_retries("put", key, payload, size)
        return result

    def _attempt(self, op: str, key: str, payload, size, offset, length):
        if op == "get":
            return self.service.get(key, endpoint=self.endpoint)
        if op == "get-range":
            return self.service.get_range(key, offset, length,
                                          endpoint=self.endpoint)
        return self.service.put(key, payload, size=size, endpoint=self.endpoint)

    def _with_retries(self, op: str, key: str, payload, size,
                      offset: float = 0.0, length: float = 0.0):
        last_error: Optional[StorageError] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            self.stats.attempts += 1
            try:
                result = yield from self._timed(op, key, payload, size,
                                                offset, length)
                self.stats.successes += 1
                return result
            except RequestTimeout as exc:
                self.stats.timeouts += 1
                last_error = exc
            except StorageError as exc:
                if not exc.retryable:
                    raise
                self.stats.throttles += 1
                last_error = exc
            if attempt < self.policy.max_attempts:
                delay = self.policy.backoff(attempt)
                self.stats.backoff_time += delay
                yield self.env.timeout(delay)
        self.stats.giveups += 1
        raise last_error if last_error is not None else RequestTimeout(key)

    def _timed(self, op: str, key: str, payload, size, offset=0.0,
               length=0.0):
        """Race one service request against the client timeout."""
        if self.fault_hook is not None:
            # Ranged reads classify as plain GETs for fault targeting,
            # so chaos plans written against "get" cover both.
            hook_op = "get" if op.startswith("get") else op
            error = self.fault_hook(hook_op, key, self.env.now)
            if error is not None:
                raise error
        request = self.env.process(
            self._attempt(op, key, payload, size, offset, length),
            name=f"storage-{op}")
        deadline = self.env.timeout(self.policy.request_timeout)
        yield AnyOf(self.env, [request, deadline])
        if request.processed:
            if not request.ok:
                raise request.value
            return request.value
        # Timed out: abandon the in-flight request.
        if request.is_alive:
            request.interrupt("client-timeout")
            request.defuse()
        raise RequestTimeout(f"{op} {key!r} exceeded "
                             f"{self.policy.request_timeout * 1000:.0f} ms")
