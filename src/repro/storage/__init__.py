"""Serverless storage service simulators.

Implements functional (bytes actually stored) simulators of the four AWS
serverless storage options the paper evaluates:

* :class:`~repro.storage.s3.S3Standard` — object store with prefix
  partitions, per-partition IOPS admission (5.5K reads / 3.5K writes),
  gradual partition splitting under sustained load, merging after extended
  idle, and a heavy-tailed latency distribution.
* :class:`~repro.storage.s3express.S3Express` — the zonal, pre-warmed
  variant: no per-prefix quota, far higher account IOPS, low consistent
  latency, but per-byte transfer charges.
* :class:`~repro.storage.dynamodb.DynamoDB` — on-demand key-value store:
  400 KiB item cap, table-level IOPS quotas with burst capacity, low but
  variable latency, strict throughput ceilings.
* :class:`~repro.storage.efs.EFS` — elastic network filesystem: balanced
  latency, hard per-filesystem throughput (20 / 5 GiB/s) and IOPS ceilings
  well below the documented quotas.

All services count every request — including failures and retries — through
a client hook, mirroring the paper's cost-accounting methodology
(Section 4.1).
"""

from repro.storage.base import (
    RequestStats,
    RequestType,
    StorageObject,
    StorageService,
)
from repro.storage.errors import (
    ItemTooLarge,
    NoSuchKey,
    RequestTimeout,
    SlowDown,
    StorageError,
    Throttled,
)
from repro.storage.latency import LatencyModel
from repro.storage.s3 import S3Standard
from repro.storage.s3express import S3Express
from repro.storage.dynamodb import DynamoDB
from repro.storage.efs import EFS
from repro.storage.client import RetryingClient, RetryPolicy

__all__ = [
    "DynamoDB",
    "EFS",
    "ItemTooLarge",
    "LatencyModel",
    "NoSuchKey",
    "RequestStats",
    "RequestTimeout",
    "RequestType",
    "RetryPolicy",
    "RetryingClient",
    "S3Express",
    "S3Standard",
    "SlowDown",
    "StorageError",
    "StorageObject",
    "StorageService",
    "Throttled",
]
