"""S3 prefix-partition dynamics: IOPS admission, splitting, merging.

Section 4.4 of the paper characterizes S3's object-key namespace as
horizontally partitioned into prefix partitions, each serving ~5.5K read
and ~3.5K write IOPS. Under sustained near-quota load, partitions split
(gradually — the paper observes one partition roughly every ~6.5 minutes,
1 -> 5 partitions over ~26 minutes of ramping load). After extended idle,
partitions merge back: all five survive a full day of no load, two survive
three more days, and IOPS returns to single-partition level after ~4.5–5
days.

The model here:

* a :class:`PartitionTree` over the key hash space; each leaf is a
  :class:`Partition` with independent read/write token-bucket admission;
* each partition accrues *heat* while its offered read load sustains above
  a utilization threshold; when heat crosses ``split_after_s`` seconds, the
  partition splits in two and both children restart cold;
* each partition tracks its last-busy time; a background check merges the
  tree stepwise after ``first_merge_idle_s`` and fully after
  ``full_merge_idle_s`` of idleness (loads below a floor do not count as
  busy, so the hourly/daily probes of Figure 13 do not keep the bucket
  warm).
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field

#: Documented per-prefix-partition request rates (requests/second) [34].
READ_IOPS_PER_PARTITION = 5_500.0
WRITE_IOPS_PER_PARTITION = 3_500.0

#: A partition must sustain >= this fraction of its read quota to heat up.
SPLIT_UTILIZATION_THRESHOLD = 0.90

#: Sustained-overload seconds required before a partition splits. With a
#: linearly ramping load this yields the ~26 min 1 -> 5 staircase of
#: Figure 11.
SPLIT_AFTER_S = 390.0

#: Minimum time between two splits anywhere in the bucket. S3 "only
#: allocates resources linearly and with delay as a form of admission
#: control" (Section 4.4.1) — overload never fans out into a splitting
#: cascade.
MIN_SPLIT_INTERVAL_S = 390.0

#: Offered load below this fraction of one partition's quota does not mark
#: the partition busy (short measurement probes stay "idle").
BUSY_UTILIZATION_FLOOR = 0.50

#: Seconds of sustained above-floor load required before a partition
#: counts as busy for merge purposes. Short probe bursts (Figure 13 runs
#: three ~30 s repetitions per interval) never reach this, so probing
#: does not keep an otherwise idle bucket warm.
MIN_SUSTAINED_BUSY_S = 300.0

#: Idle thresholds for merging (Figure 13): five partitions survive a full
#: day; a first merge leaves two partitions after ~1.5 days; a final merge
#: returns to one after ~4.5 days.
FIRST_MERGE_IDLE_S = 1.5 * 86_400.0
FULL_MERGE_IDLE_S = 4.5 * 86_400.0

#: Partitions kept after the first (partial) merge step.
PARTITIONS_AFTER_FIRST_MERGE = 2

#: Sliding window for the discrete-path admitted-IOPS estimate.
IOPS_WINDOW_S = 1.0


def key_point(key: str) -> float:
    """Map a key to a stable point in [0, 1) of the hash space."""
    digest = hashlib.md5(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass
class Partition:
    """A leaf of the prefix-partition tree: one slice of the key space."""

    low: float
    high: float
    #: Stable identity assigned by the owning tree at creation time
    #: (memory addresses must never key or order anything).
    uid: int = 0
    read_quota: float = READ_IOPS_PER_PARTITION
    write_quota: float = WRITE_IOPS_PER_PARTITION
    heat_s: float = 0.0
    heat_updated_at: float = 0.0
    busy_credit_s: float = 0.0
    last_busy_at: float = 0.0
    #: Token-bucket levels for discrete admission (ops, up to 1 s of burst).
    read_tokens: float = field(default=READ_IOPS_PER_PARTITION)
    write_tokens: float = field(default=WRITE_IOPS_PER_PARTITION)
    tokens_updated_at: float = 0.0

    @property
    def width(self) -> float:
        """Fraction of the key space this partition owns."""
        return self.high - self.low

    def owns(self, point: float) -> bool:
        """Whether a hash-space point falls in this partition."""
        return self.low <= point < self.high

    def refresh_tokens(self, now: float) -> None:
        """Refill discrete-admission token buckets up to one second's worth."""
        elapsed = now - self.tokens_updated_at
        if elapsed <= 0:
            return
        self.read_tokens = min(self.read_quota,
                               self.read_tokens + elapsed * self.read_quota)
        self.write_tokens = min(self.write_quota,
                                self.write_tokens + elapsed * self.write_quota)
        self.tokens_updated_at = now


@dataclass
class FluidStep:
    """Admission outcome of one fluid step at the tree level."""

    accepted_read: float
    rejected_read: float
    accepted_write: float
    rejected_write: float


class PartitionTree:
    """The set of prefix partitions of one bucket, with split/merge logic."""

    def __init__(self,
                 split_after_s: float = SPLIT_AFTER_S,
                 split_threshold: float = SPLIT_UTILIZATION_THRESHOLD,
                 min_split_interval_s: float = MIN_SPLIT_INTERVAL_S,
                 first_merge_idle_s: float = FIRST_MERGE_IDLE_S,
                 full_merge_idle_s: float = FULL_MERGE_IDLE_S,
                 read_quota: float = READ_IOPS_PER_PARTITION,
                 write_quota: float = WRITE_IOPS_PER_PARTITION) -> None:
        self.split_after_s = split_after_s
        self.split_threshold = split_threshold
        self.min_split_interval_s = min_split_interval_s
        self.first_merge_idle_s = first_merge_idle_s
        self.full_merge_idle_s = full_merge_idle_s
        self.read_quota = read_quota
        self.write_quota = write_quota
        self._partition_seq = 0
        self.partitions: list[Partition] = [self._fresh(0.0, 1.0)]
        self.split_count = 0
        self.merge_count = 0
        self._last_split_at = float("-inf")
        #: Telemetry recorder + metric-name prefix, injected by the owning
        #: service via :meth:`enable_telemetry` (the tree itself has no
        #: clock or service identity). ``None`` => recording disabled.
        self.telemetry = None
        self.telemetry_prefix = "partitions"
        #: Per-partition admit timestamps inside the sliding IOPS window,
        #: keyed by ``(partition.uid, direction)``.
        self._admit_log: dict[tuple[int, str], deque] = {}

    def enable_telemetry(self, recorder, prefix: str) -> None:
        """Record per-prefix admission decisions/levels under ``prefix``."""
        self.telemetry = recorder
        self.telemetry_prefix = prefix

    def _sample_partition(self, partition: Partition, now: float) -> None:
        """Per-prefix token/IOPS time series, named by partition index."""
        index = self.partitions.index(partition)
        base = f"{self.telemetry_prefix}.p{index}"
        self.telemetry.timeseries(f"{base}.read_tokens",
                                  min_dt=0.005).sample(
            now, partition.read_tokens)
        self.telemetry.timeseries(f"{base}.write_tokens",
                                  min_dt=0.005).sample(
            now, partition.write_tokens)

    def _sample_iops(self, partition: Partition, direction: str,
                     now: float) -> None:
        """Sliding-window admitted-rate estimate for the discrete path."""
        log = self._admit_log.setdefault((partition.uid, direction), deque())
        log.append(now)
        cutoff = now - IOPS_WINDOW_S
        while log and log[0] < cutoff:
            log.popleft()
        index = self.partitions.index(partition)
        self.telemetry.timeseries(
            f"{self.telemetry_prefix}.p{index}.{direction}_iops",
            min_dt=0.05).sample(now, len(log) / IOPS_WINDOW_S)

    def _note_resize(self, now: float, kind: str) -> None:
        self.telemetry.event(now, f"partition.{kind}", category="storage",
                             prefix=self.telemetry_prefix,
                             partitions=len(self.partitions))
        self.telemetry.timeseries(
            f"{self.telemetry_prefix}.partition_count").sample(
            now, float(len(self.partitions)))

    def _fresh(self, low: float, high: float) -> Partition:
        self._partition_seq += 1
        return Partition(low=low, high=high, uid=self._partition_seq,
                         read_quota=self.read_quota,
                         write_quota=self.write_quota,
                         read_tokens=self.read_quota,
                         write_tokens=self.write_quota)

    @property
    def partition_count(self) -> int:
        """Number of leaf partitions currently serving the bucket."""
        return len(self.partitions)

    @property
    def total_read_iops(self) -> float:
        """Aggregate read quota across all partitions."""
        return sum(p.read_quota for p in self.partitions)

    @property
    def total_write_iops(self) -> float:
        """Aggregate write quota across all partitions."""
        return sum(p.write_quota for p in self.partitions)

    def partition_for(self, key: str) -> Partition:
        """The partition owning ``key``."""
        point = key_point(key)
        for partition in self.partitions:
            if partition.owns(point):
                return partition
        # point == 1.0 cannot occur; guard for float oddities.
        return self.partitions[-1]

    # -- discrete admission ----------------------------------------------------

    def try_admit(self, key: str, is_read: bool, now: float) -> bool:
        """Admit one request against the owning partition's token bucket."""
        self.maybe_merge(now)
        partition = self.partition_for(key)
        partition.refresh_tokens(now)
        tokens = partition.read_tokens if is_read else partition.write_tokens
        direction = "read" if is_read else "write"
        if tokens < 1.0:
            # Heavy discrete traffic also counts toward heat/busy state.
            self._note_pressure(partition, now)
            if self.telemetry is not None:
                self.telemetry.counter(
                    f"{self.telemetry_prefix}.{direction}.throttled"
                ).value += 1
                self._sample_partition(partition, now)
            return False
        if is_read:
            partition.read_tokens -= 1.0
        else:
            partition.write_tokens -= 1.0
        if self.telemetry is not None:
            self.telemetry.counter(
                f"{self.telemetry_prefix}.{direction}.admitted").value += 1
            self._sample_partition(partition, now)
            self._sample_iops(partition, direction, now)
        return True

    def _note_pressure(self, partition: Partition, now: float) -> None:
        partition.last_busy_at = now

    # -- fluid admission ---------------------------------------------------------

    def offer_load(self, read_iops: float, write_iops: float,
                   elapsed: float, now: float) -> FluidStep:
        """Admit an aggregate request rate spread evenly over the key space.

        Keys in the paper's microbenchmarks are uniformly distributed, so
        each partition sees load proportional to its key-space width.
        Partitions heat up (and eventually split) while their offered read
        load sustains above the utilization threshold.
        """
        self.maybe_merge(now)
        accepted_r = rejected_r = accepted_w = rejected_w = 0.0
        ripe: list[Partition] = []
        for index, partition in enumerate(self.partitions):
            offered_r = read_iops * partition.width
            offered_w = write_iops * partition.width
            ok_r = min(offered_r, partition.read_quota)
            ok_w = min(offered_w, partition.write_quota)
            accepted_r += ok_r
            rejected_r += offered_r - ok_r
            accepted_w += ok_w
            rejected_w += offered_w - ok_w
            if self.telemetry is not None:
                self.telemetry.timeseries(
                    f"{self.telemetry_prefix}.p{index}.read_iops",
                    min_dt=1.0).sample(now, ok_r)
            read_util = offered_r / partition.read_quota
            write_util = offered_w / partition.write_quota
            # Heat and busy credit decay with *wall time* since the last
            # observation, so sparse probing (e.g. hourly) accumulates
            # nothing across the idle gaps between probes.
            idle_gap = max(0.0, now - partition.heat_updated_at - elapsed)
            partition.heat_s = max(0.0, partition.heat_s - idle_gap)
            partition.busy_credit_s = max(
                0.0, partition.busy_credit_s - idle_gap)
            partition.heat_updated_at = now
            if max(read_util, write_util) >= BUSY_UTILIZATION_FLOOR:
                partition.busy_credit_s += elapsed
            else:
                partition.busy_credit_s = max(
                    0.0, partition.busy_credit_s - elapsed)
            if partition.busy_credit_s >= MIN_SUSTAINED_BUSY_S:
                partition.last_busy_at = now
            # Only *read* pressure drives splits: the paper could not scale
            # write IOPS beyond one partition with write-only load.
            if read_util >= self.split_threshold:
                partition.heat_s += elapsed
                if partition.heat_s >= self.split_after_s:
                    ripe.append(partition)
            else:
                # Cooling: heat also decays under light load.
                partition.heat_s = max(0.0, partition.heat_s - elapsed)
        # Splits are serialized: at most one per min_split_interval across
        # the whole bucket. Section 2.2: partitions that serve excessive
        # load "are split and spread evenly across the fleet" — so each
        # scaling step leaves n+1 evenly loaded partitions (all fresh:
        # further splits need renewed sustained overload).
        if ripe and now - self._last_split_at >= self.min_split_interval_s:
            self.retile(self.partition_count + 1, now)
            self.split_count += 1
            self._last_split_at = now
            if self.telemetry is not None:
                self._note_resize(now, "split")
        return FluidStep(accepted_read=accepted_r, rejected_read=rejected_r,
                         accepted_write=accepted_w, rejected_write=rejected_w)

    # -- split / merge -------------------------------------------------------------

    def split(self, partition: Partition, now: float) -> tuple[Partition, Partition]:
        """Split ``partition`` at its key-space midpoint."""
        if partition not in self.partitions:
            raise ValueError("partition is not a live leaf of this tree")
        mid = (partition.low + partition.high) / 2.0
        left = self._fresh(partition.low, mid)
        right = self._fresh(mid, partition.high)
        left.last_busy_at = right.last_busy_at = now
        left.tokens_updated_at = right.tokens_updated_at = now
        index = self.partitions.index(partition)
        self.partitions[index:index + 1] = [left, right]
        self.split_count += 1
        if self.telemetry is not None:
            self._note_resize(now, "split")
        return left, right

    def maybe_merge(self, now: float) -> None:
        """Collapse partitions whose idle time crossed the merge thresholds."""
        if len(self.partitions) == 1:
            return
        idle = now - max(p.last_busy_at for p in self.partitions)
        if idle >= self.full_merge_idle_s:
            merged = self._fresh(0.0, 1.0)
            merged.last_busy_at = max(p.last_busy_at for p in self.partitions)
            merged.tokens_updated_at = now
            self.merge_count += len(self.partitions) - 1
            self.partitions = [merged]
            if self.telemetry is not None:
                self._note_resize(now, "merge")
        elif (idle >= self.first_merge_idle_s
              and len(self.partitions) > PARTITIONS_AFTER_FIRST_MERGE):
            self._collapse_to(PARTITIONS_AFTER_FIRST_MERGE, now)
            if self.telemetry is not None:
                self._note_resize(now, "merge")

    def _collapse_to(self, target: int, now: float) -> None:
        """Merge adjacent partitions until only ``target`` remain."""
        self.merge_count += len(self.partitions) - target
        self.retile(target, now)

    def retile(self, count: int, now: float) -> None:
        """Replace the tree with ``count`` equal-width fresh partitions.

        Used for merging, and for pre-warming a bucket to a known
        partition count (the "warm bucket" setups of Figure 15).
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        last_busy = max(p.last_busy_at for p in self.partitions)
        width = 1.0 / count
        fresh = []
        for i in range(count):
            partition = self._fresh(i * width, (i + 1) * width)
            partition.last_busy_at = last_busy
            partition.tokens_updated_at = now
            fresh.append(partition)
        self.partitions = fresh
