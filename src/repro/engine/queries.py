"""The paper's query suite: TPC-H Q1, Q6, Q12 and TPCx-BB Q3.

These queries are I/O-heavy and deliberately avoid optimizations that
would hide resource behaviour (Section 3.1). Each builder returns a
:class:`~repro.engine.plan.PhysicalPlan`; fragment counts can be forced
to mirror the paper's configurations (201 workers for Q6, 284/320 for
Q12, etc.) or left to the coordinator's burst-aware sizing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datagen.dates import date_to_days
from repro.engine.expressions import (
    And,
    Between,
    BinOp,
    Col,
    Compare,
    IfThenElse,
    InSet,
    Lit,
)
from repro.engine.operators import (
    AggSpec,
    FilterOperator,
    HashAggregateOperator,
    HashJoinOperator,
    LimitOperator,
    MapUdfOperator,
    ProjectOperator,
    SortOperator,
    register_udf,
)
from repro.engine.plan import (
    PhysicalPlan,
    PipelineSpec,
    ResultSink,
    ShuffleSink,
    ShuffleSource,
    TableSource,
)
from repro.formats.batch import RecordBatch
from repro.formats.schema import DataType, Field, Schema


def tpch_q1(scan_fragments: Optional[int] = None) -> PhysicalPlan:
    """TPC-H Q1: scan-heavy aggregation over lineitem."""
    cutoff = date_to_days(1998, 9, 2)
    columns = ["l_returnflag", "l_linestatus", "l_quantity",
               "l_extendedprice", "l_discount", "l_tax", "l_shipdate"]
    disc_price = BinOp("*", Col("l_extendedprice"),
                       BinOp("-", Lit(1.0), Col("l_discount")))
    charge = BinOp("*", disc_price, BinOp("+", Lit(1.0), Col("l_tax")))
    aggs = [
        AggSpec("sum_qty", "sum", Col("l_quantity")),
        AggSpec("sum_base_price", "sum", Col("l_extendedprice")),
        AggSpec("sum_disc_price", "sum", disc_price),
        AggSpec("sum_charge", "sum", charge),
        AggSpec("avg_qty", "avg", Col("l_quantity")),
        AggSpec("avg_price", "avg", Col("l_extendedprice")),
        AggSpec("avg_disc", "avg", Col("l_discount")),
        AggSpec("count_order", "count"),
    ]
    scan = PipelineSpec(
        id="scan",
        source=TableSource(table="lineitem", columns=columns,
                           zone_map_column="l_shipdate",
                           zone_map_high=cutoff),
        operators=[
            FilterOperator(Compare("<=", Col("l_shipdate"), Lit(cutoff))),
            HashAggregateOperator(["l_returnflag", "l_linestatus"], aggs,
                                  mode="partial"),
        ],
        sink=ShuffleSink(partition_key="l_returnflag"),
        fragments=scan_fragments)
    final = PipelineSpec(
        id="final",
        source=ShuffleSource(inputs={"main": "scan"}, main="main"),
        operators=[
            HashAggregateOperator(["l_returnflag", "l_linestatus"], aggs,
                                  mode="final"),
            SortOperator(["l_returnflag", "l_linestatus"]),
        ],
        sink=ResultSink(), depends_on=["scan"], fragments=1)
    return PhysicalPlan(query_id="tpch-q1", pipelines=[scan, final])


def tpch_q6(scan_fragments: Optional[int] = None) -> PhysicalPlan:
    """TPC-H Q6: selective scan plus global revenue aggregation."""
    low = date_to_days(1994, 1, 1)
    high = date_to_days(1995, 1, 1)
    columns = ["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"]
    predicate = And(
        Compare(">=", Col("l_shipdate"), Lit(low)),
        Compare("<", Col("l_shipdate"), Lit(high)),
        Between(Col("l_discount"), 0.05, 0.07),
        Compare("<", Col("l_quantity"), Lit(24.0)),
    )
    revenue = BinOp("*", Col("l_extendedprice"), Col("l_discount"))
    scan = PipelineSpec(
        id="scan",
        source=TableSource(table="lineitem", columns=columns,
                           zone_map_column="l_shipdate",
                           zone_map_low=low, zone_map_high=high),
        operators=[
            FilterOperator(predicate),
            HashAggregateOperator([], [AggSpec("revenue", "sum", revenue)],
                                  mode="partial"),
        ],
        sink=ShuffleSink(), fragments=scan_fragments)
    final = PipelineSpec(
        id="final",
        source=ShuffleSource(inputs={"main": "scan"}, main="main"),
        operators=[
            HashAggregateOperator([], [AggSpec("revenue", "sum", revenue)],
                                  mode="final"),
        ],
        sink=ResultSink(), depends_on=["scan"], fragments=1)
    return PhysicalPlan(query_id="tpch-q6", pipelines=[scan, final])


def tpch_q12(lineitem_fragments: Optional[int] = None,
             orders_fragments: Optional[int] = None,
             join_fragments: Optional[int] = None,
             barrier_on_join: bool = False) -> PhysicalPlan:
    """TPC-H Q12: shuffle join of lineitem and orders by order key."""
    low = date_to_days(1994, 1, 1)
    high = date_to_days(1995, 1, 1)
    lineitem_columns = ["l_orderkey", "l_shipmode", "l_shipdate",
                        "l_commitdate", "l_receiptdate"]
    predicate = And(
        InSet(Col("l_shipmode"), ["MAIL", "SHIP"]),
        Compare("<", Col("l_commitdate"), Col("l_receiptdate")),
        Compare("<", Col("l_shipdate"), Col("l_commitdate")),
        Compare(">=", Col("l_receiptdate"), Lit(low)),
        Compare("<", Col("l_receiptdate"), Lit(high)),
    )
    scan_lineitem = PipelineSpec(
        id="scan_lineitem",
        source=TableSource(table="lineitem", columns=lineitem_columns,
                           zone_map_column="l_receiptdate",
                           zone_map_low=low, zone_map_high=high),
        operators=[
            FilterOperator(predicate),
            ProjectOperator([
                ("l_orderkey", Col("l_orderkey"), DataType.INT64),
                ("l_shipmode", Col("l_shipmode"), DataType.STRING),
            ]),
        ],
        sink=ShuffleSink(partition_key="l_orderkey"),
        fragments=lineitem_fragments)
    scan_orders = PipelineSpec(
        id="scan_orders",
        source=TableSource(table="orders",
                           columns=["o_orderkey", "o_orderpriority"]),
        sink=ShuffleSink(partition_key="o_orderkey"),
        fragments=orders_fragments)
    high_priority = InSet(Col("o_orderpriority"), ["1-URGENT", "2-HIGH"])
    join = PipelineSpec(
        id="join",
        source=ShuffleSource(
            inputs={"main": "scan_lineitem", "orders": "scan_orders"},
            main="main"),
        operators=[
            HashJoinOperator(probe_key="l_orderkey", build_side="orders",
                             build_key="o_orderkey"),
            ProjectOperator([
                ("l_shipmode", Col("l_shipmode"), DataType.STRING),
                ("high_line", IfThenElse(high_priority, Lit(1.0), Lit(0.0)),
                 DataType.FLOAT64),
                ("low_line", IfThenElse(high_priority, Lit(0.0), Lit(1.0)),
                 DataType.FLOAT64),
            ]),
            HashAggregateOperator(
                ["l_shipmode"],
                [AggSpec("high_line_count", "sum", Col("high_line")),
                 AggSpec("low_line_count", "sum", Col("low_line"))],
                mode="partial"),
        ],
        sink=ShuffleSink(partition_key="l_shipmode"),
        depends_on=["scan_lineitem", "scan_orders"],
        fragments=join_fragments, barrier=barrier_on_join)
    final = PipelineSpec(
        id="final",
        source=ShuffleSource(inputs={"main": "join"}, main="main"),
        operators=[
            HashAggregateOperator(
                ["l_shipmode"],
                [AggSpec("high_line_count", "sum", Col("high_line_count")),
                 AggSpec("low_line_count", "sum", Col("low_line_count"))],
                mode="final"),
            SortOperator(["l_shipmode"]),
        ],
        sink=ResultSink(), depends_on=["join"], fragments=1)
    return PhysicalPlan(query_id="tpch-q12",
                        pipelines=[scan_lineitem, scan_orders, join, final])


#: TPCx-BB Q3 parameters: target category and session lookback length.
BB_Q3_CATEGORY = 3
BB_Q3_LOOKBACK = 5
BB_Q3_TOP_K = 30


def _bb_q3_sessionize(batch: RecordBatch, sides: dict) -> RecordBatch:
    """Per-user sessionization UDF for TPCx-BB Q3.

    For every purchase of an item in the target category, emit the
    distinct items viewed within the user's last ``BB_Q3_LOOKBACK``
    preceding clicks.
    """
    item = sides["item"]
    category = dict(zip(item.column("i_item_sk"),
                        item.column("i_category_id")))
    users = batch.column("wcs_user_sk")
    dates = batch.column("wcs_click_date_sk")
    times = batch.column("wcs_click_time_sk")
    items = batch.column("wcs_item_sk")
    sales = batch.column("wcs_sales_sk")
    order = np.lexsort((times, dates, users))
    emitted: list[int] = []
    window: list[int] = []
    current_user = None
    for row in order:
        user = users[row]
        if user != current_user:
            current_user = user
            window = []
        if sales[row] > 0 and category.get(items[row]) == BB_Q3_CATEGORY:
            # sorted(): the dedup set would otherwise emit in hash order.
            emitted.extend(sorted(set(window[-BB_Q3_LOOKBACK:])))
        window.append(int(items[row]))
    schema = Schema([Field("item_sk", DataType.INT64)])
    return RecordBatch(schema,
                       {"item_sk": np.array(emitted, dtype=np.int64)})


register_udf("bb_q3_sessionize", _bb_q3_sessionize)


def tpcxbb_q3(scan_fragments: Optional[int] = None,
              session_fragments: Optional[int] = None) -> PhysicalPlan:
    """TPCx-BB Q3: sessionized viewed-before-purchase item counts."""
    scan = PipelineSpec(
        id="scan_clicks",
        source=TableSource(
            table="clickstreams",
            columns=["wcs_click_date_sk", "wcs_click_time_sk",
                     "wcs_user_sk", "wcs_item_sk", "wcs_sales_sk"]),
        sink=ShuffleSink(partition_key="wcs_user_sk"),
        fragments=scan_fragments)
    sessionize = PipelineSpec(
        id="sessionize",
        source=ShuffleSource(inputs={"main": "scan_clicks"}, main="main"),
        side_tables={"item": "item"},
        operators=[
            MapUdfOperator("bb_q3_sessionize"),
            HashAggregateOperator(
                ["item_sk"], [AggSpec("views", "count")], mode="partial"),
        ],
        sink=ShuffleSink(partition_key="item_sk"),
        depends_on=["scan_clicks"], fragments=session_fragments)
    final = PipelineSpec(
        id="final",
        source=ShuffleSource(inputs={"main": "sessionize"}, main="main"),
        operators=[
            HashAggregateOperator(
                ["item_sk"], [AggSpec("views", "count")], mode="final"),
            SortOperator(["views", "item_sk"], ascending=[False, True]),
            LimitOperator(BB_Q3_TOP_K),
        ],
        sink=ResultSink(), depends_on=["sessionize"], fragments=1)
    return PhysicalPlan(query_id="tpcxbb-q3",
                        pipelines=[scan, sessionize, final])


QUERY_BUILDERS = {
    "tpch-q1": tpch_q1,
    "tpch-q6": tpch_q6,
    "tpch-q12": tpch_q12,
    "tpcxbb-q3": tpcxbb_q3,
}
