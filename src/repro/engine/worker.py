"""The query worker function.

A worker executes one pipeline *fragment*: it reads its share of the
input (table partitions or shuffle slices), runs the operator chain
vectorized, and writes its output (hash-partitioned shuffle object or
result part). It reports request counts, byte volumes, and per-phase
timings back to the coordinator (the engine traces runtime information
with query context — Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.barrier import BarrierRegistry
from repro.engine.cost import CpuCostModel
from repro.engine.io import IoStack
from repro.engine.plan import (
    IdentityMemo,
    PipelineSpec,
    ShuffleSink,
    ShuffleSource,
    TableSource,
)
from repro.engine.shuffle import ShuffleReader, ShuffleWriter
from repro.faas.function import FunctionContext
from repro.formats.batch import RecordBatch
from repro.formats.columnar import ColumnarCache, read_file
from repro.storage.base import StorageService
from repro.telemetry import get_recorder


@dataclass
class WorkerRuntime:
    """Services a worker binary is linked against."""

    storage: dict[str, StorageService]
    barriers: BarrierRegistry
    cost_model: CpuCostModel
    #: Storage service name used for shuffle intermediates and results.
    intermediate_service: str = "s3-standard"
    #: Shared footer/chunk decode cache; ``None`` disables caching.
    columnar_cache: ColumnarCache | None = None
    #: Per-runtime pipeline-spec parse memo — runtime-owned (not
    #: module-global) so shard-parallel domains never share parse state.
    spec_cache: IdentityMemo = field(
        default_factory=lambda: IdentityMemo(PipelineSpec.from_dict,
                                             max_entries=128))


@dataclass
class WorkerReport:
    """What a fragment sends back to the coordinator."""

    pipeline: str
    fragment: int
    rows_out: int
    requests: int
    read_requests: int
    write_requests: int
    retried: int
    bytes_read: float
    bytes_written: float
    request_sizes: list[float] = field(default_factory=list)
    phases: dict[str, float] = field(default_factory=dict)
    result_key: str | None = None
    #: Retry attempt number of this execution (0 = primary).
    attempt: int = 0
    #: Whether this execution was a speculative (hedged) duplicate.
    hedged: bool = False


def result_key(query_id: str, fragment: int) -> str:
    """Object key of one result part."""
    return f"results/{query_id}/part-{fragment:05d}"


def make_worker_handler(runtime: WorkerRuntime):
    """Build the worker function handler bound to ``runtime``."""

    def worker_handler(context: FunctionContext, payload: dict):
        return (yield from _execute_fragment(runtime, context, payload))

    worker_handler.__name__ = "skyrise_worker"
    return worker_handler


def _execute_fragment(runtime: WorkerRuntime, context: FunctionContext,
                      payload: dict):
    env = context.env
    query_id = payload["query_id"]
    pipeline = runtime.spec_cache.get(payload["pipeline"])
    fragment = payload["fragment"]
    base_storage = runtime.storage[payload["table_service"]]
    shuffle_storage = runtime.storage[payload["intermediate_service"]]
    base_io = IoStack(env, base_storage, context.endpoint,
                      cache=runtime.columnar_cache)
    shuffle_io = IoStack(env, shuffle_storage, context.endpoint,
                         cache=runtime.columnar_cache)
    phases: dict[str, float] = {}
    recorder = get_recorder()
    wspan = None
    if recorder.enabled:
        wspan = recorder.start_span(
            f"worker {pipeline.id}/{fragment}", env.now,
            parent=context.trace_ctx, category="worker",
            attrs={"pipeline": pipeline.id, "fragment": fragment,
                   "attempt": payload.get("attempt", 0),
                   "hedged": payload.get("hedged", False)})
        base_io.span = wspan
        shuffle_io.span = wspan

    # Synchronization barrier: all fragments of the pipeline rendezvous
    # before consuming their source (isolates the subflow for timing).
    # ``arrive`` (not ``wait``) tolerates re-executed fragments: a retry
    # can stand in for its crashed predecessor, and a late duplicate
    # passes straight through an already-released barrier.
    if pipeline.barrier:
        barrier = runtime.barriers.get(query_id, pipeline.id,
                                       payload["fragment_count"])
        yield barrier.arrive()

    # Side tables: read fully by every fragment (small dimensions).
    sides: dict[str, RecordBatch] = {}
    for name, spec in payload.get("side_tables", {}).items():
        sides[name] = yield from _read_partitions(
            runtime, context, base_io, spec["partitions"],
            spec["columns"], spec["read_fraction"], None)

    # Source.
    started = env.now
    if isinstance(pipeline.source, TableSource):
        batch = yield from _read_partitions(
            runtime, context, base_io, payload["partitions"],
            pipeline.source.columns, payload["read_fraction"],
            _zone_filter(pipeline.source))
        phases["scan"] = env.now - started
    else:
        batch, shuffle_sides = yield from _read_shuffle(
            runtime, context, shuffle_io, query_id, pipeline.source,
            payload["producer_fragments"], fragment)
        sides.update(shuffle_sides)
        phases["shuffle_read"] = env.now - started
    if wspan is not None:
        recorder.record_span(
            "phase " + ("scan" if isinstance(pipeline.source, TableSource)
                        else "shuffle_read"),
            started, env.now, parent=wspan, category="phase")

    # Operator chain.
    compute_started = env.now
    for operator in pipeline.operators:
        op_started = env.now
        rows_in = len(batch) if wspan is not None else 0
        bytes_in = batch.logical_bytes
        yield context.compute(runtime.cost_model.cpu_seconds(
            operator.cost_class, batch.logical_bytes))
        batch = operator.execute(batch, sides)
        if wspan is not None:
            recorder.record_span(
                type(operator).__name__, op_started, env.now, parent=wspan,
                category="operator",
                attrs={"rows_in": rows_in, "rows_out": len(batch),
                       "bytes_in": bytes_in})
    phases["compute"] = env.now - compute_started
    if wspan is not None:
        recorder.record_span("phase compute", compute_started, env.now,
                             parent=wspan, category="phase")

    # Sink.
    sink_started = env.now
    out_key = None
    if isinstance(pipeline.sink, ShuffleSink):
        yield context.compute(runtime.cost_model.cpu_seconds(
            "encode", batch.logical_bytes))
        writer = ShuffleWriter(shuffle_io, query_id, pipeline.id, fragment,
                               pipeline.sink.partition_key,
                               payload["out_partitions"],
                               epoch=payload.get("epoch", 0))
        yield from writer.write(batch)
    else:
        yield context.compute(runtime.cost_model.cpu_seconds(
            "encode", batch.logical_bytes))
        out_key = result_key(query_id, fragment)
        from repro.formats.columnar import write_file
        yield from shuffle_io.write_object(
            out_key, write_file(batch), max(batch.logical_bytes, 1.0))
    phases["write"] = env.now - sink_started
    if wspan is not None:
        recorder.record_span("phase write", sink_started, env.now,
                             parent=wspan, category="phase")

    # Request-handling CPU overhead.
    total_requests = base_io.stats.requests + shuffle_io.stats.requests
    overhead = runtime.cost_model.request_overhead_s * total_requests
    if overhead > 0:
        yield context.compute(overhead)

    if wspan is not None:
        wspan.finish(
            env.now, rows_out=len(batch), requests=total_requests,
            bytes_read=(base_io.stats.bytes_read
                        + shuffle_io.stats.bytes_read),
            bytes_written=(base_io.stats.bytes_written
                           + shuffle_io.stats.bytes_written))
    return WorkerReport(
        pipeline=pipeline.id, fragment=fragment, rows_out=len(batch),
        requests=total_requests,
        read_requests=(base_io.stats.read_requests
                       + shuffle_io.stats.read_requests),
        write_requests=(base_io.stats.write_requests
                        + shuffle_io.stats.write_requests),
        retried=base_io.stats.retried + shuffle_io.stats.retried,
        bytes_read=base_io.stats.bytes_read + shuffle_io.stats.bytes_read,
        bytes_written=(base_io.stats.bytes_written
                       + shuffle_io.stats.bytes_written),
        request_sizes=(base_io.stats.request_sizes
                       + shuffle_io.stats.request_sizes),
        phases=phases, result_key=out_key,
        attempt=payload.get("attempt", 0),
        hedged=payload.get("hedged", False))


def _zone_filter(source: TableSource):
    if source.zone_map_column is None:
        return None
    low = source.zone_map_low
    high = source.zone_map_high

    def overlaps(chunk_min, chunk_max) -> bool:
        if chunk_min is None or chunk_max is None:
            return True
        if low is not None and chunk_max < low:
            return False
        if high is not None and chunk_min > high:
            return False
        return True

    return {source.zone_map_column: overlaps}


def _read_partitions(runtime: WorkerRuntime, context: FunctionContext,
                     io: IoStack, partitions: list[dict],
                     columns: list[str], read_fraction: float,
                     zone_filters):
    """Process: scan assigned partition files into one batch.

    The I/O thread pool keeps the network drawing continuously: all
    assigned partitions are fetched back-to-back *before* any decoding
    starts, so the token bucket gets no idle refill pauses between
    partitions — which is what makes exceeding the burst budget costly
    (Figure 14). Decoding runs once the data is in.
    """
    env = context.env
    del env
    if not partitions:
        raise ValueError("fragment was assigned zero partitions")
    objects = []
    for info in partitions:
        obj = yield from io.read_object(
            info["key"],
            logical_bytes=info["logical_bytes"] * read_fraction)
        objects.append(obj)
    batches: list[RecordBatch] = []
    for info, obj in zip(partitions, objects):
        logical = info["logical_bytes"] * read_fraction
        yield context.compute(runtime.cost_model.cpu_seconds(
            "decode", logical))
        piece = read_file(obj.payload, columns=columns,
                          zone_map_filters=zone_filters, cache=io.cache,
                          cache_key=(obj.key, obj.version))
        piece.logical_bytes = logical
        batches.append(piece)
    return RecordBatch.concat(batches)


def _read_shuffle(runtime: WorkerRuntime, context: FunctionContext,
                  io: IoStack, query_id: str, source: ShuffleSource,
                  producer_fragments: dict[str, int], fragment: int):
    """Process: read this fragment's slice of every shuffle input."""
    batches: dict[str, RecordBatch] = {}
    for name, upstream in source.inputs.items():
        reader = ShuffleReader(io, query_id, upstream,
                               producer_fragments[upstream], fragment)
        batch = yield from reader.read()
        yield context.compute(runtime.cost_model.cpu_seconds(
            "decode", batch.logical_bytes))
        batches[name] = batch
    main = batches.pop(source.main)
    return main, batches
