"""Scalar expressions evaluated vectorized over record batches.

Expressions form a small serializable AST (physical plans travel as JSON
between the driver, coordinator, and workers — Section 3.2). ``evaluate``
returns a numpy array aligned with the batch's rows.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.formats.batch import RecordBatch

_COMPARATORS: dict[str, Callable[[np.ndarray, Any], np.ndarray]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_ARITHMETIC: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class Expr:
    """Base expression node."""

    def evaluate(self, batch: RecordBatch) -> np.ndarray:
        """Vectorized evaluation against a batch."""
        raise NotImplementedError

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of all columns this expression reads."""
        return set()


class Col(Expr):
    """A column reference."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, batch: RecordBatch) -> np.ndarray:
        return batch.column(self.name)

    def to_dict(self) -> dict:
        return {"kind": "col", "name": self.name}

    def columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"Col({self.name!r})"


class Lit(Expr):
    """A literal constant."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, batch: RecordBatch) -> np.ndarray:
        return np.full(len(batch), self.value)

    def to_dict(self) -> dict:
        return {"kind": "lit", "value": self.value}

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


class BinOp(Expr):
    """Arithmetic between two expressions."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _ARITHMETIC:
            raise ValueError(f"unknown arithmetic op {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, batch: RecordBatch) -> np.ndarray:
        return _ARITHMETIC[self.op](self.left.evaluate(batch),
                                    self.right.evaluate(batch))

    def to_dict(self) -> dict:
        return {"kind": "binop", "op": self.op,
                "left": self.left.to_dict(), "right": self.right.to_dict()}

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


class Compare(Expr):
    """Comparison producing a boolean mask."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _COMPARATORS:
            raise ValueError(f"unknown comparator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, batch: RecordBatch) -> np.ndarray:
        return _COMPARATORS[self.op](self.left.evaluate(batch),
                                     self.right.evaluate(batch))

    def to_dict(self) -> dict:
        return {"kind": "compare", "op": self.op,
                "left": self.left.to_dict(), "right": self.right.to_dict()}

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


class And(Expr):
    """Logical conjunction of boolean expressions."""

    def __init__(self, *terms: Expr) -> None:
        if not terms:
            raise ValueError("And needs at least one term")
        self.terms = terms

    def evaluate(self, batch: RecordBatch) -> np.ndarray:
        result = self.terms[0].evaluate(batch).astype(bool)
        for term in self.terms[1:]:
            result = result & term.evaluate(batch).astype(bool)
        return result

    def to_dict(self) -> dict:
        return {"kind": "and", "terms": [t.to_dict() for t in self.terms]}

    def columns(self) -> set[str]:
        found: set[str] = set()
        for term in self.terms:
            found |= term.columns()
        return found


class Or(Expr):
    """Logical disjunction of boolean expressions."""

    def __init__(self, *terms: Expr) -> None:
        if not terms:
            raise ValueError("Or needs at least one term")
        self.terms = terms

    def evaluate(self, batch: RecordBatch) -> np.ndarray:
        result = self.terms[0].evaluate(batch).astype(bool)
        for term in self.terms[1:]:
            result = result | term.evaluate(batch).astype(bool)
        return result

    def to_dict(self) -> dict:
        return {"kind": "or", "terms": [t.to_dict() for t in self.terms]}

    def columns(self) -> set[str]:
        found: set[str] = set()
        for term in self.terms:
            found |= term.columns()
        return found


class Not(Expr):
    """Logical negation."""

    def __init__(self, term: Expr) -> None:
        self.term = term

    def evaluate(self, batch: RecordBatch) -> np.ndarray:
        return ~self.term.evaluate(batch).astype(bool)

    def to_dict(self) -> dict:
        return {"kind": "not", "term": self.term.to_dict()}

    def columns(self) -> set[str]:
        return self.term.columns()


class Between(Expr):
    """Inclusive range check: low <= expr <= high."""

    def __init__(self, expr: Expr, low: Any, high: Any) -> None:
        self.expr = expr
        self.low = low
        self.high = high

    def evaluate(self, batch: RecordBatch) -> np.ndarray:
        values = self.expr.evaluate(batch)
        return (values >= self.low) & (values <= self.high)

    def to_dict(self) -> dict:
        return {"kind": "between", "expr": self.expr.to_dict(),
                "low": self.low, "high": self.high}

    def columns(self) -> set[str]:
        return self.expr.columns()


class InSet(Expr):
    """Set membership check."""

    def __init__(self, expr: Expr, values: list) -> None:
        self.expr = expr
        self.values = list(values)

    def evaluate(self, batch: RecordBatch) -> np.ndarray:
        column = self.expr.evaluate(batch)
        return np.isin(column, self.values)

    def to_dict(self) -> dict:
        return {"kind": "in", "expr": self.expr.to_dict(),
                "values": self.values}

    def columns(self) -> set[str]:
        return self.expr.columns()


class IfThenElse(Expr):
    """Vectorized conditional (SQL CASE WHEN)."""

    def __init__(self, condition: Expr, then: Expr, otherwise: Expr) -> None:
        self.condition = condition
        self.then = then
        self.otherwise = otherwise

    def evaluate(self, batch: RecordBatch) -> np.ndarray:
        return np.where(self.condition.evaluate(batch).astype(bool),
                        self.then.evaluate(batch),
                        self.otherwise.evaluate(batch))

    def to_dict(self) -> dict:
        return {"kind": "if", "condition": self.condition.to_dict(),
                "then": self.then.to_dict(),
                "otherwise": self.otherwise.to_dict()}

    def columns(self) -> set[str]:
        return (self.condition.columns() | self.then.columns()
                | self.otherwise.columns())


def expr_from_dict(data: dict) -> Expr:
    """Rebuild an expression from its :meth:`Expr.to_dict` form."""
    kind = data["kind"]
    if kind == "col":
        return Col(data["name"])
    if kind == "lit":
        return Lit(data["value"])
    if kind == "binop":
        return BinOp(data["op"], expr_from_dict(data["left"]),
                     expr_from_dict(data["right"]))
    if kind == "compare":
        return Compare(data["op"], expr_from_dict(data["left"]),
                       expr_from_dict(data["right"]))
    if kind == "and":
        return And(*[expr_from_dict(t) for t in data["terms"]])
    if kind == "or":
        return Or(*[expr_from_dict(t) for t in data["terms"]])
    if kind == "not":
        return Not(expr_from_dict(data["term"]))
    if kind == "between":
        return Between(expr_from_dict(data["expr"]), data["low"], data["high"])
    if kind == "in":
        return InSet(expr_from_dict(data["expr"]), data["values"])
    if kind == "if":
        return IfThenElse(expr_from_dict(data["condition"]),
                          expr_from_dict(data["then"]),
                          expr_from_dict(data["otherwise"]))
    raise ValueError(f"unknown expression kind {kind!r}")
