"""Query execution traces.

Section 3.2: "the engine traces runtime information with query context.
This information can be compared between distributed workers, as their
clocks are tightly synchronized." In the simulation, every worker shares
the one virtual clock, so per-fragment spans are exactly comparable.
This module turns a query's invocation records into a trace — per-stage
spans with worker start/finish times — plus a text Gantt rendering and
straggler analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.faas.function import InvocationRecord
from repro.telemetry import get_recorder


@dataclass
class WorkerSpan:
    """One worker invocation's lifecycle timestamps."""

    pipeline: str
    fragment: int
    requested_at: float
    started_at: float
    finished_at: float
    cold: bool
    phases: dict[str, float] = field(default_factory=dict)
    attempt: int = 0
    hedged: bool = False

    @property
    def init_duration(self) -> float:
        """Queueing + startup before the handler ran."""
        return self.started_at - self.requested_at

    @property
    def duration(self) -> float:
        """Handler execution time."""
        return self.finished_at - self.started_at


@dataclass
class QueryTrace:
    """All worker spans of one query execution."""

    query_id: str
    spans: list[WorkerSpan] = field(default_factory=list)

    def stage(self, pipeline: str) -> list[WorkerSpan]:
        """Spans of one pipeline, ordered by fragment."""
        return sorted((span for span in self.spans
                       if span.pipeline == pipeline),
                      key=lambda span: span.fragment)

    def pipelines(self) -> list[str]:
        """Pipeline ids in first-appearance order."""
        seen: list[str] = []
        for span in self.spans:
            if span.pipeline not in seen:
                seen.append(span.pipeline)
        return seen

    def stragglers(self, pipeline: str, factor: float = 2.0
                   ) -> list[WorkerSpan]:
        """Spans slower than ``factor`` x the stage median duration."""
        spans = self.stage(pipeline)
        if not spans:
            return []
        median = float(np.median([span.duration for span in spans]))
        return [span for span in spans if span.duration > factor * median]

    def skew(self, pipeline: str) -> float:
        """Max/median duration ratio of a stage (1.0 = perfectly even)."""
        spans = self.stage(pipeline)
        if not spans:
            return 1.0
        durations = [span.duration for span in spans]
        return max(durations) / max(float(np.median(durations)), 1e-12)

    def makespan(self) -> float:
        """End-to-end span across all workers."""
        if not self.spans:
            return 0.0
        return (max(span.finished_at for span in self.spans)
                - min(span.requested_at for span in self.spans))

    def render_gantt(self, width: int = 64) -> str:
        """ASCII Gantt chart: one row per fragment, grouped by stage."""
        if not self.spans:
            return f"{self.query_id}: (no spans)"
        t0 = min(span.requested_at for span in self.spans)
        t1 = max(span.finished_at for span in self.spans)
        scale = (t1 - t0) or 1.0
        lines = [f"query {self.query_id}: {scale:.3f}s total"]
        for pipeline in self.pipelines():
            lines.append(f"[{pipeline}]")
            for span in self.stage(pipeline):
                start = int((span.requested_at - t0) / scale * (width - 1))
                init_end = int((span.started_at - t0) / scale * (width - 1))
                end = int((span.finished_at - t0) / scale * (width - 1))
                row = [" "] * width
                for i in range(start, max(init_end, start + 1)):
                    row[i] = "."
                for i in range(init_end, max(end, init_end) + 1):
                    row[i] = "#"
                # Marker precedence: a hedged duplicate ('h') or retry
                # ('r') is more informative than its start temperature.
                if span.hedged:
                    marker = "h"
                elif span.attempt > 0:
                    marker = "r"
                elif span.cold:
                    marker = "C"
                else:
                    marker = "w"
                lines.append(f"  {span.fragment:>4} {marker} |{''.join(row)}|")
        return "\n".join(lines)


def trace_from_records(query_id: str,
                       records: list[InvocationRecord]) -> QueryTrace:
    """Build a trace from the platform's invocation records.

    Worker invocations are recognized by their :class:`WorkerReport`
    responses; coordinator and invoker records are skipped.
    """
    trace = QueryTrace(query_id=query_id)
    for record in records:
        report = record.response
        if not hasattr(report, "pipeline") or not hasattr(report, "fragment"):
            continue
        trace.spans.append(WorkerSpan(
            pipeline=report.pipeline, fragment=report.fragment,
            requested_at=record.requested_at, started_at=record.started_at,
            finished_at=record.finished_at, cold=record.cold,
            phases=dict(report.phases),
            attempt=getattr(report, "attempt", 0),
            hedged=getattr(report, "hedged", False)))
    return trace


def hedge_candidates(elapsed_by_fragment: dict[int, float],
                     completed_durations: list[float], total: int,
                     factor: float = 3.0, quorum: float = 0.5,
                     min_wait_s: float = 0.5, now: float | None = None,
                     pipeline: str | None = None) -> list[int]:
    """Straggler detection for speculative re-execution.

    A fragment qualifies once a quorum of its stage has completed and
    its elapsed time exceeds ``factor`` x the median completed duration
    (never less than ``min_wait_s``). This is the live-span analogue of
    :meth:`QueryTrace.stragglers`, usable while the stage is running.

    When a telemetry recorder is active and ``now`` is given, each scan
    that names candidates is recorded as a ``hedge.candidates`` event, so
    speculative-execution triggers are visible in traces, not only in
    final reports.
    """
    if not completed_durations:
        return []
    needed = max(1, math.ceil(quorum * total))
    if len(completed_durations) < needed:
        return []
    median = float(np.median(completed_durations))
    threshold = max(min_wait_s, factor * median)
    candidates = sorted(fragment
                        for fragment, elapsed in elapsed_by_fragment.items()
                        if elapsed > threshold)
    if candidates and now is not None:
        recorder = get_recorder()
        if recorder.enabled:
            recorder.event(
                now, "hedge.candidates", category="recovery",
                pipeline=pipeline, fragments=candidates,
                median_s=median, threshold_s=threshold,
                completed=len(completed_durations), total=total)
    return candidates
