"""Synchronization barriers for isolating query subflows.

Section 3.2: "the engine supports the injection of synchronization
barriers into its execution ... implemented as an extra operator that
polls a shared queue for a barrier condition." The simulation equivalent
is an event-based rendezvous: the last arriving fragment releases all
waiters, so e.g. all shuffle reads start at the same instant and the
shuffle subflow can be timed in isolation (Figure 15).
"""

from __future__ import annotations

from repro.sim import Environment, Event


class Barrier:
    """An N-party rendezvous point."""

    def __init__(self, env: Environment, parties: int) -> None:
        if parties <= 0:
            raise ValueError(f"parties must be positive, got {parties}")
        self.env = env
        self.parties = parties
        self._arrived = 0
        self._release: Event = env.event()

    @property
    def arrived(self) -> int:
        """Fragments that have reached the barrier so far."""
        return self._arrived

    def wait(self) -> Event:
        """Event that triggers once all parties have arrived.

        Usage inside a process: ``yield barrier.wait()``.
        """
        self._arrived += 1
        if self._arrived > self.parties:
            raise RuntimeError(
                f"barrier overrun: {self._arrived} arrivals for "
                f"{self.parties} parties")
        if self._arrived == self.parties:
            self._release.succeed(self.env.now)
        return self._release

    def arrive(self) -> Event:
        """Overrun-tolerant arrival, for re-executed fragments.

        Identical to :meth:`wait` in the fault-free case. Under task
        retries or hedging, extra attempts of the same fragment may
        reach the barrier: a late arrival after release returns the
        already-triggered event, and the count saturates at ``parties``
        so a retried attempt can complete the rendezvous its crashed
        predecessor never joined.
        """
        if self._release.triggered:
            return self._release
        self._arrived = min(self._arrived + 1, self.parties)
        if self._arrived == self.parties:
            self._release.succeed(self.env.now)
        return self._release


class BarrierRegistry:
    """Per-query barrier bookkeeping keyed by (query, pipeline)."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._barriers: dict[tuple[str, str], Barrier] = {}

    def get(self, query_id: str, pipeline_id: str, parties: int) -> Barrier:
        """The barrier for a pipeline, created on first access."""
        key = (query_id, pipeline_id)
        if key not in self._barriers:
            self._barriers[key] = Barrier(self.env, parties)
        barrier = self._barriers[key]
        if barrier.parties != parties:
            raise ValueError(
                f"barrier {key} created for {barrier.parties} parties, "
                f"requested {parties}")
        return barrier

    def clear(self, query_id: str) -> None:
        """Drop all barriers of a finished query."""
        self._barriers = {key: barrier
                          for key, barrier in self._barriers.items()
                          if key[0] != query_id}
