"""The Skyrise engine facade: deployment, query execution, accounting.

Ties the pieces together: deploys the coordinator, worker, and invoker
function binaries onto an execution backend (the Lambda platform or the
EC2 shim — Figure 4's two execution modes), submits physical plans, and
assembles :class:`QueryResult` objects with runtime, per-stage statistics,
and an itemized cost estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import units
from repro.datagen.datasets import TableMetadata
from repro.engine.barrier import BarrierRegistry
from repro.engine.coordinator import (
    CoordinatorRuntime,
    RecoveryConfig,
    StageReport,
    make_coordinator_handler,
    make_invoker_handler,
)
from repro.engine.cost import DEFAULT_COST_MODEL, CpuCostModel, classify_attempt
from repro.engine.plan import PhysicalPlan
from repro.engine.worker import WorkerRuntime, make_worker_handler
from repro.faas.function import FunctionConfig
from repro.formats.batch import RecordBatch
from repro.formats.columnar import ColumnarCache, read_file
from repro.pricing.calculator import CostCalculator
from repro.pricing.catalog import STORAGE_PRICES
from repro.sim import Environment
from repro.storage.base import StorageService
from repro.telemetry import get_recorder

#: Worker sizing used throughout the paper's query experiments:
#: 4 vCPUs and 7,076 MiB of RAM (Sections 4.5 and 5.2).
WORKER_MEMORY = 7_076 * units.MiB
COORDINATOR_MEMORY = 3_538 * units.MiB
INVOKER_MEMORY = 1_769 * units.MiB


@dataclass
class QueryResult:
    """Outcome of one query execution."""

    query_id: str
    runtime: float
    batch: RecordBatch
    stages: list[StageReport]
    fragments: dict[str, int]
    #: Billed function-seconds summed over coordinator + workers.
    cumulated_time: float
    cost_cents: float
    compute_cost_cents: float
    storage_cost_cents: float
    requests: int
    request_sizes: list[float] = field(default_factory=list)
    #: Recovery accounting (zero everywhere in fault-free runs).
    retries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    failed_attempts: int = 0
    #: Compute cost of non-primary attempts (retries, hedges, failed
    #: attempts) — included in :attr:`cost_cents`.
    retry_cost_cents: float = 0.0
    recovery_events: list[dict] = field(default_factory=list)

    @property
    def peak_fragments(self) -> int:
        """Widest stage of the query."""
        return max(self.fragments.values())

    def peak_to_average_nodes(self) -> float:
        """Intra-query elasticity ratio (Section 5.2)."""
        total_time = sum(stage.duration for stage in self.stages)
        if total_time <= 0:
            return 1.0
        weighted = sum(stage.fragments * stage.duration
                       for stage in self.stages)
        return self.peak_fragments / (weighted / total_time)

    def shuffle_time(self) -> float:
        """Max shuffle-read duration across stages (Figure 15)."""
        return max((stage.shuffle_read_time_max for stage in self.stages),
                   default=0.0)


class SkyriseEngine:
    """Serverless query engine over simulated cloud infrastructure."""

    def __init__(self, env: Environment, backend,
                 storage: dict[str, StorageService],
                 intermediate_service: str = "s3-standard",
                 cost_model: CpuCostModel = DEFAULT_COST_MODEL,
                 worker_memory: float = WORKER_MEMORY,
                 recovery: Optional[RecoveryConfig] = None) -> None:
        self.env = env
        self.backend = backend
        self.storage = storage
        self.intermediate_service = intermediate_service
        self.cost_model = cost_model
        self.worker_memory = worker_memory
        self.recovery = recovery if recovery is not None else RecoveryConfig()
        self.catalog: dict[str, TableMetadata] = {}
        self.barriers = BarrierRegistry(env)
        #: Decode cache shared by every worker of this engine. Workers in
        #: the real system would each hold one per sandbox; a single
        #: shared cache models the steady state where every warm sandbox
        #: has seen the working set, without per-sandbox memory tracking.
        self.columnar_cache = ColumnarCache()
        self._deployed = False

    # -- setup -------------------------------------------------------------

    def register_table(self, metadata: TableMetadata) -> None:
        """Add a table to the engine catalog."""
        self.catalog[metadata.name] = metadata

    def deploy(self, target_worker_input: Optional[float] = None) -> None:
        """Deploy the coordinator, worker, and invoker binaries.

        The binaries are generic — "the deployment artifacts are not
        specialized towards any query" (Section 3.2) — so one deployment
        serves the whole query suite and stays warm across queries.
        """
        worker_runtime = WorkerRuntime(
            storage=self.storage, barriers=self.barriers,
            cost_model=self.cost_model,
            intermediate_service=self.intermediate_service,
            columnar_cache=self.columnar_cache)
        coordinator_runtime = CoordinatorRuntime(
            catalog=self.catalog, backend=self.backend,
            worker_function="skyrise-worker",
            invoker_function="skyrise-invoker",
            intermediate_service=self.intermediate_service,
            recovery=self.recovery)
        if target_worker_input is not None:
            coordinator_runtime.target_worker_input = target_worker_input
        self._coordinator_runtime = coordinator_runtime
        self.backend.deploy(FunctionConfig(
            name="skyrise-worker", handler=make_worker_handler(worker_runtime),
            memory_bytes=self.worker_memory, binary_bytes=8 * units.MiB))
        self.backend.deploy(FunctionConfig(
            name="skyrise-coordinator",
            handler=make_coordinator_handler(coordinator_runtime),
            memory_bytes=COORDINATOR_MEMORY, binary_bytes=8 * units.MiB))
        self.backend.deploy(FunctionConfig(
            name="skyrise-invoker",
            handler=make_invoker_handler(coordinator_runtime),
            memory_bytes=INVOKER_MEMORY, binary_bytes=2 * units.MiB))
        self._deployed = True

    # -- execution -----------------------------------------------------------

    def run_query(self, plan: PhysicalPlan):
        """Process: execute ``plan``; returns a :class:`QueryResult`."""
        if not self._deployed:
            raise RuntimeError("call deploy() before run_query()")
        record_start = len(self.backend.records)
        recorder = get_recorder()
        payload = {"plan": plan.to_dict()}
        root = None
        if recorder.enabled:
            root = recorder.start_trace(
                f"query {plan.query_id}", self.env.now,
                attrs={"query_id": plan.query_id})
            payload["trace"] = root
        record = yield from self.backend.invoke("skyrise-coordinator", payload)
        response = record.response
        # Lost hedge races may still be running: the coordinator already
        # returned (its runtime excludes them, like a real coordinator
        # that stopped listening), but the abandoned attempts run to
        # completion and must be billed. Drain them here so their
        # records land inside this query's billing window.
        for zombie in response.pop("_zombies", []):
            if not zombie.processed:
                yield zombie
        batch = self._fetch_result(response["result_keys"])
        self.barriers.clear(plan.query_id)
        new_records = self.backend.records[record_start:]
        result = self._assemble(plan, record, response, batch, new_records)
        if root is not None:
            root.finish(self.env.now, runtime=result.runtime,
                        cost_cents=result.cost_cents)
        return result

    def _fetch_result(self, result_keys: list[str]):
        service = self.storage[self.intermediate_service]
        batches = []
        for key in result_keys:
            obj = service.head(key)
            batches.append(read_file(obj.payload))
        return RecordBatch.concat(batches)

    def _assemble(self, plan, record, response, batch, records) -> QueryResult:
        calculator = CostCalculator()
        recovery_calculator = CostCalculator()
        cumulated = 0.0
        for invocation in records:
            config = self.backend.function(invocation.function)
            cumulated += invocation.duration
            calculator.add_function_invocation(
                config.memory_bytes, invocation.duration,
                label=invocation.function)
            # Non-primary attempts (failed, retried, hedged) bill like
            # any other invocation; itemize them so the resilience
            # report can state the cost of recovery.
            if classify_attempt(invocation) != "primary":
                recovery_calculator.add_function_invocation(
                    config.memory_bytes, invocation.duration,
                    label=invocation.function)
        requests = 0
        read_requests = write_requests = 0
        request_sizes: list[float] = []
        bytes_read = bytes_written = 0.0
        for stage in response["stages"]:
            requests += stage.requests
            read_requests += stage.read_requests
            write_requests += stage.write_requests
            request_sizes.extend(stage.request_sizes)
            bytes_read += stage.bytes_read
            bytes_written += stage.bytes_written
        pricing = STORAGE_PRICES[self.intermediate_service]
        storage_cost = (pricing.read_cost(read_requests, bytes_read)
                        + pricing.write_cost(write_requests, bytes_written))
        compute_cost = calculator.cost.total
        recovery = response.get("recovery", {})
        return QueryResult(
            query_id=plan.query_id,
            runtime=response["runtime"],
            batch=batch,
            stages=response["stages"],
            fragments=response["fragments"],
            cumulated_time=cumulated,
            cost_cents=(compute_cost + storage_cost) * 100.0,
            compute_cost_cents=compute_cost * 100.0,
            storage_cost_cents=storage_cost * 100.0,
            requests=requests,
            request_sizes=request_sizes,
            retries=recovery.get("retries", 0),
            hedges=recovery.get("hedges", 0),
            hedge_wins=recovery.get("hedge_wins", 0),
            failed_attempts=recovery.get("failed_attempts", 0),
            retry_cost_cents=recovery_calculator.cost.total * 100.0,
            recovery_events=recovery.get("events", []))
