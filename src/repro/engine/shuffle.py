"""Storage-based shuffle: hash-partitioned exchange through object storage.

Producers hash-partition their output by the shuffle key and write one
object per fragment containing all partitions plus an offset index (write
combining — Section 5.3.2 notes the techniques to keep I/O sizes up).
Consumers issue one range request per (producer, partition) to fetch
exactly their slice, so shuffle read count = producers x consumers —
the quadratic request pattern behind Figure 15 and the Table 6 request
counts.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.engine.io import IoStack
from repro.formats.batch import RecordBatch
from repro.formats.columnar import content_key, read_file, write_file


def shuffle_key(query_id: str, pipeline_id: str, fragment: int) -> str:
    """Object key of one producer fragment's shuffle output."""
    return f"shuffle/{query_id}/{pipeline_id}/frag-{fragment:05d}"


@dataclass
class ShufflePartition:
    """One partition slice inside a producer's shuffle object."""

    payload: bytes
    logical_bytes: float
    rows: int


class ShuffleWriter:
    """Partition a batch and write it to storage.

    With ``combine=True`` (the default, and what the engine uses) all
    partitions go into one object with an offset index — the *write
    combining* of Section 5.3.2 that keeps request counts at one per
    producer. ``combine=False`` writes one object per partition (the
    naive layout), multiplying write requests by the consumer count; the
    ablation benchmark quantifies the difference.
    """

    def __init__(self, io: IoStack, query_id: str, pipeline_id: str,
                 fragment: int, partition_key: str, partitions: int,
                 combine: bool = True, epoch: int = 0) -> None:
        if partitions <= 0:
            raise ValueError("partitions must be positive")
        self.io = io
        self.key = shuffle_key(query_id, pipeline_id, fragment)
        self.partition_key = partition_key
        self.partitions = partitions
        self.combine = combine
        #: Query-execution epoch: fences idempotent re-writes. A retried
        #: or hedged attempt carries the same epoch as its predecessor
        #: and skips the write if the object is already committed; a
        #: fresh execution of the same plan gets a new epoch and
        #: overwrites normally.
        self.epoch = epoch

    def partition_batch(self, batch: RecordBatch) -> list[ShufflePartition]:
        """Split ``batch`` into hash partitions by the shuffle key."""
        cache = self.io.cache
        encode = write_file if cache is None else cache.encode_batch
        slices: list[ShufflePartition] = []
        if len(batch) == 0:
            empty = encode(batch)
            for _ in range(self.partitions):
                slices.append(ShufflePartition(payload=empty,
                                               logical_bytes=0.0, rows=0))
            return slices
        if self.partition_key is None:
            assignment = np.zeros(len(batch), dtype=np.int64)
        else:
            keys = batch.column(self.partition_key)
            assignment = _hash_partition(keys, self.partitions)
        for partition in range(self.partitions):
            piece = batch.take(assignment == partition)
            slices.append(ShufflePartition(
                payload=encode(piece),
                logical_bytes=piece.logical_bytes,
                rows=len(piece)))
        return slices

    def _committed(self):
        """The already-written index if this epoch committed it, else None.

        The check is metadata-only (``exists``/``head`` are free in the
        storage model) so fault-free executions are unaffected.
        """
        storage = self.io.storage
        if not storage.exists(self.key):
            return None
        existing = storage.head(self.key).payload
        if isinstance(existing, dict) and existing.get("epoch") == self.epoch:
            return existing
        return None

    def write(self, batch: RecordBatch):
        """Process: partition and store the shuffle output.

        Writes are idempotent per execution epoch: if another attempt of
        this fragment already committed the object under the same epoch
        (retry after a post-write crash, or a lost hedge race), the
        write is skipped. Duplicate attempts compute identical content,
        so a concurrent double-write is harmless either way.

        Returns the index payload (combined mode) or the per-partition
        key list (uncombined mode).
        """
        committed = self._committed()
        if committed is not None:
            return committed
        slices = self.partition_batch(batch)
        if self.combine:
            payload = {
                "combined": True,
                "epoch": self.epoch,
                "partitions": [s.payload for s in slices],
                "logical": [s.logical_bytes for s in slices],
                "rows": [s.rows for s in slices],
            }
            total_logical = max(1.0, sum(s.logical_bytes for s in slices))
            yield from self.io.write_object(self.key, payload, total_logical)
            return payload
        # Naive layout: one object (and one write request) per partition.
        # Parts land first and the index last, so the index doubles as
        # the commit record: readers (and the epoch check above) never
        # observe an index whose parts are missing.
        for partition, piece in enumerate(slices):
            yield from self.io.write_object(
                f"{self.key}/p-{partition:05d}", piece.payload,
                max(piece.logical_bytes, 1.0))
        index = {
            "combined": False,
            "epoch": self.epoch,
            "logical": [s.logical_bytes for s in slices],
            "rows": [s.rows for s in slices],
        }
        yield from self.io.write_object(self.key, index, 1.0)
        return index


class ShuffleReader:
    """Fetch one consumer partition from every producer fragment.

    Slice reads are issued concurrently from a fixed-size pool (the
    engine "divides large storage requests into smaller chunks to
    process them in parallel", Section 3.2) — with hundreds of consumers
    this produces the bursty quadratic request pattern that pressures
    object-storage request rates (Section 4.5.2).
    """

    def __init__(self, io: IoStack, query_id: str, pipeline_id: str,
                 producer_fragments: int, partition: int,
                 concurrency: int = 32) -> None:
        if concurrency <= 0:
            raise ValueError("concurrency must be positive")
        self.io = io
        self.query_id = query_id
        self.pipeline_id = pipeline_id
        self.producer_fragments = producer_fragments
        self.partition = partition
        self.concurrency = concurrency

    def read(self):
        """Process: range-read this partition from each producer object.

        Returns the concatenated :class:`RecordBatch`.
        """
        if self.producer_fragments <= 0:
            raise ValueError("shuffle read with zero producers")
        env = self.io.env
        batches: list[RecordBatch] = []
        fragments = list(range(self.producer_fragments))
        while fragments:
            window = fragments[:self.concurrency]
            fragments = fragments[self.concurrency:]
            processes = [env.process(self._read_slice(fragment),
                                     name="shuffle-slice")
                         for fragment in window]
            for process in processes:
                batches.append((yield process))
        # The per-slice requests deferred their payload movement; pull
        # the combined bytes through the worker's network budget once.
        yield from self.io.bulk_transfer()
        return RecordBatch.concat(batches)

    def _read_slice(self, fragment: int):
        """Process: one range request for this consumer's slice.

        The request size is the slice's logical size — sub-KiB up to
        MiBs, the "Shuffle I/O Size" column of Table 6.
        """
        key = shuffle_key(self.query_id, self.pipeline_id, fragment)
        head = self.io.storage.head(key)
        index = head.payload
        logical = float(index["logical"][self.partition])
        if index.get("combined", True):
            yield from self.io.read_object(key,
                                           logical_bytes=max(logical, 1.0),
                                           defer_transfer=True)
            raw = index["partitions"][self.partition]
        else:
            part_key = f"{key}/p-{self.partition:05d}"
            obj = yield from self.io.read_object(
                part_key, logical_bytes=max(logical, 1.0),
                defer_transfer=True)
            raw = obj.payload
        # Shuffle keys embed the query id and never repeat, so the decode
        # cache is keyed by payload content: re-executions of a query
        # template produce byte-identical slices and hit.
        cache = self.io.cache
        piece = read_file(raw, cache=cache,
                          cache_key=content_key(raw) if cache else None)
        piece.logical_bytes = logical
        return piece


def _hash_partition(keys: np.ndarray, partitions: int) -> np.ndarray:
    """Stable hash assignment of key values to partitions."""
    out = np.empty(len(keys), dtype=np.int64)
    for i, value in enumerate(keys):
        if isinstance(value, (int, np.integer)):
            digest = zlib.crc32(int(value).to_bytes(8, "little", signed=True))
        else:
            digest = zlib.crc32(str(value).encode("utf-8"))
        out[i] = digest % partitions
    return out
