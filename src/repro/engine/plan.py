"""Physical query plans: pipelines, sources, sinks.

A plan is a DAG of pipelines (Section 3.2). Each pipeline names a source
(a base-table scan or the shuffle output of upstream pipelines), a chain
of physical operators, and a sink (hash-partitioned shuffle write, or the
query result). The driver submits plans as JSON; the coordinator decides
the number of data-parallel fragments per pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.engine.operators import Operator, operator_from_dict


@dataclass
class TableSource:
    """Scan a catalog table with projection (and zone-map predicate)."""

    table: str
    columns: list[str]
    #: Optional predicate evaluated via zone maps for row-group skipping
    #: (the full predicate is still applied by a FilterOperator).
    zone_map_column: Optional[str] = None
    zone_map_low: Optional[float] = None
    zone_map_high: Optional[float] = None

    def to_dict(self) -> dict:
        return {"kind": "table", "table": self.table, "columns": self.columns,
                "zone_map_column": self.zone_map_column,
                "zone_map_low": self.zone_map_low,
                "zone_map_high": self.zone_map_high}


@dataclass
class ShuffleSource:
    """Read this fragment's partition from upstream shuffle outputs.

    ``inputs`` maps a local name to the producing pipeline id; workers
    receive each input as a separate batch (the first is the main input,
    the rest become side inputs for joins).
    """

    inputs: dict[str, str]
    main: str

    def to_dict(self) -> dict:
        return {"kind": "shuffle", "inputs": self.inputs, "main": self.main}


@dataclass
class ShuffleSink:
    """Hash-partition output rows by a key into the next stage's fragments.

    ``partition_key=None`` routes everything to partition zero (global
    aggregations funnel into a single final fragment).
    """

    partition_key: Optional[str] = None

    def to_dict(self) -> dict:
        return {"kind": "shuffle", "partition_key": self.partition_key}


@dataclass
class ResultSink:
    """Write this fragment's output as (part of) the query result."""

    def to_dict(self) -> dict:
        return {"kind": "result"}


@dataclass
class PipelineSpec:
    """One pipeline: source -> operators -> sink, with dependencies."""

    id: str
    source: TableSource | ShuffleSource
    operators: list[Operator] = field(default_factory=list)
    sink: ShuffleSink | ResultSink = field(default_factory=ResultSink)
    depends_on: list[str] = field(default_factory=list)
    #: Fragment count; ``None`` = coordinator decides (burst-aware).
    fragments: Optional[int] = None
    #: Small tables every fragment reads fully (e.g. a dimension for a
    #: broadcast join or a UDF lookup table). name -> table name.
    side_tables: dict[str, str] = field(default_factory=dict)
    #: Synchronization barrier before the source is consumed; used to
    #: isolate subflows like distributed shuffles (Section 3.2).
    barrier: bool = False

    def to_dict(self) -> dict:
        # Memoized per instance: serving replays the same plan objects
        # for every request of a tenant, and a stable dict identity lets
        # the coordinator and workers memoize their parses. Treat the
        # returned dict (and the spec after serializing) as read-only.
        cached = getattr(self, "_as_dict", None)
        if cached is not None:
            return cached
        data = {
            "id": self.id,
            "source": self.source.to_dict(),
            "operators": [op.to_dict() for op in self.operators],
            "sink": self.sink.to_dict(),
            "depends_on": self.depends_on,
            "fragments": self.fragments,
            "side_tables": self.side_tables,
            "barrier": self.barrier,
        }
        self._as_dict = data
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineSpec":
        return cls(
            id=data["id"],
            source=source_from_dict(data["source"]),
            operators=[operator_from_dict(op) for op in data["operators"]],
            sink=sink_from_dict(data["sink"]),
            depends_on=list(data["depends_on"]),
            fragments=data["fragments"],
            side_tables=dict(data["side_tables"]),
            barrier=data["barrier"],
        )


@dataclass
class PhysicalPlan:
    """A complete query plan."""

    query_id: str
    pipelines: list[PipelineSpec]

    def __post_init__(self) -> None:
        ids = [p.id for p in self.pipelines]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate pipeline ids in plan: {ids}")
        known = set(ids)
        for pipeline in self.pipelines:
            for dep in pipeline.depends_on:
                if dep not in known:
                    raise ValueError(
                        f"pipeline {pipeline.id!r} depends on unknown "
                        f"pipeline {dep!r}")

    def pipeline(self, pipeline_id: str) -> PipelineSpec:
        """Look up a pipeline by id."""
        for pipeline in self.pipelines:
            if pipeline.id == pipeline_id:
                return pipeline
        raise KeyError(f"no pipeline {pipeline_id!r}")

    def stages(self) -> list[list[PipelineSpec]]:
        """Topologically ordered stages of concurrently runnable pipelines."""
        remaining = {p.id: set(p.depends_on) for p in self.pipelines}
        done: set[str] = set()
        ordered: list[list[PipelineSpec]] = []
        while remaining:
            ready = [pid for pid, deps in remaining.items()
                     if deps <= done]
            if not ready:
                raise ValueError("cyclic pipeline dependencies")
            ordered.append([self.pipeline(pid) for pid in ready])
            for pid in ready:
                del remaining[pid]
                done.add(pid)
        return ordered

    @property
    def final_pipeline(self) -> PipelineSpec:
        """The pipeline producing the query result."""
        finals = [p for p in self.pipelines
                  if isinstance(p.sink, ResultSink)]
        if len(finals) != 1:
            raise ValueError(f"plan must have exactly one result pipeline, "
                             f"found {len(finals)}")
        return finals[0]

    def to_dict(self) -> dict:
        # Memoized per instance, like PipelineSpec.to_dict.
        cached = getattr(self, "_as_dict", None)
        if cached is not None:
            return cached
        data = {"query_id": self.query_id,
                "pipelines": [p.to_dict() for p in self.pipelines]}
        self._as_dict = data
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PhysicalPlan":
        return cls(query_id=data["query_id"],
                   pipelines=[PipelineSpec.from_dict(p)
                              for p in data["pipelines"]])


class IdentityMemo:
    """Bounded parse memo keyed by dict identity.

    The coordinator shares one spec dict across a stage's fragment
    payloads (and a serving workload resubmits a tenant's plan
    template), so a fan-out of N fragments parses the tree once instead
    of N times. Each entry pins its keyed dict, so an ``id()`` cannot
    be reused while the entry is alive; the identity check guards the
    eviction window.

    Instances live on the runtime objects (``CoordinatorRuntime``,
    ``WorkerRuntime``) rather than at module scope: shard-parallel
    domains each build their own runtimes, so domains never share — or
    race on — parse state, and eviction in one domain cannot evict
    another's hot entries (CONC001).
    """

    def __init__(self, parse, max_entries: int = 64) -> None:
        self._parse = parse
        self._max = max_entries
        self._entries: dict[int, tuple[dict, object]] = {}

    def get(self, data: dict):
        """Parse ``data`` (memoized by identity)."""
        key = id(data)  # repro-lint: disable=DET004 identity memo key, never ordered
        hit = self._entries.get(key)
        if hit is not None and hit[0] is data:
            return hit[1]
        value = self._parse(data)
        if len(self._entries) >= self._max:
            self._entries.clear()
        self._entries[key] = (data, value)
        return value


def plan_memo() -> IdentityMemo:
    """A fresh plan-parse memo (one per coordinator runtime)."""
    return IdentityMemo(PhysicalPlan.from_dict, max_entries=64)


def source_from_dict(data: dict) -> TableSource | ShuffleSource:
    """Rebuild a source spec."""
    if data["kind"] == "table":
        return TableSource(table=data["table"], columns=data["columns"],
                           zone_map_column=data["zone_map_column"],
                           zone_map_low=data["zone_map_low"],
                           zone_map_high=data["zone_map_high"])
    if data["kind"] == "shuffle":
        return ShuffleSource(inputs=dict(data["inputs"]), main=data["main"])
    raise ValueError(f"unknown source kind {data['kind']!r}")


def sink_from_dict(data: dict) -> ShuffleSink | ResultSink:
    """Rebuild a sink spec."""
    if data["kind"] == "shuffle":
        return ShuffleSink(partition_key=data["partition_key"])
    if data["kind"] == "result":
        return ResultSink()
    raise ValueError(f"unknown sink kind {data['kind']!r}")


# Re-export for the package namespace: plans and aggregation specs are the
# two things query builders touch most.
from repro.engine.operators.aggregate import AggSpec  # noqa: E402,F401
