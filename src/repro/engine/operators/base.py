"""Operator protocol and spec deserialization."""

from __future__ import annotations

from repro.formats.batch import RecordBatch


class Operator:
    """A physical operator over materialized batches."""

    #: CPU cost class charged per logical GiB of input (see engine.cost).
    cost_class = "scan"

    def execute(self, batch: RecordBatch, sides: dict | None = None
                ) -> RecordBatch:
        """Transform ``batch``; ``sides`` holds side-table batches by name."""
        raise NotImplementedError

    def to_dict(self) -> dict:
        """JSON-serializable operator spec."""
        raise NotImplementedError


def operator_from_dict(data: dict) -> Operator:
    """Rebuild an operator from its spec dictionary."""
    from repro.engine.operators.aggregate import HashAggregateOperator
    from repro.engine.operators.filter import FilterOperator
    from repro.engine.operators.join import HashJoinOperator
    from repro.engine.operators.limit import LimitOperator
    from repro.engine.operators.project import ProjectOperator
    from repro.engine.operators.sort import SortOperator
    from repro.engine.operators.udf import MapUdfOperator

    kind = data["kind"]
    constructors = {
        "filter": FilterOperator,
        "project": ProjectOperator,
        "aggregate": HashAggregateOperator,
        "join": HashJoinOperator,
        "sort": SortOperator,
        "limit": LimitOperator,
        "udf": MapUdfOperator,
    }
    try:
        constructor = constructors[kind]
    except KeyError:
        raise ValueError(f"unknown operator kind {kind!r}") from None
    return constructor.from_dict(data)
