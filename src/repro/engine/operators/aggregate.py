"""Hash aggregation with partial/final decomposition.

Distributed aggregation runs in two phases: map-side *partial* aggregates
produce mergeable state columns (sums, counts, mins, maxes), which are
shuffled and combined by a *final* aggregate. ``complete`` mode performs
both phases locally (single-stage queries and the reference executor).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.expressions import Expr, expr_from_dict
from repro.engine.operators.base import Operator
from repro.formats.batch import RecordBatch
from repro.formats.schema import DataType, Field, Schema

SUPPORTED_FUNCS = ("sum", "count", "avg", "min", "max")


@dataclass(frozen=True)
class AggSpec:
    """One aggregation: ``out_name = func(expr)``."""

    out_name: str
    func: str
    expr: Expr | None = None  # count(*) needs no input expression

    def __post_init__(self) -> None:
        if self.func not in SUPPORTED_FUNCS:
            raise ValueError(f"unsupported aggregate {self.func!r}")
        if self.expr is None and self.func != "count":
            raise ValueError(f"{self.func} needs an input expression")

    def to_dict(self) -> dict:
        return {"out": self.out_name, "func": self.func,
                "expr": self.expr.to_dict() if self.expr else None}

    @classmethod
    def from_dict(cls, data: dict) -> "AggSpec":
        expr = expr_from_dict(data["expr"]) if data["expr"] else None
        return cls(out_name=data["out"], func=data["func"], expr=expr)


class HashAggregateOperator(Operator):
    """Group-by aggregation over a materialized batch."""

    cost_class = "aggregate"

    def __init__(self, group_keys: list[str], aggs: list[AggSpec],
                 mode: str = "complete") -> None:
        if mode not in ("partial", "final", "complete"):
            raise ValueError(f"unknown aggregate mode {mode!r}")
        self.group_keys = list(group_keys)
        self.aggs = list(aggs)
        self.mode = mode

    # -- execution -------------------------------------------------------------

    def execute(self, batch: RecordBatch, sides: dict | None = None
                ) -> RecordBatch:
        if self.mode == "final":
            return self._final(batch)
        grouped = self._group(batch)
        if self.mode == "partial":
            return self._partial_output(batch, grouped)
        return self._complete_output(batch, grouped)

    def _group(self, batch: RecordBatch):
        """Return (unique key arrays per column, inverse index, count)."""
        n = len(batch)
        if not self.group_keys:
            # Global aggregate: everything falls into one group.
            return {}, np.zeros(n, dtype=np.int64), 1
        key_arrays = [batch.column(k) for k in self.group_keys]
        # Stringify column-at-a-time (tolist() unboxes numpy scalars,
        # whose str() matches the Python equivalents') and join across
        # columns — same composites as the old per-row generator without
        # the per-row Python frames.
        cols = [[str(v) for v in values.tolist()] for values in key_arrays]
        if len(cols) == 1:
            composite = np.array(cols[0], dtype=object)
        else:
            composite = np.array(["\x1f".join(row) for row in zip(*cols)],
                                 dtype=object)
        # np.unique returns sorted uniques; ``first_index`` is the first
        # row of each group, used to recover typed key values.
        uniques, first_index, inverse = np.unique(
            composite, return_index=True, return_inverse=True)
        keys = {}
        for name, values in zip(self.group_keys, key_arrays):
            keys[name] = values[first_index]
        return keys, inverse, len(uniques)

    def _reduce(self, func: str, values: np.ndarray, inverse: np.ndarray,
                groups: int) -> np.ndarray:
        if func == "sum":
            out = np.zeros(groups, dtype=np.float64)
            np.add.at(out, inverse, values.astype(np.float64))
            return out
        if func == "count":
            return np.bincount(inverse, minlength=groups).astype(np.int64)
        if func == "min":
            out = np.full(groups, np.inf)
            np.minimum.at(out, inverse, values.astype(np.float64))
            return out
        if func == "max":
            out = np.full(groups, -np.inf)
            np.maximum.at(out, inverse, values.astype(np.float64))
            return out
        raise AssertionError(f"unreachable: {func}")

    def _partial_output(self, batch: RecordBatch, grouped) -> RecordBatch:
        keys, inverse, groups = grouped
        fields = [Field(name, batch.schema.field(name).dtype)
                  for name in self.group_keys]
        columns = dict(keys)
        for spec in self.aggs:
            values = (spec.expr.evaluate(batch) if spec.expr is not None
                      else np.ones(len(batch)))
            for state, func in _partial_states(spec.func):
                name = f"{spec.out_name}__{state}"
                reduced = self._reduce(func, values, inverse, groups)
                dtype = DataType.INT64 if func == "count" else DataType.FLOAT64
                fields.append(Field(name, dtype))
                columns[name] = reduced
        out = RecordBatch(Schema(fields), columns)
        out.logical_bytes = _scaled_logical(batch, out)
        return out

    def _final(self, batch: RecordBatch) -> RecordBatch:
        # Re-group partial states by key and merge.
        keys, inverse, groups = self._group(batch)
        fields = [Field(name, batch.schema.field(name).dtype)
                  for name in self.group_keys]
        columns = dict(keys)
        for spec in self.aggs:
            merged_states: dict[str, np.ndarray] = {}
            for state, _ in _partial_states(spec.func):
                state_col = batch.column(f"{spec.out_name}__{state}")
                merge_func = "min" if state == "min" else (
                    "max" if state == "max" else "sum")
                merged_states[state] = self._reduce(
                    merge_func, state_col, inverse, groups)
            value, dtype = _finalize(spec.func, merged_states)
            fields.append(Field(spec.out_name, dtype))
            columns[spec.out_name] = value
        out = RecordBatch(Schema(fields), columns)
        out.logical_bytes = _scaled_logical(batch, out)
        return out

    def _complete_output(self, batch: RecordBatch, grouped) -> RecordBatch:
        keys, inverse, groups = grouped
        fields = [Field(name, batch.schema.field(name).dtype)
                  for name in self.group_keys]
        columns = dict(keys)
        for spec in self.aggs:
            values = (spec.expr.evaluate(batch) if spec.expr is not None
                      else np.ones(len(batch)))
            states = {state: self._reduce(func, values, inverse, groups)
                      for state, func in _partial_states(spec.func)}
            value, dtype = _finalize(spec.func, states)
            fields.append(Field(spec.out_name, dtype))
            columns[spec.out_name] = value
        out = RecordBatch(Schema(fields), columns)
        out.logical_bytes = _scaled_logical(batch, out)
        return out

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {"kind": "aggregate", "keys": self.group_keys,
                "aggs": [spec.to_dict() for spec in self.aggs],
                "mode": self.mode}

    @classmethod
    def from_dict(cls, data: dict) -> "HashAggregateOperator":
        return cls(group_keys=data["keys"],
                   aggs=[AggSpec.from_dict(a) for a in data["aggs"]],
                   mode=data["mode"])


def _partial_states(func: str) -> list[tuple[str, str]]:
    """State columns (name suffix, reducer) a function needs."""
    if func == "sum":
        return [("sum", "sum")]
    if func == "count":
        return [("count", "count")]
    if func == "avg":
        return [("sum", "sum"), ("count", "count")]
    if func == "min":
        return [("min", "min")]
    if func == "max":
        return [("max", "max")]
    raise AssertionError(f"unreachable: {func}")


def _finalize(func: str, states: dict[str, np.ndarray]):
    """Combine state columns into the final value (value, dtype)."""
    if func == "sum":
        return states["sum"], DataType.FLOAT64
    if func == "count":
        return states["count"].astype(np.int64), DataType.INT64
    if func == "avg":
        counts = states["count"].astype(np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            value = np.where(counts > 0, states["sum"] / counts, 0.0)
        return value, DataType.FLOAT64
    if func == "min":
        return states["min"], DataType.FLOAT64
    if func == "max":
        return states["max"], DataType.FLOAT64
    raise AssertionError(f"unreachable: {func}")


def _scaled_logical(before: RecordBatch, after: RecordBatch) -> float:
    """Aggregates shrink data massively; scale by the physical ratio."""
    physical_before = max(before.physical_bytes, 1)
    return before.logical_bytes * (after.physical_bytes / physical_before)
