"""Vectorized physical operators.

Each operator transforms a materialized :class:`~repro.formats.batch.
RecordBatch` into another. Operators are serializable specs (plans travel
as JSON) instantiated on the worker; they also report which CPU cost
class they belong to so the worker can charge simulated compute time.
"""

from repro.engine.operators.base import Operator, operator_from_dict
from repro.engine.operators.filter import FilterOperator
from repro.engine.operators.project import ProjectOperator
from repro.engine.operators.aggregate import AggSpec, HashAggregateOperator
from repro.engine.operators.join import HashJoinOperator
from repro.engine.operators.sort import SortOperator
from repro.engine.operators.limit import LimitOperator
from repro.engine.operators.udf import MapUdfOperator, register_udf, resolve_udf

__all__ = [
    "AggSpec",
    "FilterOperator",
    "HashAggregateOperator",
    "HashJoinOperator",
    "LimitOperator",
    "MapUdfOperator",
    "Operator",
    "ProjectOperator",
    "SortOperator",
    "operator_from_dict",
    "register_udf",
    "resolve_udf",
]
