"""Sort operator: stable multi-key ordering."""

from __future__ import annotations

import numpy as np

from repro.engine.operators.base import Operator
from repro.formats.batch import RecordBatch


class SortOperator(Operator):
    """Order rows by one or more keys (last key is primary for lexsort)."""

    cost_class = "sort"

    def __init__(self, keys: list[str], ascending: list[bool] | None = None
                 ) -> None:
        if not keys:
            raise ValueError("sort needs at least one key")
        self.keys = list(keys)
        self.ascending = (list(ascending) if ascending is not None
                          else [True] * len(keys))
        if len(self.ascending) != len(self.keys):
            raise ValueError("ascending flags must match keys")

    def execute(self, batch: RecordBatch, sides: dict | None = None
                ) -> RecordBatch:
        if len(batch) == 0:
            return batch
        # np.lexsort sorts by the LAST key first; feed keys reversed so
        # self.keys[0] is the primary sort key.
        arrays = []
        for key, asc in zip(reversed(self.keys), reversed(self.ascending)):
            column = batch.column(key)
            if not asc:
                column = _invert(column)
            arrays.append(column)
        order = np.lexsort(arrays)
        return batch.take(order)

    def to_dict(self) -> dict:
        return {"kind": "sort", "keys": self.keys, "ascending": self.ascending}

    @classmethod
    def from_dict(cls, data: dict) -> "SortOperator":
        return cls(keys=data["keys"], ascending=data["ascending"])


def _invert(column: np.ndarray) -> np.ndarray:
    """Key transform for descending order."""
    if column.dtype.kind in ("i", "f", "u"):
        return -column
    # Strings: rank-invert via sorted unique codes.
    uniques, inverse = np.unique(column.astype(str), return_inverse=True)
    return len(uniques) - 1 - inverse
