"""Hash join: build on one side, probe with the other.

In distributed execution both inputs arrive pre-partitioned by the join
key (via the storage shuffle), so each worker joins its partition pair
locally. The operator reads its build side from the ``sides`` mapping
under the name configured in the plan.
"""

from __future__ import annotations

import numpy as np

from repro.engine.operators.base import Operator
from repro.formats.batch import RecordBatch
from repro.formats.schema import Field, Schema


class HashJoinOperator(Operator):
    """Inner equi-join of the input batch with a side input."""

    cost_class = "join"

    def __init__(self, probe_key: str, build_side: str, build_key: str) -> None:
        self.probe_key = probe_key
        self.build_side = build_side
        self.build_key = build_key

    def execute(self, batch: RecordBatch, sides: dict | None = None
                ) -> RecordBatch:
        if sides is None or self.build_side not in sides:
            raise ValueError(
                f"join needs side input {self.build_side!r}; have "
                f"{sorted(sides) if sides else []}")
        build: RecordBatch = sides[self.build_side]
        # Build a key -> row-index map over the build side.
        build_keys = build.column(self.build_key)
        index: dict = {}
        for row, key in enumerate(build_keys):
            index.setdefault(key, []).append(row)
        probe_keys = batch.column(self.probe_key)
        probe_rows: list[int] = []
        build_rows: list[int] = []
        for row, key in enumerate(probe_keys):
            matches = index.get(key)
            if matches:
                for build_row in matches:
                    probe_rows.append(row)
                    build_rows.append(build_row)
        probe_idx = np.array(probe_rows, dtype=np.int64)
        build_idx = np.array(build_rows, dtype=np.int64)
        fields = list(batch.schema.fields)
        columns = {field.name: batch.column(field.name)[probe_idx]
                   for field in batch.schema}
        for field in build.schema:
            if field.name == self.build_key or field.name in columns:
                continue  # drop the duplicate key / name collisions
            fields.append(Field(field.name, field.dtype))
            columns[field.name] = build.column(field.name)[build_idx]
        out = RecordBatch(Schema(fields), columns)
        match_ratio = len(probe_idx) / max(len(batch), 1)
        out.logical_bytes = batch.logical_bytes * match_ratio
        return out

    def to_dict(self) -> dict:
        return {"kind": "join", "probe_key": self.probe_key,
                "build_side": self.build_side, "build_key": self.build_key}

    @classmethod
    def from_dict(cls, data: dict) -> "HashJoinOperator":
        return cls(probe_key=data["probe_key"], build_side=data["build_side"],
                   build_key=data["build_key"])
