"""Limit operator: keep the first N rows."""

from __future__ import annotations

import numpy as np

from repro.engine.operators.base import Operator
from repro.formats.batch import RecordBatch


class LimitOperator(Operator):
    """Truncate to at most ``count`` rows."""

    cost_class = "scan"

    def __init__(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"limit must be non-negative, got {count}")
        self.count = count

    def execute(self, batch: RecordBatch, sides: dict | None = None
                ) -> RecordBatch:
        if len(batch) <= self.count:
            return batch
        return batch.take(np.arange(self.count))

    def to_dict(self) -> dict:
        return {"kind": "limit", "count": self.count}

    @classmethod
    def from_dict(cls, data: dict) -> "LimitOperator":
        return cls(count=data["count"])
