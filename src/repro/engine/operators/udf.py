"""User-defined function operator.

UDFs are batch-level callables ``fn(batch, sides) -> RecordBatch``
registered by name — function binaries ship with their UDFs compiled in
(Section 3.2), so plans reference them symbolically. TPCx-BB Q3's
sessionization logic is the flagship user.
"""

from __future__ import annotations

from typing import Callable

from repro.engine.operators.base import Operator
from repro.formats.batch import RecordBatch

UdfCallable = Callable[[RecordBatch, dict], RecordBatch]

_REGISTRY: dict[str, UdfCallable] = {}


def register_udf(name: str, fn: UdfCallable) -> None:
    """Register ``fn`` under ``name`` (overwrites an existing entry)."""
    _REGISTRY[name] = fn  # repro-lint: disable=CONC001 UDFs ship compiled into the binary: registration is import-time and read-only afterwards, so parallel domains share it safely


def resolve_udf(name: str) -> UdfCallable:
    """Look up a registered UDF."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"UDF {name!r} is not registered; known: "
                       f"{sorted(_REGISTRY)}") from None


class MapUdfOperator(Operator):
    """Apply a registered UDF to the batch."""

    cost_class = "udf"

    def __init__(self, udf_name: str) -> None:
        self.udf_name = udf_name

    def execute(self, batch: RecordBatch, sides: dict | None = None
                ) -> RecordBatch:
        fn = resolve_udf(self.udf_name)
        before_logical = batch.logical_bytes
        before_physical = max(batch.physical_bytes, 1)
        out = fn(batch, sides or {})
        # Scale logical bytes by the UDF's physical expansion/contraction.
        out.logical_bytes = before_logical * (out.physical_bytes
                                              / before_physical)
        return out

    def to_dict(self) -> dict:
        return {"kind": "udf", "name": self.udf_name}

    @classmethod
    def from_dict(cls, data: dict) -> "MapUdfOperator":
        return cls(udf_name=data["name"])
