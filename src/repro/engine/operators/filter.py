"""Filter operator: keep rows matching a boolean expression."""

from __future__ import annotations

from repro.engine.expressions import Expr, expr_from_dict
from repro.engine.operators.base import Operator
from repro.formats.batch import RecordBatch


class FilterOperator(Operator):
    """Row selection by predicate."""

    cost_class = "filter"

    def __init__(self, predicate: Expr) -> None:
        self.predicate = predicate

    def execute(self, batch: RecordBatch, sides: dict | None = None
                ) -> RecordBatch:
        if len(batch) == 0:
            return batch
        mask = self.predicate.evaluate(batch).astype(bool)
        return batch.take(mask)

    def to_dict(self) -> dict:
        return {"kind": "filter", "predicate": self.predicate.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "FilterOperator":
        return cls(expr_from_dict(data["predicate"]))
