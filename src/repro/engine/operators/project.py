"""Projection operator: compute output columns from expressions."""

from __future__ import annotations

import numpy as np

from repro.engine.expressions import Expr, expr_from_dict
from repro.engine.operators.base import Operator
from repro.formats.batch import RecordBatch
from repro.formats.schema import DataType, Field, Schema


class ProjectOperator(Operator):
    """Evaluate (name, expression, type) triples into a fresh batch."""

    cost_class = "project"

    def __init__(self, outputs: list[tuple[str, Expr, DataType]]) -> None:
        if not outputs:
            raise ValueError("projection needs at least one output column")
        self.outputs = outputs

    def execute(self, batch: RecordBatch, sides: dict | None = None
                ) -> RecordBatch:
        fields = []
        columns = {}
        for name, expr, dtype in self.outputs:
            fields.append(Field(name, dtype))
            values = expr.evaluate(batch)
            if dtype is not DataType.STRING:
                values = np.asarray(values).astype(dtype.numpy_dtype)
            columns[name] = values
        schema = Schema(fields)
        out = RecordBatch(schema, columns)
        out.logical_bytes = batch.logical_bytes * _width_ratio(batch, out)
        return out

    def to_dict(self) -> dict:
        return {"kind": "project", "outputs": [
            {"name": name, "expr": expr.to_dict(), "type": dtype.value}
            for name, expr, dtype in self.outputs]}

    @classmethod
    def from_dict(cls, data: dict) -> "ProjectOperator":
        return cls([(item["name"], expr_from_dict(item["expr"]),
                     DataType(item["type"]))
                    for item in data["outputs"]])


def _width_ratio(before: RecordBatch, after: RecordBatch) -> float:
    def width(batch: RecordBatch) -> float:
        total = 0.0
        for field in batch.schema:
            fixed = field.dtype.fixed_width
            total += fixed if fixed is not None else 16.0
        return total

    denominator = width(before)
    return width(after) / denominator if denominator else 1.0
