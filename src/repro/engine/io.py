"""Worker I/O stack: chunked storage reads with straggler re-triggering.

Section 3.2: "the engine divides large storage requests into smaller
chunks to process them in parallel. Straggling requests are retriggered
after a size-based timeout." Chunk reads are modelled as S3 range
requests: each chunk is one metered request whose transfer moves the
chunk's logical bytes across the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.network.fabric import Endpoint
from repro.sim import AnyOf, Environment
from repro.storage.base import RequestType, StorageService
from repro.storage.errors import StorageError
from repro.telemetry import get_recorder

#: Default chunk size for large reads. 64 MiB keeps the per-partition
#: request count at Table 6 levels (about one request per partition for
#: projected column data).
DEFAULT_CHUNK_BYTES = 64 * units.MiB

#: Concurrent in-flight chunks per worker (the paper's storage I/O
#: function uses a fixed-size thread pool).
DEFAULT_CONCURRENCY = 32

#: A chunk is a straggler when it exceeds ``factor * size / rate`` with
#: this expected per-chunk transfer rate.
STRAGGLER_EXPECTED_RATE = 75 * units.MiB
STRAGGLER_FACTOR = 8.0
STRAGGLER_MIN_TIMEOUT_S = 1.0


@dataclass
class IoStats:
    """Request/byte accounting for one worker's I/O."""

    requests: int = 0
    read_requests: int = 0
    write_requests: int = 0
    retried: int = 0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    read_time: float = 0.0
    write_time: float = 0.0
    request_sizes: list[float] = field(default_factory=list)

    def merge(self, other: "IoStats") -> None:
        """Fold another stats object into this one."""
        self.requests += other.requests
        self.read_requests += other.read_requests
        self.write_requests += other.write_requests
        self.retried += other.retried
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.read_time += other.read_time
        self.write_time += other.write_time
        self.request_sizes.extend(other.request_sizes)


class IoStack:
    """Chunked, concurrent reads and writes against a storage service."""

    def __init__(self, env: Environment, storage: StorageService,
                 endpoint: Endpoint,
                 chunk_bytes: float = DEFAULT_CHUNK_BYTES,
                 concurrency: int = DEFAULT_CONCURRENCY,
                 cache=None) -> None:
        if chunk_bytes <= 0 or concurrency <= 0:
            raise ValueError("chunk_bytes and concurrency must be positive")
        self.env = env
        self.storage = storage
        self.endpoint = endpoint
        self.chunk_bytes = float(chunk_bytes)
        self.concurrency = concurrency
        #: Optional :class:`repro.formats.columnar.ColumnarCache` shared
        #: across workers; readers consult it after the simulated fetch.
        self.cache = cache
        self.stats = IoStats()
        self._deferred_bytes = 0.0
        recorder = get_recorder()
        self._telemetry = recorder if recorder.enabled else None
        #: Parent span for this stack's storage spans; the worker sets it
        #: to its own span so reads/writes nest inside the worker.
        self.span = None

    # -- reads ---------------------------------------------------------------

    def read_object(self, key: str, logical_bytes: float | None = None,
                    defer_transfer: bool = False):
        """Process: fetch ``key`` in parallel chunks.

        Returns the stored object (its payload is the full physical
        content — range semantics only affect metering and timing).

        ``defer_transfer=True`` performs admission and first-byte latency
        per request but skips the per-request network transfer; the
        caller moves the accumulated bytes in one aggregate flow via
        :meth:`bulk_transfer`. Shuffle readers use this so thousands of
        sub-MiB slice reads do not each occupy the network fabric.
        """
        started = self.env.now
        obj = self.storage.head(key)
        size = float(logical_bytes if logical_bytes is not None else obj.size)
        chunks = _chunk_sizes(size, self.chunk_bytes)
        pending = list(chunks)
        while pending:
            window, pending = (pending[:self.concurrency],
                               pending[self.concurrency:])
            processes = [self.env.process(
                self._read_chunk(key, nbytes, defer_transfer),
                name="chunk-read") for nbytes in window]
            for process in processes:
                yield process
        if defer_transfer:
            self._deferred_bytes += size
        self.stats.read_time += self.env.now - started
        if self._telemetry is not None:
            self._telemetry.record_span(
                "storage.read", started, self.env.now, parent=self.span,
                category="storage",
                attrs={"key": key, "bytes": size,
                       "service": self.storage.name,
                       "chunks": len(chunks)})
            self._telemetry.histogram("storage.read.latency_s").observe(
                self.env.now - started)
        return obj

    def bulk_transfer(self):
        """Process: move all deferred bytes in one aggregate flow."""
        nbytes = self._deferred_bytes
        self._deferred_bytes = 0.0
        if nbytes <= 0:
            return
        started = self.env.now
        yield from self.storage._transfer(RequestType.GET, nbytes,
                                          self.endpoint)
        self.stats.read_time += self.env.now - started
        if self._telemetry is not None:
            self._telemetry.record_span(
                "storage.bulk_transfer", started, self.env.now,
                parent=self.span, category="storage",
                attrs={"bytes": nbytes, "service": self.storage.name})

    def _read_chunk(self, key: str, nbytes: float,
                    defer_transfer: bool = False):
        """Process: one range request with straggler re-triggering."""
        timeout_s = max(STRAGGLER_MIN_TIMEOUT_S,
                        STRAGGLER_FACTOR * nbytes / STRAGGLER_EXPECTED_RATE)
        backoff = 0.05
        while True:
            self.stats.requests += 1
            self.stats.read_requests += 1
            self.stats.request_sizes.append(nbytes)
            attempt = self.env.process(
                self._fetch_range(key, nbytes, defer_transfer),
                name="range-get")
            deadline = self.env.timeout(timeout_s)
            try:
                yield AnyOf(self.env, [attempt, deadline])
            except StorageError as exc:
                # The attempt failed (throttled/timed out service-side);
                # retry with exponential backoff (Section 4.4.1).
                if not exc.retryable:
                    raise
                self.stats.retried += 1
                yield self.env.timeout(backoff)
                backoff = min(backoff * 2.0, 5.0)
                continue
            if attempt.processed:
                if attempt.ok:
                    self.stats.bytes_read += nbytes
                    return
                raise attempt.value
            # Straggler: abandon and re-trigger (Section 3.2).
            if attempt.is_alive:
                attempt.interrupt("straggler-retrigger")
                attempt.defuse()
            self.stats.retried += 1
            if self._telemetry is not None:
                self._telemetry.event(
                    self.env.now, "io.straggler_retrigger",
                    category="storage", key=key, bytes=nbytes,
                    timeout_s=timeout_s, service=self.storage.name)

    def _fetch_range(self, key: str, nbytes: float,
                     defer_transfer: bool = False):
        """Process: a single range GET moving ``nbytes`` logical bytes."""
        self.storage.check_fault(RequestType.GET, key)
        latency = self.storage.read_latency.sample_one(self.storage._rng)
        self.storage._admit_one(RequestType.GET, key)
        yield self.env.timeout(latency)
        if not defer_transfer:
            yield from self.storage._transfer(RequestType.GET, nbytes,
                                              self.endpoint)
        self.storage.stats.record(RequestType.GET, "ok", nbytes=nbytes)

    # -- writes --------------------------------------------------------------

    def write_object(self, key: str, payload, logical_bytes: float):
        """Process: store ``payload`` under ``key`` as one request."""
        started = self.env.now
        obj = yield from self.storage.put(key, payload, size=logical_bytes,
                                          endpoint=self.endpoint)
        self.stats.requests += 1
        self.stats.write_requests += 1
        self.stats.request_sizes.append(logical_bytes)
        self.stats.bytes_written += logical_bytes
        self.stats.write_time += self.env.now - started
        if self._telemetry is not None:
            self._telemetry.record_span(
                "storage.write", started, self.env.now, parent=self.span,
                category="storage",
                attrs={"key": key, "bytes": logical_bytes,
                       "service": self.storage.name})
            self._telemetry.histogram("storage.write.latency_s").observe(
                self.env.now - started)
        return obj


def _chunk_sizes(total: float, chunk: float) -> list[float]:
    """Split ``total`` bytes into chunk sizes (last one ragged)."""
    if total <= 0:
        return [1.0]  # metadata-only read still costs one request
    sizes = []
    remaining = total
    while remaining > 0:
        sizes.append(min(chunk, remaining))
        remaining -= chunk
    return sizes
