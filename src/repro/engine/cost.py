"""CPU cost model for the vectorized execution engine.

The simulator executes operators on small physical batches but charges
simulated CPU time proportional to the *logical* bytes an operator
processes. The constants are calibrated against Figure 14's throughput
staircase: a 4-vCPU worker reading at the 1.2 GiB/s network burst loses
throughput to S3 request handling, then decompression/deserialization,
then scan logic, then the remaining query logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units


@dataclass(frozen=True)
class CpuCostModel:
    """CPU-seconds per logical GiB, per operation class.

    All values are single-core costs; the worker divides by its vCPU
    count (the operators are embarrassingly parallel).
    """

    #: Decompression + deserialization of columnar input. Rates are per
    #: *compressed* GiB (ZSTD at ~3.5:1 means several raw GiB of work).
    #: Calibrated so a full-scale TPC-H Q6 lands at the paper's Table 6
    #: statistics: ~2.5 s of billed time per 4-vCPU worker scanning five
    #: 51 MiB column slices, ~500 s cumulated over ~200 workers.
    decode_per_gib: float = 22.0
    #: Scan/filter/projection evaluation.
    scan_per_gib: float = 14.0
    #: Hash aggregation.
    aggregate_per_gib: float = 10.0
    #: Hash join (build + probe, charged on the combined input).
    join_per_gib: float = 16.0
    #: Sorting.
    sort_per_gib: float = 16.0
    #: User-defined function execution.
    udf_per_gib: float = 20.0
    #: Partitioning + compression + serialization of shuffle output.
    encode_per_gib: float = 8.0
    #: Per storage request handling overhead (client CPU), seconds.
    request_overhead_s: float = 0.0008

    def cpu_seconds(self, operation: str, logical_bytes: float) -> float:
        """Single-core seconds for ``operation`` over ``logical_bytes``."""
        rate = {
            "decode": self.decode_per_gib,
            "scan": self.scan_per_gib,
            "filter": self.scan_per_gib,
            "project": self.scan_per_gib,
            "aggregate": self.aggregate_per_gib,
            "join": self.join_per_gib,
            "sort": self.sort_per_gib,
            "udf": self.udf_per_gib,
            "encode": self.encode_per_gib,
        }.get(operation)
        if rate is None:
            raise ValueError(f"unknown CPU operation {operation!r}")
        return rate * (logical_bytes / units.GiB)


DEFAULT_COST_MODEL = CpuCostModel()


def classify_attempt(record) -> str:
    """Attempt class of an invocation record, for recovery accounting.

    ``failed`` — the invocation errored (billed until the failure);
    ``hedge`` — a speculative duplicate; ``retry`` — a re-execution
    after a failure; ``primary`` — a first, successful attempt.
    """
    if record.error is not None:
        return "failed"
    response = record.response
    if getattr(response, "hedged", False):
        return "hedge"
    if getattr(response, "attempt", 0) > 0:
        return "retry"
    return "primary"
