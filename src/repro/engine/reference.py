"""Single-node reference executor.

Runs a physical plan directly over in-memory tables, without any
distribution, storage, or simulation — the ground truth the distributed
engine's results are validated against. Because partial/final aggregate
pairs compose (merging one partial group state is the identity), the
same plan produces identical results in both executors.
"""

from __future__ import annotations

from repro.engine.plan import PhysicalPlan, ShuffleSource, TableSource
from repro.formats.batch import RecordBatch


def run_reference(plan: PhysicalPlan,
                  tables: dict[str, RecordBatch]) -> RecordBatch:
    """Execute ``plan`` over ``tables``; returns the result batch."""
    outputs: dict[str, RecordBatch] = {}
    for stage in plan.stages():
        for pipeline in stage:
            sides: dict[str, RecordBatch] = {}
            for name, table_name in pipeline.side_tables.items():
                sides[name] = tables[table_name]
            if isinstance(pipeline.source, TableSource):
                table = tables[pipeline.source.table]
                batch = table.select([
                    name for name in pipeline.source.columns])
            else:
                source: ShuffleSource = pipeline.source
                named = {name: outputs[upstream]
                         for name, upstream in source.inputs.items()}
                batch = named.pop(source.main)
                sides.update(named)
            for operator in pipeline.operators:
                batch = operator.execute(batch, sides)
            outputs[pipeline.id] = batch
    return outputs[plan.final_pipeline.id]


def table_batches_from_spec(specs, seed: int = 1_000
                            ) -> dict[str, RecordBatch]:
    """Materialize full tables from dataset specs (for validation)."""
    tables: dict[str, RecordBatch] = {}
    for spec in specs:
        pieces = []
        for index in range(spec.partition_count):
            rows = spec.rows_for_partition(index)
            pieces.append(spec.generator(rows, seed, index,
                                         spec.physical_scale_factor))
        tables[spec.name] = RecordBatch.concat(pieces)
    return tables
