"""The Skyrise serverless query engine.

A shared-storage query engine (Section 3.2): the coordinator and workers
run as cloud functions (or on VMs via the shim) and exchange all state
through serverless storage. Queries arrive as physical plans of pipelines;
the coordinator compiles a distributed plan (fragments per pipeline,
worker sizing), schedules pipelines stage-wise, and workers execute
vectorized operators over columnar data, shuffling intermediates through
object storage.

Highlights mirroring the paper:

* two-level function invocation for large worker fleets;
* burst-aware worker sizing (keep per-worker scan volume inside the
  ~300 MiB network burst budget, Section 4.5.1);
* chunked storage reads with straggler re-triggering;
* projection/selection pushdown into the columnar format;
* synchronization barriers injectable to isolate query subflows;
* per-query tracing of I/O, compute, and request counts.
"""

from repro.engine.expressions import (
    And,
    Between,
    BinOp,
    Col,
    Compare,
    IfThenElse,
    InSet,
    Lit,
    Not,
    Or,
)
from repro.engine.plan import (
    AggSpec,
    PhysicalPlan,
    PipelineSpec,
    ResultSink,
    ShuffleSink,
    ShuffleSource,
    TableSource,
)
from repro.engine.engine import QueryResult, SkyriseEngine

__all__ = [
    "AggSpec",
    "And",
    "Between",
    "BinOp",
    "Col",
    "Compare",
    "IfThenElse",
    "InSet",
    "Lit",
    "Not",
    "Or",
    "PhysicalPlan",
    "PipelineSpec",
    "QueryResult",
    "ResultSink",
    "ShuffleSink",
    "ShuffleSource",
    "SkyriseEngine",
    "TableSource",
]
