"""The query coordinator function.

The coordinator receives a physical plan (JSON), fetches input metadata
from the catalog, compiles the distributed plan (fragments per pipeline,
burst-aware worker sizing), schedules pipelines stage-wise, and gathers
the worker reports. For wide stages it fans invocations out through a
two-level procedure: helper "invoker" functions each dispatch a slice of
the workers (Section 3.2, [96]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import units
from repro.datagen.datasets import TableMetadata
from repro.engine.plan import (
    PhysicalPlan,
    PipelineSpec,
    ResultSink,
    ShuffleSource,
    TableSource,
)
from repro.faas.function import FunctionContext
from repro.sim import AllOf

#: Per-invocation dispatch overhead on the invoking function (seconds).
INVOKE_DISPATCH_S = 0.003

#: Stages at or above this width use two-level invocation (Section 3.2).
TWO_LEVEL_THRESHOLD = 256

#: Workers dispatched per second-level invoker.
INVOKER_SLICE = 32

#: Burst-aware per-worker scan volume target: keep the effective bytes a
#: worker pulls within the ~300 MiB network burst budget (Section 4.5.1).
DEFAULT_TARGET_WORKER_INPUT = 270 * units.MiB


@dataclass
class StageReport:
    """Aggregated execution data of one pipeline."""

    pipeline: str
    fragments: int
    started_at: float
    finished_at: float
    requests: int = 0
    read_requests: int = 0
    write_requests: int = 0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    rows_out: int = 0
    shuffle_read_time_max: float = 0.0
    request_sizes: list[float] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall time of the stage."""
        return self.finished_at - self.started_at


@dataclass
class CoordinatorRuntime:
    """Services the coordinator binary is linked against."""

    catalog: dict[str, TableMetadata]
    backend: object  # LambdaPlatform or VmShim (same invoke interface)
    worker_function: str
    invoker_function: str
    intermediate_service: str = "s3-standard"
    target_worker_input: float = DEFAULT_TARGET_WORKER_INPUT


def make_coordinator_handler(runtime: CoordinatorRuntime):
    """Build the coordinator handler bound to ``runtime``."""

    def coordinator_handler(context: FunctionContext, payload: dict):
        return (yield from _run_query(runtime, context, payload))

    coordinator_handler.__name__ = "skyrise_coordinator"
    return coordinator_handler


def make_invoker_handler(runtime: CoordinatorRuntime):
    """Second-level invoker: dispatch a slice of worker invocations."""

    def invoker_handler(context: FunctionContext, payload: dict):
        env = context.env
        processes = []
        for fragment_payload in payload["fragments"]:
            yield env.timeout(INVOKE_DISPATCH_S)
            processes.append(env.process(
                runtime.backend.invoke(runtime.worker_function,
                                       fragment_payload),
                name="invoke-worker"))
        if processes:
            yield AllOf(env, processes)
        return [process.value.response for process in processes]

    invoker_handler.__name__ = "skyrise_invoker"
    return invoker_handler


def _run_query(runtime: CoordinatorRuntime, context: FunctionContext,
               payload: dict):
    env = context.env
    plan = PhysicalPlan.from_dict(payload["plan"])
    started_at = env.now
    fragments = _compile_fragments(runtime, plan)
    stage_reports: list[StageReport] = []
    for stage in plan.stages():
        processes = []
        stage_started = env.now
        for pipeline in stage:
            payloads = _fragment_payloads(runtime, plan, pipeline, fragments)
            processes.append((pipeline, env.process(
                _dispatch(runtime, context, payloads),
                name=f"stage-{pipeline.id}")))
        for pipeline, process in processes:
            reports = yield process
            stage_reports.append(_aggregate_stage(
                pipeline, fragments[pipeline.id], stage_started, env.now,
                reports))
    final = plan.final_pipeline
    return {
        "query_id": plan.query_id,
        "result_keys": [f"results/{plan.query_id}/part-{i:05d}"
                        for i in range(fragments[final.id])],
        "runtime": env.now - started_at,
        "stages": stage_reports,
        "fragments": fragments,
    }


def _compile_fragments(runtime: CoordinatorRuntime,
                       plan: PhysicalPlan) -> dict[str, int]:
    """Decide data-parallel fragment counts per pipeline.

    Scan pipelines are sized burst-aware: the effective bytes a worker
    reads (partition size x projected-column fraction) stay within the
    network burst budget. Shuffle-consumer pipelines default to half the
    widest producer, bounded to [1, 128].
    """
    fragments: dict[str, int] = {}
    for pipeline in plan.pipelines:
        if pipeline.fragments is not None:
            fragments[pipeline.id] = pipeline.fragments
            continue
        if isinstance(pipeline.source, TableSource):
            table = runtime.catalog[pipeline.source.table]
            fraction = _read_fraction(table, pipeline.source.columns)
            effective = table.total_logical_bytes * fraction
            count = max(1, math.ceil(effective / runtime.target_worker_input))
            fragments[pipeline.id] = min(count, table.partition_count)
        else:
            producers = [fragments[dep] for dep in pipeline.depends_on]
            widest = max(producers) if producers else 1
            fragments[pipeline.id] = max(1, min(128, widest // 2))
    return fragments


def _read_fraction(table: TableMetadata, columns: list[str]) -> float:
    """Byte fraction of a table's width covered by ``columns``."""

    def width(names: list[str]) -> float:
        total = 0.0
        for name in names:
            dtype = table.schema.field(name).dtype
            fixed = dtype.fixed_width
            total += fixed if fixed is not None else 16.0
        return total

    full = width(table.schema.names())
    return width(columns) / full if full else 1.0


def _fragment_payloads(runtime: CoordinatorRuntime, plan: PhysicalPlan,
                       pipeline: PipelineSpec,
                       fragments: dict[str, int]) -> list[dict]:
    """Build the worker payloads for every fragment of a pipeline."""
    count = fragments[pipeline.id]
    consumers = _consumer_fragments(plan, pipeline, fragments)
    side_tables = {}
    for name, table_name in pipeline.side_tables.items():
        table = runtime.catalog[table_name]
        side_tables[name] = {
            "partitions": [{"key": p.key, "logical_bytes": p.logical_bytes}
                           for p in table.partitions],
            "columns": table.schema.names(),
            "read_fraction": 1.0,
        }
    payloads = []
    for fragment in range(count):
        payload = {
            "query_id": plan.query_id,
            "pipeline": pipeline.to_dict(),
            "fragment": fragment,
            "fragment_count": count,
            "out_partitions": consumers,
            "side_tables": side_tables,
            "intermediate_service": runtime.intermediate_service,
            "table_service": "s3-standard",
        }
        if isinstance(pipeline.source, TableSource):
            table = runtime.catalog[pipeline.source.table]
            payload["table_service"] = table.service_name
            assigned = table.partitions[fragment::count]
            payload["partitions"] = [
                {"key": p.key, "logical_bytes": p.logical_bytes}
                for p in assigned]
            payload["read_fraction"] = _read_fraction(
                table, pipeline.source.columns)
        else:
            payload["producer_fragments"] = {
                upstream: fragments[upstream]
                for upstream in pipeline.source.inputs.values()}
        payloads.append(payload)
    return payloads


def _consumer_fragments(plan: PhysicalPlan, pipeline: PipelineSpec,
                        fragments: dict[str, int]) -> int:
    """Fragment count of the pipeline consuming this one's shuffle output."""
    if isinstance(pipeline.sink, ResultSink):
        return 1
    for candidate in plan.pipelines:
        if isinstance(candidate.source, ShuffleSource) \
                and pipeline.id in candidate.source.inputs.values():
            return fragments[candidate.id]
    raise ValueError(f"pipeline {pipeline.id!r} has a shuffle sink but "
                     f"no consumer")


def _dispatch(runtime: CoordinatorRuntime, context: FunctionContext,
              payloads: list[dict]):
    """Process: invoke all fragments, two-level when the stage is wide."""
    env = context.env
    if len(payloads) >= TWO_LEVEL_THRESHOLD:
        slices = [payloads[i:i + INVOKER_SLICE]
                  for i in range(0, len(payloads), INVOKER_SLICE)]
        processes = []
        for chunk in slices:
            yield env.timeout(INVOKE_DISPATCH_S)
            processes.append(env.process(
                runtime.backend.invoke(runtime.invoker_function,
                                       {"fragments": chunk}),
                name="invoke-invoker"))
        # AllOf fails fast on the first fragment failure and absorbs any
        # concurrent ones, so a crashed worker surfaces as one error.
        yield AllOf(env, processes)
        reports = []
        for process in processes:
            reports.extend(process.value.response)
        return reports
    processes = []
    for payload in payloads:
        yield env.timeout(INVOKE_DISPATCH_S)
        processes.append(env.process(
            runtime.backend.invoke(runtime.worker_function, payload),
            name="invoke-worker"))
    yield AllOf(env, processes)
    reports = []
    for process in processes:
        reports.append(process.value.response)
    return reports


def _aggregate_stage(pipeline: PipelineSpec, fragments: int,
                     started_at: float, finished_at: float,
                     reports) -> StageReport:
    stage = StageReport(pipeline=pipeline.id, fragments=fragments,
                        started_at=started_at, finished_at=finished_at)
    for report in reports:
        stage.requests += report.requests
        stage.read_requests += report.read_requests
        stage.write_requests += report.write_requests
        stage.bytes_read += report.bytes_read
        stage.bytes_written += report.bytes_written
        stage.rows_out += report.rows_out
        stage.request_sizes.extend(report.request_sizes)
        stage.shuffle_read_time_max = max(
            stage.shuffle_read_time_max,
            report.phases.get("shuffle_read", 0.0))
    return stage
