"""The query coordinator function.

The coordinator receives a physical plan (JSON), fetches input metadata
from the catalog, compiles the distributed plan (fragments per pipeline,
burst-aware worker sizing), schedules pipelines stage-wise, and gathers
the worker reports. For wide stages it fans invocations out through a
two-level procedure: helper "invoker" functions each dispatch a slice of
the workers (Section 3.2, [96]).

Fault tolerance is task-level (the Lambada/Starling recipe): every
fragment attempt runs *supervised* — its error is captured, never
propagated raw into the event kernel — and transient failures are
retried with jittered exponential backoff under a per-query retry
budget. Stragglers can additionally be hedged: once enough of a stage
has finished, fragments running far beyond the completed median get a
speculative duplicate, and whichever attempt finishes first wins.
Non-transient errors (missing table, oversized item) propagate
unchanged, annotated with the fragment's identity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.datagen.datasets import TableMetadata
from repro.engine.plan import (
    IdentityMemo,
    PhysicalPlan,
    PipelineSpec,
    ResultSink,
    ShuffleSource,
    TableSource,
    plan_memo,
)
from repro.engine.tracing import hedge_candidates
from repro.faas.function import FunctionContext
from repro.sim import AnyOf
from repro.telemetry import get_recorder

#: Per-invocation dispatch overhead on the invoking function (seconds).
INVOKE_DISPATCH_S = 0.003

#: Stages at or above this width use two-level invocation (Section 3.2).
TWO_LEVEL_THRESHOLD = 256

#: Workers dispatched per second-level invoker.
INVOKER_SLICE = 32

#: Burst-aware per-worker scan volume target: keep the effective bytes a
#: worker pulls within the ~300 MiB network burst budget (Section 4.5.1).
DEFAULT_TARGET_WORKER_INPUT = 270 * units.MiB


@dataclass(frozen=True)
class RecoveryConfig:
    """Task-level fault-tolerance knobs of the coordinator."""

    #: Total tries per fragment (1 = no retries, the pre-recovery engine).
    max_attempts: int = 3
    #: Retries allowed across one whole query.
    retry_budget: int = 32
    backoff_base_s: float = 0.1
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 5.0
    #: Uniform jitter fraction applied to each backoff delay.
    backoff_jitter: float = 0.5
    #: Speculative re-execution of stragglers. Off by default: hedging
    #: reacts to *natural* timing variance too, which would perturb the
    #: calibrated fault-free artifacts.
    hedge_enabled: bool = False
    #: A fragment is hedged when it runs ``hedge_factor`` x the median
    #: elapsed time of completed fragments in its stage.
    hedge_factor: float = 3.0
    #: Fraction of the stage that must have completed before hedging.
    hedge_quorum: float = 0.5
    #: Hedge launches allowed per query.
    hedge_budget: int = 4
    #: Never hedge before a fragment has run at least this long.
    hedge_min_wait_s: float = 0.5
    #: Straggler-scan interval while a stage is in flight.
    hedge_poll_interval_s: float = 0.25
    #: Seed of the per-query backoff-jitter stream.
    seed: int = 0


DEFAULT_RECOVERY = RecoveryConfig()


class FragmentFailure(RuntimeError):
    """A fragment exhausted its retry allowance.

    Carries the fragment's identity so callers (and the resilience
    report) can name the failing task — the two-level invoker path used
    to absorb concurrent failures into one anonymous error.
    """

    def __init__(self, pipeline: str, fragment: int, attempts: int,
                 cause: BaseException) -> None:
        super().__init__(
            f"fragment {pipeline}/{fragment} failed after {attempts} "
            f"attempt(s): {cause!r}")
        self.pipeline = pipeline
        self.fragment = fragment
        self.attempts = attempts
        self.cause = cause


@dataclass
class RecoveryState:
    """Per-query recovery accounting, reported back with the response."""

    retries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    failed_attempts: int = 0
    events: list[dict] = field(default_factory=list)
    #: In-flight duplicate attempts whose sibling already won; drained
    #: by the engine after the query so their records are billed.
    zombies: list = field(default_factory=list)

    def summary(self) -> dict:
        return {"retries": self.retries, "hedges": self.hedges,
                "hedge_wins": self.hedge_wins,
                "failed_attempts": self.failed_attempts,
                "events": self.events}


@dataclass
class StageReport:
    """Aggregated execution data of one pipeline."""

    pipeline: str
    fragments: int
    started_at: float
    finished_at: float
    requests: int = 0
    read_requests: int = 0
    write_requests: int = 0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    rows_out: int = 0
    shuffle_read_time_max: float = 0.0
    request_sizes: list[float] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall time of the stage."""
        return self.finished_at - self.started_at


@dataclass
class CoordinatorRuntime:
    """Services the coordinator binary is linked against."""

    catalog: dict[str, TableMetadata]
    backend: object  # LambdaPlatform or VmShim (same invoke interface)
    worker_function: str
    invoker_function: str
    intermediate_service: str = "s3-standard"
    target_worker_input: float = DEFAULT_TARGET_WORKER_INPUT
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    #: Monotonic execution counter; fences idempotent shuffle writes.
    epoch: int = 0
    #: Per-runtime plan-parse memo — runtime-owned (not module-global)
    #: so shard-parallel domains never share parse state.
    plan_cache: IdentityMemo = field(default_factory=plan_memo)


def make_coordinator_handler(runtime: CoordinatorRuntime):
    """Build the coordinator handler bound to ``runtime``."""

    def coordinator_handler(context: FunctionContext, payload: dict):
        return (yield from _run_query(runtime, context, payload))

    coordinator_handler.__name__ = "skyrise_coordinator"
    return coordinator_handler


def make_invoker_handler(runtime: CoordinatorRuntime):
    """Second-level invoker: dispatch a slice of worker invocations.

    Returns one outcome dict per fragment — ``{pipeline, fragment,
    attempt, ok, value}`` — instead of failing fast on the first worker
    error, so concurrent fragment failures keep their identity and the
    coordinator can retry each one individually.
    """

    def invoker_handler(context: FunctionContext, payload: dict):
        env = context.env
        processes = []
        for fragment_payload in payload["fragments"]:
            yield env.timeout(INVOKE_DISPATCH_S)
            if context.trace_ctx is not None:
                # Re-parent the worker invoke under this invoker's span so
                # the trace shows the two-level fan-out.
                fragment_payload = dict(fragment_payload,
                                        trace=context.trace_ctx)
            processes.append((fragment_payload, env.process(
                _supervise(env, runtime.backend, runtime.worker_function,
                           fragment_payload),
                name="invoke-worker")))
        outcomes = []
        for fragment_payload, process in processes:
            ok, value = yield process
            outcomes.append({
                "pipeline": fragment_payload["pipeline"]["id"],
                "fragment": fragment_payload["fragment"],
                "attempt": fragment_payload.get("attempt", 0),
                "ok": ok,
                "value": value,
            })
        return outcomes

    invoker_handler.__name__ = "skyrise_invoker"
    return invoker_handler


def _run_query(runtime: CoordinatorRuntime, context: FunctionContext,
               payload: dict):
    env = context.env
    plan = runtime.plan_cache.get(payload["plan"])
    started_at = env.now
    runtime.epoch += 1
    epoch = runtime.epoch
    state = RecoveryState()
    jitter_rng = np.random.default_rng(runtime.recovery.seed)
    fragments = _compile_fragments(runtime, plan)
    recorder = get_recorder()
    coord_span = None
    if recorder.enabled:
        coord_span = recorder.start_span(
            f"coordinate {plan.query_id}", env.now,
            parent=context.trace_ctx, category="coordinator",
            attrs={"query_id": plan.query_id, "epoch": epoch})
    stage_reports: list[StageReport] = []
    for stage in plan.stages():
        processes = []
        stage_started = env.now
        for pipeline in stage:
            payloads = _fragment_payloads(runtime, plan, pipeline, fragments,
                                          epoch=epoch)
            stage_span = None
            if coord_span is not None:
                stage_span = recorder.start_span(
                    f"stage {pipeline.id}", env.now, parent=coord_span,
                    category="stage",
                    attrs={"pipeline": pipeline.id,
                           "fragments": fragments[pipeline.id]})
                for fragment_payload in payloads:
                    fragment_payload["trace"] = stage_span
            processes.append((pipeline, stage_span, env.process(
                _dispatch(runtime, context, pipeline.id, payloads, state,
                          jitter_rng),
                name=f"stage-{pipeline.id}")))
        for pipeline, stage_span, process in processes:
            reports = yield process
            report = _aggregate_stage(
                pipeline, fragments[pipeline.id], stage_started, env.now,
                reports)
            stage_reports.append(report)
            if stage_span is not None:
                stage_span.finish(env.now, rows_out=report.rows_out,
                                  bytes_read=report.bytes_read,
                                  bytes_written=report.bytes_written)
    if coord_span is not None:
        coord_span.finish(env.now, retries=state.retries,
                          hedges=state.hedges)
    final = plan.final_pipeline
    return {
        "query_id": plan.query_id,
        "result_keys": [f"results/{plan.query_id}/part-{i:05d}"
                        for i in range(fragments[final.id])],
        "runtime": env.now - started_at,
        "stages": stage_reports,
        "fragments": fragments,
        "recovery": state.summary(),
        # Abandoned duplicates, still running: the engine drains these
        # after the query so their invocation records get billed.
        "_zombies": state.zombies,
    }


def _compile_fragments(runtime: CoordinatorRuntime,
                       plan: PhysicalPlan) -> dict[str, int]:
    """Decide data-parallel fragment counts per pipeline.

    Scan pipelines are sized burst-aware: the effective bytes a worker
    reads (partition size x projected-column fraction) stay within the
    network burst budget. Shuffle-consumer pipelines default to half the
    widest producer, bounded to [1, 128].
    """
    fragments: dict[str, int] = {}
    for pipeline in plan.pipelines:
        if pipeline.fragments is not None:
            fragments[pipeline.id] = pipeline.fragments
            continue
        if isinstance(pipeline.source, TableSource):
            table = runtime.catalog[pipeline.source.table]
            fraction = _read_fraction(table, pipeline.source.columns)
            effective = table.total_logical_bytes * fraction
            count = max(1, math.ceil(effective / runtime.target_worker_input))
            fragments[pipeline.id] = min(count, table.partition_count)
        else:
            producers = [fragments[dep] for dep in pipeline.depends_on]
            widest = max(producers) if producers else 1
            fragments[pipeline.id] = max(1, min(128, widest // 2))
    return fragments


def _read_fraction(table: TableMetadata, columns: list[str]) -> float:
    """Byte fraction of a table's width covered by ``columns``."""

    def width(names: list[str]) -> float:
        total = 0.0
        for name in names:
            dtype = table.schema.field(name).dtype
            fixed = dtype.fixed_width
            total += fixed if fixed is not None else 16.0
        return total

    full = width(table.schema.names())
    return width(columns) / full if full else 1.0


def _fragment_payloads(runtime: CoordinatorRuntime, plan: PhysicalPlan,
                       pipeline: PipelineSpec,
                       fragments: dict[str, int],
                       epoch: int = 0) -> list[dict]:
    """Build the worker payloads for every fragment of a pipeline."""
    count = fragments[pipeline.id]
    consumers = _consumer_fragments(plan, pipeline, fragments)
    side_tables = {}
    for name, table_name in pipeline.side_tables.items():
        table = runtime.catalog[table_name]
        side_tables[name] = {
            "partitions": [{"key": p.key, "logical_bytes": p.logical_bytes}
                           for p in table.partitions],
            "columns": table.schema.names(),
            "read_fraction": 1.0,
        }
    payloads = []
    # One spec dict shared by every fragment payload of this stage: the
    # dict is read-only downstream, and sharing lets the worker memoize
    # the parse by identity instead of re-parsing per fragment.
    pipeline_dict = pipeline.to_dict()
    for fragment in range(count):
        payload = {
            "query_id": plan.query_id,
            "pipeline": pipeline_dict,
            "fragment": fragment,
            "fragment_count": count,
            "out_partitions": consumers,
            "side_tables": side_tables,
            "intermediate_service": runtime.intermediate_service,
            "table_service": "s3-standard",
            "epoch": epoch,
            "attempt": 0,
            "hedged": False,
        }
        if isinstance(pipeline.source, TableSource):
            table = runtime.catalog[pipeline.source.table]
            payload["table_service"] = table.service_name
            assigned = table.partitions[fragment::count]
            payload["partitions"] = [
                {"key": p.key, "logical_bytes": p.logical_bytes}
                for p in assigned]
            payload["read_fraction"] = _read_fraction(
                table, pipeline.source.columns)
        else:
            payload["producer_fragments"] = {
                upstream: fragments[upstream]
                for upstream in pipeline.source.inputs.values()}
        payloads.append(payload)
    return payloads


def _consumer_fragments(plan: PhysicalPlan, pipeline: PipelineSpec,
                        fragments: dict[str, int]) -> int:
    """Fragment count of the pipeline consuming this one's shuffle output."""
    if isinstance(pipeline.sink, ResultSink):
        return 1
    for candidate in plan.pipelines:
        if isinstance(candidate.source, ShuffleSource) \
                and pipeline.id in candidate.source.inputs.values():
            return fragments[candidate.id]
    raise ValueError(f"pipeline {pipeline.id!r} has a shuffle sink but "
                     f"no consumer")


# -- supervised fragment execution --------------------------------------------


def _supervise(env, backend, function: str, payload: dict):
    """Process: invoke ``function`` and absorb any error into the result.

    Returns ``(True, response)`` or ``(False, error)``. The process
    itself never fails, so concurrent attempts cannot crash the kernel
    with an unwatched failure, and every failure keeps its fragment's
    identity.
    """
    try:
        record = yield from backend.invoke(function, payload)
    except BaseException as exc:  # noqa: BLE001 - captured for the caller
        return (False, exc)
    return (True, record.response)


def _delayed_attempt(env, backend, function: str, payload: dict,
                     delay: float):
    """Process: back off, then run one supervised attempt."""
    if delay > 0:
        yield env.timeout(delay)
    result = yield from _supervise(env, backend, function, payload)
    return result


class _Slot:
    """In-flight state of one fragment during dispatch."""

    __slots__ = ("payload", "fragment", "attempts", "launched_at",
                 "hedged", "done", "report", "active")

    def __init__(self, payload: dict) -> None:
        self.payload = payload
        self.fragment = payload["fragment"]
        self.attempts = 0       # attempts launched (primary + retries)
        self.launched_at = 0.0  # first-attempt dispatch time
        self.hedged = False
        self.done = False
        self.report = None
        #: (process, attempt_no, is_hedge) of live attempts.
        self.active: list[tuple] = []


def _backoff_delay(recovery: RecoveryConfig, attempt: int,
                   rng: np.random.Generator) -> float:
    """Jittered exponential backoff before retry number ``attempt``."""
    delay = min(recovery.backoff_cap_s,
                recovery.backoff_base_s
                * recovery.backoff_multiplier ** (attempt - 1))
    if recovery.backoff_jitter > 0:
        delay *= 1.0 + recovery.backoff_jitter * (2.0 * float(rng.random())
                                                  - 1.0)
    return delay


def _annotate(exc: BaseException, pipeline: str, fragment: int,
              attempt: int) -> None:
    """Attach fragment identity to an error without wrapping it."""
    if hasattr(exc, "add_note"):  # Python 3.11+
        exc.add_note(f"while executing fragment {pipeline}/{fragment} "
                     f"(attempt {attempt})")


def _handle_failure(env, runtime: CoordinatorRuntime, pipeline_id: str,
                    slot: _Slot, exc: BaseException, state: RecoveryState,
                    rng: np.random.Generator) -> None:
    """Retry a transient fragment failure or raise it with identity.

    Application errors (non-retryable) propagate unchanged so callers
    keep seeing the original exception type; transient errors retry
    until the per-fragment attempt cap or the query retry budget runs
    out, then surface as :class:`FragmentFailure`.
    """
    recovery = runtime.recovery
    if not getattr(exc, "retryable", False):
        _annotate(exc, pipeline_id, slot.fragment, slot.attempts - 1)
        raise exc
    if slot.attempts >= recovery.max_attempts \
            or state.retries >= recovery.retry_budget:
        raise FragmentFailure(pipeline_id, slot.fragment, slot.attempts,
                              exc) from exc
    state.retries += 1
    delay = _backoff_delay(recovery, slot.attempts, rng)
    payload = dict(slot.payload, attempt=slot.attempts, hedged=False)
    slot.attempts += 1
    state.events.append({
        "t": round(env.now, 9), "event": "retry", "pipeline": pipeline_id,
        "fragment": slot.fragment, "attempt": payload["attempt"],
        "backoff_s": round(delay, 9),
        "cause": type(exc).__name__})
    recorder = get_recorder()
    if recorder.enabled:
        recorder.event(env.now, "recovery.retry", category="recovery",
                       pipeline=pipeline_id, fragment=slot.fragment,
                       attempt=payload["attempt"], backoff_s=delay,
                       cause=type(exc).__name__)
    slot.active.append((
        env.process(_delayed_attempt(env, runtime.backend,
                                     runtime.worker_function, payload,
                                     delay),
                    name=f"retry-{pipeline_id}-{slot.fragment}"),
        payload["attempt"], False))


def _dispatch(runtime: CoordinatorRuntime, context: FunctionContext,
              pipeline_id: str, payloads: list[dict], state: RecoveryState,
              rng: np.random.Generator):
    """Process: run all fragments of a pipeline with fault tolerance."""
    env = context.env
    slots = [_Slot(payload) for payload in payloads]
    if len(payloads) >= TWO_LEVEL_THRESHOLD:
        yield from _prime_two_level(env, runtime, pipeline_id, slots, state,
                                    rng)
        # Hedging needs live per-fragment elapsed times; the two-level
        # path only learns outcomes after an invoker slice returns, so
        # only the retry layer applies here.
        allow_hedge = False
    else:
        for slot in slots:
            yield env.timeout(INVOKE_DISPATCH_S)
            slot.attempts = 1
            slot.launched_at = env.now
            slot.active.append((
                env.process(_supervise(env, runtime.backend,
                                       runtime.worker_function,
                                       slot.payload),
                            name="invoke-worker"),
                0, False))
        allow_hedge = True
    yield from _await_slots(runtime, context, pipeline_id, slots, state,
                            rng, allow_hedge)
    return [slot.report for slot in slots]


def _prime_two_level(env, runtime: CoordinatorRuntime, pipeline_id: str,
                     slots: list[_Slot], state: RecoveryState,
                     rng: np.random.Generator):
    """Process: fan the stage out through second-level invokers."""
    chunks = [slots[i:i + INVOKER_SLICE]
              for i in range(0, len(slots), INVOKER_SLICE)]
    processes = []
    for chunk in chunks:
        yield env.timeout(INVOKE_DISPATCH_S)
        for slot in chunk:
            slot.attempts = 1
            slot.launched_at = env.now
        invoker_payload = {"fragments": [slot.payload for slot in chunk]}
        trace = chunk[0].payload.get("trace")
        if trace is not None:
            invoker_payload["trace"] = trace
        processes.append((chunk, env.process(
            _supervise(env, runtime.backend, runtime.invoker_function,
                       invoker_payload),
            name="invoke-invoker")))
    for chunk, process in processes:
        ok, value = yield process
        if not ok:
            exc = value
            if not getattr(exc, "retryable", False):
                _annotate(exc, pipeline_id,
                          chunk[0].fragment, 0)
                raise exc
            # The invoker itself died: retry its whole slice as direct
            # worker invocations, one fragment at a time.
            for slot in chunk:
                state.failed_attempts += 1
                _handle_failure(env, runtime, pipeline_id, slot, exc,
                                state, rng)
            continue
        by_fragment = {slot.fragment: slot for slot in chunk}
        for outcome in value:
            slot = by_fragment[outcome["fragment"]]
            if outcome["ok"]:
                slot.done = True
                slot.report = outcome["value"]
            else:
                state.failed_attempts += 1
                _handle_failure(env, runtime, pipeline_id, slot,
                                outcome["value"], state, rng)


def _await_slots(runtime: CoordinatorRuntime, context: FunctionContext,
                 pipeline_id: str, slots: list[_Slot],
                 state: RecoveryState, rng: np.random.Generator,
                 allow_hedge: bool):
    """Process: drive all slots to completion (retries + hedging)."""
    env = context.env
    recovery = runtime.recovery
    completed_durations: list[float] = []
    by_fragment = {slot.fragment: slot for slot in slots}
    while True:
        open_slots = [slot for slot in slots if not slot.done]
        if not open_slots:
            return
        waits = [process for slot in open_slots
                 for (process, _, _) in slot.active]
        hedging = (allow_hedge and recovery.hedge_enabled
                   and state.hedges < recovery.hedge_budget
                   and any(not slot.hedged for slot in open_slots))
        if hedging:
            yield AnyOf(env, waits
                        + [env.timeout(recovery.hedge_poll_interval_s)])
        else:
            yield AnyOf(env, waits)
        for slot in slots:
            finished = [entry for entry in slot.active
                        if entry[0].processed]
            if not finished:
                continue
            slot.active = [entry for entry in slot.active
                           if not entry[0].processed]
            for process, attempt_no, is_hedge in finished:
                ok, value = process.value
                if slot.done:
                    continue  # late duplicate; already billed, ignored
                if ok:
                    slot.done = True
                    slot.report = value
                    completed_durations.append(env.now - slot.launched_at)
                    if is_hedge:
                        state.hedge_wins += 1
                        state.events.append({
                            "t": round(env.now, 9), "event": "hedge_win",
                            "pipeline": pipeline_id,
                            "fragment": slot.fragment})
                        recorder = get_recorder()
                        if recorder.enabled:
                            recorder.event(
                                env.now, "recovery.hedge_win",
                                category="recovery", pipeline=pipeline_id,
                                fragment=slot.fragment)
                    # Any sibling attempts still in flight are zombies:
                    # they run (and bill) to completion unobserved.
                    state.zombies.extend(
                        entry[0] for entry in slot.active)
                    slot.active = []
                else:
                    state.failed_attempts += 1
                    _handle_failure(env, runtime, pipeline_id, slot, value,
                                    state, rng)
        if hedging:
            elapsed = {slot.fragment: env.now - slot.launched_at
                       for slot in slots
                       if not slot.done and not slot.hedged}
            for fragment in hedge_candidates(
                    elapsed, completed_durations, len(slots),
                    factor=recovery.hedge_factor,
                    quorum=recovery.hedge_quorum,
                    min_wait_s=recovery.hedge_min_wait_s,
                    now=env.now, pipeline=pipeline_id):
                if state.hedges >= recovery.hedge_budget:
                    break
                slot = by_fragment[fragment]
                state.hedges += 1
                slot.hedged = True
                payload = dict(slot.payload, attempt=slot.attempts,
                               hedged=True)
                state.events.append({
                    "t": round(env.now, 9), "event": "hedge",
                    "pipeline": pipeline_id, "fragment": slot.fragment,
                    "elapsed_s": round(elapsed[fragment], 9)})
                recorder = get_recorder()
                if recorder.enabled:
                    recorder.event(
                        env.now, "recovery.hedge", category="recovery",
                        pipeline=pipeline_id, fragment=slot.fragment,
                        elapsed_s=elapsed[fragment])
                slot.active.append((
                    env.process(_supervise(env, runtime.backend,
                                           runtime.worker_function,
                                           payload),
                                name=f"hedge-{pipeline_id}-{fragment}"),
                    slot.attempts, True))


def _aggregate_stage(pipeline: PipelineSpec, fragments: int,
                     started_at: float, finished_at: float,
                     reports) -> StageReport:
    stage = StageReport(pipeline=pipeline.id, fragments=fragments,
                        started_at=started_at, finished_at=finished_at)
    for report in reports:
        stage.requests += report.requests
        stage.read_requests += report.read_requests
        stage.write_requests += report.write_requests
        stage.bytes_read += report.bytes_read
        stage.bytes_written += report.bytes_written
        stage.rows_out += report.rows_out
        stage.request_sizes.extend(report.request_sizes)
        stage.shuffle_read_time_max = max(
            stage.shuffle_read_time_max,
            report.phases.get("shuffle_read", 0.0))
    return stage
