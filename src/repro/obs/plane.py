"""The observability plane: one observer object wired into a replay.

:class:`ReplayObsPlane` implements the observer protocol
:func:`repro.shard.replay.run_replay` accepts (``on_completion`` /
``on_control_tick`` / ``on_shard_failure`` / ``on_fault`` /
``on_end``) and fans each callback out to the three obs subsystems:
the :class:`~repro.obs.slo.SLOEngine` (per-shard + fleet scopes), the
:class:`~repro.obs.sampler.TailSampler` (fast-path verdict per served
request), and the :class:`~repro.obs.flight.FlightRecorder` (notes for
sheds, failures, faults, alerts; incident bundles when an alert
fires).

The plane is strictly read-only with respect to the run it observes:
it never advances the clock, never draws from a simulation RNG stream,
and never mutates router/gateway state — a replay with a plane
attached produces the byte-identical :class:`ReplayResult` digest of a
bare replay (the neutrality property test pins this).

Per-event cost for the (dominant) dropped-trace path is three inline
scalar checks in the replay's completion loop — no Python call: the
plane exposes a :attr:`~ReplayObsPlane.completion_interest` spec that
``run_replay`` evaluates itself, so ``on_completion`` only ever fires
for kept traces (the trace-id-hash pre-filter a production collector's
head sampler applies before the tail pipeline ever sees a span). SLO
accounting costs *nothing* per event: the shard
gateways already maintain the counters the engine needs (``completed``
/ ``within_slo`` / ``shed`` / ``failed`` on
:class:`~repro.shard.metrics.ShardMetrics`), so the plane scrapes
counter deltas at control ticks — the same model a production
burn-rate alerter uses over scraped counter time series. Goodness in
the replay integration is therefore defined by the replay's own
``slo_latency_s`` bound (what ``within_slo`` counts); the policy's
``latency_s`` drives the per-event serving/offline paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.flight import DEFAULT_RING_CAPACITY, FlightRecorder
from repro.obs.sampler import (
    REASON_BASELINE,
    REASON_FAULT,
    REASON_SLOW,
    SamplerConfig,
    TailSampler,
)
from repro.obs.slo import SLOEngine, SLOPolicy

#: The fleet-wide roll-up scope every event also lands in.
FLEET_SCOPE = "fleet"


def shard_scope(shard: str) -> str:
    return f"shard:{shard}"


@dataclass(frozen=True)
class ObsConfig:
    """Everything the observability plane needs, declaratively."""

    slo: SLOPolicy = field(default_factory=SLOPolicy)
    sampler: SamplerConfig = field(default_factory=SamplerConfig)
    ring_capacity: int = DEFAULT_RING_CAPACITY
    #: Cap on incident bundles per run (an alert storm must not turn
    #: the observer into the memory hog it exists to debug).
    max_incidents: int = 8


class ReplayObsPlane:
    """Observer wired into a sharded-serving replay."""

    def __init__(self, config: ObsConfig | None = None,
                 run_config: dict | None = None) -> None:
        self.config = config or ObsConfig()
        #: JSON-ready description of the run, embedded in bundles.
        self.run_config = run_config or {}
        self.engine = SLOEngine(self.config.slo)
        self.sampler = TailSampler(self.config.sampler)
        self.flight = FlightRecorder(self.config.ring_capacity)
        #: (shed, failed, completed, within_slo) counters already
        #: folded into the SLO windows, per shard.
        self._seen: dict[str, tuple[int, int, int, int]] = {}
        self.fleet_snapshot: dict = {}
        #: The interest spec ``run_replay`` inlines into its completion
        #: loop: a completion is delivered to ``on_completion`` iff it
        #: is slow, rescued from a failed shard, or falls in the seeded
        #: baseline hash slice of request ids — so the per-event cost
        #: of every *dropped* trace is three scalar checks with no
        #: Python call, and every delivered completion is kept by
        #: construction. Totals are reconstructed from the shard
        #: counters scraped at control ticks.
        sampler_config = self.sampler.config
        self.completion_interest = (
            sampler_config.slow_threshold_s,
            sampler_config.seed * 0x9E3779B1 + 0x7F4A7C15,
            int(sampler_config.baseline_rate * 2 ** 32),
        )
        self.on_completion = self._make_on_completion()

    # -- replay observer protocol ------------------------------------------

    def _make_on_completion(self):
        """Build the hot-path completion hook and its sync-back hook.

        The hook only classifies — it relies on the caller honouring
        :attr:`completion_interest`, so everything it receives is a
        kept trace (precedence: fault > slow > baseline, matching
        :class:`~repro.obs.sampler.TailSampler`). ``completed`` and
        ``dropped`` are not counted here at all; the control-tick
        scrape derives them from the shard counters.
        """
        sampler = self.sampler
        slow_threshold = sampler.config.slow_threshold_s
        fault_reason, slow_reason = REASON_FAULT, REASON_SLOW
        baseline_reason = REASON_BASELINE
        rings = self.flight._rings
        ring_factory = self.flight._new_ring
        kept_append = sampler.kept_ids.append
        kept_reasons = sampler.kept_reasons
        kept_fault = kept_slow = kept_baseline = 0

        def on_completion(t: float, shard: str, request) -> None:
            """One *interesting* request finished on ``shard`` at ``t``."""
            nonlocal kept_fault, kept_slow, kept_baseline
            latency = t - request.submitted_at
            if request.rescued:
                kept_fault += 1
                reason = fault_reason
            elif latency >= slow_threshold:
                kept_slow += 1
                reason = slow_reason
            else:
                # Pre-filtered delivery: not slow, not rescued — in the
                # baseline hash slice by construction.
                kept_baseline += 1
                reason = baseline_reason
            trace_id = f"q{request.seq}"
            kept_append(trace_id)
            kept_reasons[trace_id] = reason
            if reason is not baseline_reason:
                # Only interesting traces earn a ring note; noting the
                # baseline slice would evict them during load spikes.
                # (FlightRecorder.note, inlined: the entry dict is
                # built once, no kwargs repack, floats left raw —
                # dump_incident round_floats the whole bundle anyway.)
                ring = rings.get(shard)
                if ring is None:
                    ring = rings[shard] = ring_factory()
                ring.append({"t": t, "kind": "trace-kept",
                             "trace": trace_id, "reason": reason,
                             "latency_s": latency})

        def sync() -> int:
            """Write kept counts back; returns the kept total."""
            sampler.kept_fault = kept_fault
            sampler.kept_slow = kept_slow
            sampler.kept_baseline = kept_baseline
            return kept_fault + kept_slow + kept_baseline

        self._sync_sampler = sync
        return on_completion

    def on_control_tick(self, t: float, router) -> None:
        """Scrape counter deltas, evaluate burn rules, dump incidents.

        Good events are the delta of ``within_slo``; budget-spending
        events are over-latency completions plus sheds plus failures —
        exactly the serving outcomes the roll-up reconciles, so the SLO
        windows and the fleet report can never disagree on totals. The
        sampler's ``completed``/``dropped`` totals come from the same
        scrape: the replay's interest pre-filter means the plane never
        sees dropped completions, so they are reconstructed here as
        *all completions minus kept*.
        """
        kept_total = self._sync_sampler()
        engine = self.engine
        total_completed = 0
        for shard in sorted(router.shard_metrics):
            metrics = router.shard_metrics[shard]
            shed, failed = metrics.shed, metrics.failed
            completed, within = metrics.completed, metrics.within_slo
            total_completed += completed
            seen_shed, seen_failed, seen_completed, seen_within = \
                self._seen.get(shard, (0, 0, 0, 0))
            d_shed = shed - seen_shed
            d_failed = failed - seen_failed
            d_good = within - seen_within
            d_slow = (completed - seen_completed) - d_good
            bad = d_shed + d_failed + d_slow
            if d_good or bad:
                scope = shard_scope(shard)
                engine.record(t, scope, True, count=d_good)
                engine.record(t, FLEET_SCOPE, True, count=d_good)
                engine.record(t, scope, False, count=bad)
                engine.record(t, FLEET_SCOPE, False, count=bad)
            if bad:
                self.flight.note(shard, t, "bad-delta", shed=d_shed,
                                 failed=d_failed, slow=d_slow)
            self._seen[shard] = (shed, failed, completed, within)
        sampler = self.sampler
        sampler.completed = total_completed
        sampler.dropped = total_completed - kept_total - sampler.kept_error
        for alert in engine.evaluate(t):
            self._on_alert(t, alert, router)

    def on_shard_failure(self, t: float, shard: str, orphans: int) -> None:
        self.flight.note(shard, t, "shard-failure", orphans=orphans)

    def on_fault(self, t: float, kind: str, target: str,
                 detail: str) -> None:
        """Chaos-injector hook: a fault struck ``target``."""
        note = {"fault": kind}
        if detail:
            note["detail"] = detail
        self.flight.note(target or FLEET_SCOPE, t, "fault", **note)

    def on_end(self, t: float, router) -> None:
        """Final evaluation + fleet snapshot at end of trace."""
        self.on_control_tick(t, router)
        self.fleet_snapshot = router.roll_up().to_dict()

    # -- incident handling -------------------------------------------------

    def _on_alert(self, t: float, alert, router) -> None:
        scope = alert.scope
        shard = scope.split(":", 1)[1] if scope.startswith("shard:") \
            else None
        self.flight.note(shard or FLEET_SCOPE, t, "alert",
                         rule=alert.rule, scope=scope,
                         long_burn=round(alert.long_burn, 9),
                         short_burn=round(alert.short_burn, 9))
        if len(self.flight.incidents) >= self.config.max_incidents:
            return
        report = router.roll_up()
        recent_kept = self.sampler.kept_ids[-16:]
        self.flight.dump_incident(
            at=t,
            trigger=alert.to_dict(),
            shards=None if shard is None else [shard],
            metrics=report.to_dict(),
            traces={
                "recent_kept": recent_kept,
                "reasons": {trace: self.sampler.kept_reasons[trace]
                            for trace in recent_kept},
                "sampling": self.sampler.summary(),
            },
            config=self.run_config)

    # -- views -------------------------------------------------------------

    def slo_report(self, now: float) -> dict:
        return self.engine.report(now)

    def summary(self, now: float) -> dict:
        """JSON-ready roll-up of everything the plane observed."""
        self._sync_sampler()
        return {
            "slo": self.slo_report(now),
            "sampling": self.sampler.summary(),
            "incidents": self.flight.incidents,
            "alerts_fired": len(self.engine.alerts),
            "fleet": self.fleet_snapshot,
        }
