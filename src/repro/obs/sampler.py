"""Tail-based trace sampling: decide retention when the trace is done.

Head sampling (flip a coin at trace start) throws away exactly the
traces you want during an incident — the slow ones, the errored ones,
the ones a chaos fault touched — because the coin is flipped before
anything interesting has happened. The :class:`TailSampler` instead
buffers a lightweight digest per open trace and decides at *completion*:

* always keep traces slower than ``slow_threshold_s``;
* always keep traces that errored;
* always keep traces a chaos fault touched (shard failure, straggler,
  throttle — marked by the replay/chaos integration);
* keep a seeded, deterministic ``baseline_rate`` slice of everything
  else so the healthy population stays represented.

The baseline decision hashes the trace's completion sequence number
with a Knuth multiplicative constant — **never** Python's randomized
``hash()`` and **never** the simulation's RNG streams, so sampling can
neither vary across processes nor perturb the run it observes.

Conservation is an invariant, not a hope: every trace that begins is
eventually accounted as kept (with a reason) or dropped, and
:meth:`TailSampler.check_conservation` proves it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Knuth's multiplicative hash constant (golden ratio * 2^32).
_KNUTH = 2654435761
_HASH_SPACE = float(2 ** 32)

#: Retention reasons, in precedence order.
REASON_ERROR = "error"
REASON_FAULT = "fault"
REASON_SLOW = "slow"
REASON_BASELINE = "baseline"


def baseline_keep(seq: int, seed: int, rate: float) -> bool:
    """Deterministic keep/drop for the baseline slice.

    Maps ``(seq, seed)`` to [0, 1) via an integer multiplicative hash;
    stable across processes and platforms, independent of every
    simulation RNG stream.
    """
    u = ((seq * _KNUTH + seed * 0x9E3779B1 + 0x7F4A7C15)
         & 0xFFFFFFFF) / _HASH_SPACE
    return u < rate


@dataclass(frozen=True)
class SamplerConfig:
    """Retention policy knobs."""

    slow_threshold_s: float = 2.0
    baseline_rate: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.slow_threshold_s <= 0:
            raise ValueError("slow threshold must be positive")
        if not 0.0 <= self.baseline_rate <= 1.0:
            raise ValueError("baseline rate must be in [0, 1]")


@dataclass
class TraceDigest:
    """The per-open-trace state the sampler buffers.

    Deliberately tiny — a handful of scalars, not the spans themselves
    (the flight recorder owns span retention) — so a million open
    traces cost megabytes, not gigabytes.
    """

    trace_id: str
    started_at: float
    scope: str = ""
    error: bool = False
    fault_touched: bool = False
    spans: int = 0
    attrs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Verdict:
    """One completed trace's retention decision."""

    trace_id: str
    kept: bool
    reason: str | None
    latency_s: float
    scope: str


class TailSampler:
    """Buffers open traces; rules on them when they complete."""

    def __init__(self, config: SamplerConfig | None = None) -> None:
        self.config = config or SamplerConfig()
        self._open: dict[str, TraceDigest] = {}
        #: Completion counter — the baseline hash input and the
        #: denominator of the conservation equation.
        self.completed = 0
        self.kept_error = 0
        self.kept_fault = 0
        self.kept_slow = 0
        self.kept_baseline = 0
        self.dropped = 0
        #: Trace ids retained, in completion order (bounded by caller
        #: usage: replays retain few traces; engine runs are small).
        self.kept_ids: list[str] = []
        self.kept_reasons: dict[str, str] = {}

    # -- trace lifecycle ---------------------------------------------------

    def begin(self, trace_id: str, at: float, scope: str = "") -> None:
        """Open a trace digest (idempotent for an already-open id)."""
        if trace_id not in self._open:
            self._open[trace_id] = TraceDigest(
                trace_id=trace_id, started_at=at, scope=scope)

    def note_span(self, trace_id: str) -> None:
        digest = self._open.get(trace_id)
        if digest is not None:
            digest.spans += 1

    def mark_error(self, trace_id: str) -> None:
        digest = self._open.get(trace_id)
        if digest is not None:
            digest.error = True

    def mark_fault(self, trace_id: str) -> None:
        digest = self._open.get(trace_id)
        if digest is not None:
            digest.fault_touched = True

    def observe(self, latency_s: float, *, error: bool = False,
                fault: bool = False) -> str | None:
        """Fast-path verdict for a trace completing *now*, unbuffered.

        The replay hot path knows everything at completion time
        (latency from the request, fault-touched from the rescue flag),
        so it skips the open-trace table — no digest allocation, no
        dict churn, and the trace-id string is only built for kept
        traces. Returns the retention reason, or ``None`` for dropped;
        a kept trace **must** then be registered via
        :meth:`register_kept` or conservation fails by construction.
        """
        seq = self.completed
        self.completed += 1
        if error:
            self.kept_error += 1
            return REASON_ERROR
        if fault:
            self.kept_fault += 1
            return REASON_FAULT
        if latency_s >= self.config.slow_threshold_s:
            self.kept_slow += 1
            return REASON_SLOW
        if baseline_keep(seq, self.config.seed, self.config.baseline_rate):
            self.kept_baseline += 1
            return REASON_BASELINE
        self.dropped += 1
        return None

    def register_kept(self, trace_id: str, reason: str) -> None:
        """File a kept trace's id (the slow half of the fast path)."""
        self.kept_ids.append(trace_id)
        self.kept_reasons[trace_id] = reason

    def complete(self, trace_id: str, at: float) -> Verdict:
        """Close a trace and rule on retention.

        Completing an id that was never begun still produces a (dropped
        or baseline-kept) verdict so conservation holds even for traces
        whose begin the integration missed.
        """
        digest = self._open.pop(trace_id, None)
        if digest is None:
            digest = TraceDigest(trace_id=trace_id, started_at=at)
        latency = at - digest.started_at
        reason = self.observe(latency, error=digest.error,
                              fault=digest.fault_touched)
        kept = reason is not None
        if kept:
            self.register_kept(trace_id, reason)
        return Verdict(trace_id=trace_id, kept=kept, reason=reason,
                       latency_s=latency, scope=digest.scope)

    # -- views -------------------------------------------------------------

    @property
    def kept(self) -> int:
        return (self.kept_error + self.kept_fault + self.kept_slow
                + self.kept_baseline)

    @property
    def open_traces(self) -> int:
        return len(self._open)

    def check_conservation(self) -> bool:
        """Every completed trace is kept (once, with a reason) or dropped."""
        return (self.completed == self.kept + self.dropped
                and len(self.kept_ids) == self.kept)

    def summary(self) -> dict:
        """JSON-ready sampling report (stable keys)."""
        return {
            "completed": self.completed,
            "kept": self.kept,
            "dropped": self.dropped,
            "open": self.open_traces,
            "kept_by_reason": {
                REASON_ERROR: self.kept_error,
                REASON_FAULT: self.kept_fault,
                REASON_SLOW: self.kept_slow,
                REASON_BASELINE: self.kept_baseline,
            },
            "config": {
                "slow_threshold_s": self.config.slow_threshold_s,
                "baseline_rate": self.config.baseline_rate,
                "seed": self.config.seed,
            },
            "conserved": self.check_conservation(),
        }
