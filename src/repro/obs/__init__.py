"""Observability and diagnostics plane over :mod:`repro.telemetry`.

Four subsystems, all deterministic and all outcome-neutral (attaching
them to a run never changes what the run computes):

* :mod:`repro.obs.slo` — declarative SLOs, sliding-window error-budget
  accounting, Google-SRE-style multi-window burn-rate alerts;
* :mod:`repro.obs.sampler` — tail-based trace sampling (keep
  slow/error/fault-touched traces, seeded baseline for the rest);
* :mod:`repro.obs.flight` — bounded flight-recorder rings and
  canonical-JSON incident bundles;
* :mod:`repro.obs.profiler` — span trees folded into per-stage
  resource/cost profiles (the optimizer feed).

:mod:`repro.obs.plane` packages the first three as a replay observer;
:mod:`repro.obs.scenario` (a layer up — it imports the sharded
fabric) runs observed replays and the ``repro obs --smoke`` gate. See
``docs/observability.md``.
"""

from repro.obs.flight import (
    DEFAULT_RING_CAPACITY,
    INCIDENT_SCHEMA,
    FlightRecorder,
    bundle_digest,
    verify_bundle,
)
from repro.obs.plane import ObsConfig, ReplayObsPlane
from repro.obs.profiler import PROFILE_SCHEMA, profile_recorder, profile_spans
from repro.obs.sampler import SamplerConfig, TailSampler, baseline_keep
from repro.obs.slo import (
    DEFAULT_BURN_RULES,
    Alert,
    BurnRule,
    SLOEngine,
    SLOPolicy,
    SlidingWindow,
    evaluate_offline,
)

__all__ = [
    "Alert",
    "BurnRule",
    "DEFAULT_BURN_RULES",
    "DEFAULT_RING_CAPACITY",
    "FlightRecorder",
    "INCIDENT_SCHEMA",
    "ObsConfig",
    "PROFILE_SCHEMA",
    "ReplayObsPlane",
    "SLOEngine",
    "SLOPolicy",
    "SamplerConfig",
    "SlidingWindow",
    "TailSampler",
    "baseline_keep",
    "bundle_digest",
    "evaluate_offline",
    "profile_recorder",
    "profile_spans",
    "verify_bundle",
]
