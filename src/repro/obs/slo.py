"""The SLO engine: objectives, sliding windows, burn-rate alerts.

Declarative service-level objectives evaluated on the *virtual* clock.
An :class:`SLOPolicy` names an objective (the fraction of events that
must be *good* — served within the latency bound and without error) and
a tuple of :class:`BurnRule` multi-window burn-rate alert rules in the
Google-SRE style: the **burn rate** is the ratio of the observed bad
fraction to the budgeted bad fraction ``1 - objective`` (burn 1.0 =
spending the error budget exactly at the sustainable rate), and a rule
fires only when *both* its long and short window burn at or above the
rule's factor — the long window proves the problem is real, the short
window proves it is still happening.

The :class:`SLOEngine` keys everything by *scope* — a free-form string
such as ``"shard:shard-3"`` or ``"tenant:interactive"`` plus the
implicit ``"fleet"`` roll-up — and keeps per-scope bucketed sliding
windows (O(1) amortized per recorded event, bounded memory) alongside
cumulative error-budget accounting. Evaluation happens at explicit
``evaluate(now)`` calls (the replay's control ticks), never implicitly,
so the engine does zero work between ticks beyond two integer
increments per event.

Everything here is plain Python on caller-provided timestamps: no clock
reads, no RNG, no simulation imports — recording an event can never
perturb the run it observes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class BurnRule:
    """One multi-window burn-rate alert rule.

    Fires when the error budget burns at ``>= factor`` times the
    sustainable rate over *both* windows. Short runs use much shorter
    windows than the SRE book's 1h/5m pairs; the structure is the same.
    """

    name: str
    long_window_s: float
    short_window_s: float
    factor: float

    def __post_init__(self) -> None:
        if self.long_window_s <= 0 or self.short_window_s <= 0:
            raise ValueError("burn-rule windows must be positive")
        if self.short_window_s > self.long_window_s:
            raise ValueError(
                f"short window {self.short_window_s} exceeds long window "
                f"{self.long_window_s}")
        if self.factor <= 0:
            raise ValueError("burn factor must be positive")


#: Default rules sized for replay-scale windows (hundreds of seconds):
#: a fast-burn pair that catches an acute outage within one control
#: interval, and a slow-burn pair that catches sustained degradation.
DEFAULT_BURN_RULES = (
    BurnRule(name="fast-burn", long_window_s=120.0, short_window_s=30.0,
             factor=4.0),
    BurnRule(name="slow-burn", long_window_s=300.0, short_window_s=60.0,
             factor=2.0),
)


@dataclass(frozen=True)
class SLOPolicy:
    """One declarative latency/error objective.

    ``objective`` is the good fraction required (0.99 = 1% error
    budget); an event is *good* iff it completed without error within
    ``latency_s``. Sheds, failures, and over-latency completions all
    spend the same budget — traffic turned away is traffic not served
    within its deadline.
    """

    name: str = "serving-latency"
    objective: float = 0.9
    latency_s: float = 2.0
    rules: tuple[BurnRule, ...] = DEFAULT_BURN_RULES

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}")
        if self.latency_s <= 0:
            raise ValueError("latency_s must be positive")
        if not self.rules:
            raise ValueError("need at least one burn rule")

    @property
    def budget_fraction(self) -> float:
        """The error budget: the bad fraction the objective tolerates."""
        return 1.0 - self.objective

    def is_good(self, latency_s: float, error: bool = False) -> bool:
        """Whether one served event meets the objective."""
        return not error and latency_s <= self.latency_s


@dataclass(frozen=True)
class Alert:
    """One burn-rate alert firing (a scope crossed a rule's factor)."""

    at: float
    scope: str
    rule: str
    short_burn: float
    long_burn: float
    budget_consumed: float

    def to_dict(self) -> dict:
        return {
            "at": round(self.at, 9),
            "scope": self.scope,
            "rule": self.rule,
            "short_burn": round(self.short_burn, 9),
            "long_burn": round(self.long_burn, 9),
            "budget_consumed": round(self.budget_consumed, 9),
        }


class SlidingWindow:
    """Bucketed (good, bad) counts over a trailing virtual-time window.

    Events land in fixed-width buckets; reading the window sums the
    buckets that overlap ``(now - window_s, now]``. Buckets older than
    the window are evicted on record, so memory is bounded by
    ``window_s / bucket_s`` regardless of event rate. Timestamps must be
    non-decreasing — the replay and serving layers both emit events in
    virtual-time order.
    """

    __slots__ = ("window_s", "bucket_s", "_buckets")

    def __init__(self, window_s: float, bucket_s: float) -> None:
        if window_s <= 0 or bucket_s <= 0:
            raise ValueError("window and bucket must be positive")
        self.window_s = window_s
        self.bucket_s = bucket_s
        #: deque of [bucket_start, good, bad], oldest first.
        self._buckets: deque[list] = deque()

    def record(self, now: float, good: bool, count: int = 1) -> None:
        start = (now // self.bucket_s) * self.bucket_s
        buckets = self._buckets
        if not buckets or buckets[-1][0] != start:
            buckets.append([start, 0, 0])
            horizon = now - self.window_s - self.bucket_s
            while buckets and buckets[0][0] < horizon:
                buckets.popleft()
        if good:
            buckets[-1][1] += count
        else:
            buckets[-1][2] += count

    def counts(self, now: float) -> tuple[int, int]:
        """(good, bad) over the trailing window ending at ``now``."""
        horizon = now - self.window_s
        good = bad = 0
        for start, g, b in self._buckets:
            if start + self.bucket_s > horizon and start <= now:
                good += g
                bad += b
        return good, bad

    def bad_fraction(self, now: float) -> float:
        good, bad = self.counts(now)
        total = good + bad
        return bad / total if total else 0.0


class _ScopeState:
    """Cumulative budget accounting plus the sliding windows of a scope."""

    __slots__ = ("good", "bad", "windows", "firing")

    def __init__(self, policy: SLOPolicy) -> None:
        self.good = 0
        self.bad = 0
        # One window per distinct length across all rules, shared.
        lengths = sorted({w for rule in policy.rules
                          for w in (rule.long_window_s,
                                    rule.short_window_s)})
        self.windows = {
            length: SlidingWindow(length, bucket_s=max(length / 12.0, 1.0))
            for length in lengths}
        #: Rules currently latched firing (re-arm when the long window
        #: drops back under the factor).
        self.firing: set[str] = set()

    def record(self, now: float, good: bool, count: int = 1) -> None:
        if good:
            self.good += count
        else:
            self.bad += count
        for window in self.windows.values():
            window.record(now, good, count)


class SLOEngine:
    """Evaluates one policy across many scopes on the virtual clock."""

    def __init__(self, policy: SLOPolicy) -> None:
        self.policy = policy
        self._scopes: dict[str, _ScopeState] = {}
        self.alerts: list[Alert] = []

    # -- recording ---------------------------------------------------------

    def record(self, now: float, scope: str, good: bool,
               count: int = 1) -> None:
        """Count ``count`` events (good or budget-spending) under ``scope``.

        ``count > 1`` is the bulk path for counter deltas (e.g. "this
        shard shed 1,200 requests since the last control tick") — one
        bucket increment instead of a Python-level loop.
        """
        if count <= 0:
            return
        state = self._scopes.get(scope)
        if state is None:
            state = self._scopes[scope] = _ScopeState(self.policy)
        state.record(now, good, count)

    def record_outcome(self, now: float, scope: str, latency_s: float,
                       error: bool = False) -> bool:
        """Classify one served event against the policy and record it."""
        good = self.policy.is_good(latency_s, error)
        self.record(now, scope, good)
        return good

    # -- evaluation --------------------------------------------------------

    def evaluate(self, now: float) -> list[Alert]:
        """Check every scope's burn rules; returns the *new* firings.

        A (scope, rule) pair latches once it fires and re-arms only
        after its long-window burn drops back below the factor, so a
        sustained outage produces one alert, not one per tick.
        """
        budget = self.policy.budget_fraction
        fired: list[Alert] = []
        for scope in sorted(self._scopes):
            state = self._scopes[scope]
            for rule in self.policy.rules:
                long_burn = state.windows[rule.long_window_s] \
                    .bad_fraction(now) / budget
                short_burn = state.windows[rule.short_window_s] \
                    .bad_fraction(now) / budget
                breaching = (long_burn >= rule.factor
                             and short_burn >= rule.factor)
                if breaching and rule.name not in state.firing:
                    state.firing.add(rule.name)
                    alert = Alert(
                        at=now, scope=scope, rule=rule.name,
                        short_burn=short_burn, long_burn=long_burn,
                        budget_consumed=self.budget_consumed(scope))
                    self.alerts.append(alert)
                    fired.append(alert)
                elif not breaching and long_burn < rule.factor:
                    state.firing.discard(rule.name)
        return fired

    # -- views -------------------------------------------------------------

    def scopes(self) -> list[str]:
        """Every scope that has recorded events, sorted."""
        return sorted(self._scopes)

    def budget_consumed(self, scope: str) -> float:
        """Fraction of the scope's cumulative error budget spent.

        1.0 means the objective is exactly violated over the scope's
        lifetime; above 1.0 the budget is overdrawn.
        """
        state = self._scopes.get(scope)
        if state is None:
            return 0.0
        total = state.good + state.bad
        if total == 0:
            return 0.0
        return (state.bad / total) / self.policy.budget_fraction

    def report(self, now: float) -> dict:
        """Canonical JSON-ready SLO report (stable keys, rounded)."""
        scopes = {}
        for scope in sorted(self._scopes):
            state = self._scopes[scope]
            total = state.good + state.bad
            scopes[scope] = {
                "total": total,
                "good": state.good,
                "bad": state.bad,
                "attainment": round(state.good / total, 9) if total else 1.0,
                "budget_consumed": round(self.budget_consumed(scope), 9),
                "firing": sorted(state.firing),
            }
        return {
            "schema": "repro.obs.slo/1",
            "policy": {
                "name": self.policy.name,
                "objective": self.policy.objective,
                "latency_s": self.policy.latency_s,
                "rules": [{"name": rule.name,
                           "long_window_s": rule.long_window_s,
                           "short_window_s": rule.short_window_s,
                           "factor": rule.factor}
                          for rule in self.policy.rules],
            },
            "as_of": round(now, 9),
            "scopes": scopes,
            "alerts": [alert.to_dict() for alert in self.alerts],
        }


@dataclass(frozen=True)
class _Event:
    """Internal: one (time, scope, good) tuple for offline evaluation."""

    t: float
    seq: int
    scope: str
    good: bool = field(compare=False)


def evaluate_offline(policy: SLOPolicy, events, window_end: float,
                     tick_s: float = 30.0) -> dict:
    """Feed unordered ``(t, scope, good)`` events through a fresh engine.

    The serving layer keeps per-tenant completion records rather than a
    merged timeline; this helper sorts them (ties broken by input
    order, so the result is deterministic), replays them through an
    :class:`SLOEngine` with periodic evaluation every ``tick_s``, and
    returns the final report. Pure function — same inputs, same bytes.
    """
    engine = SLOEngine(policy)
    ordered = sorted(
        (_Event(t=float(t), seq=seq, scope=scope, good=bool(good))
         for seq, (t, scope, good) in enumerate(events)),
        key=lambda e: (e.t, e.seq))
    next_tick = tick_s
    for event in ordered:
        while event.t >= next_tick:
            engine.evaluate(next_tick)
            next_tick += tick_s
        engine.record(event.t, event.scope, event.good)
    while next_tick <= window_end:
        engine.evaluate(next_tick)
        next_tick += tick_s
    engine.evaluate(window_end)
    return engine.report(window_end)
