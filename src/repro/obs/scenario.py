"""Observed replays: the obs plane wired into the sharded fabric.

This module sits one layer above the obs core (it imports
:mod:`repro.shard`), mirroring how ``repro.chaos.scenarios`` sits above
the chaos primitives. :func:`run_obs_replay` attaches a
:class:`~repro.obs.plane.ReplayObsPlane` to a
:func:`~repro.shard.replay.run_replay` run and packages the outcome —
the untouched replay result plus the SLO report, sampling summary, and
incident bundles — as an :class:`ObsReplayResult` with its own
canonical digest.

:func:`obs_smoke` is the CI gate: it proves, on the smoke-sized
shard-failure replay, that (1) attaching the plane leaves the replay
digest byte-identical (outcome neutrality), (2) two same-seed observed
runs produce byte-identical obs digests (incident bundles included),
(3) a multi-window burn-rate alert actually fires under the fault
plan and the bundle names the faulted shard, (4) fault-touched traces
were retained by the tail sampler, and (5) the sampler's conservation
equation holds.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.obs.flight import verify_bundle
from repro.obs.plane import ObsConfig, ReplayObsPlane
from repro.shard.replay import ReplayConfig, ReplayResult, run_replay
from repro.telemetry import canonical_json, round_floats


@dataclass
class ObsReplayResult:
    """One observed replay: the run's outcome plus the plane's view."""

    replay: ReplayResult
    slo: dict
    sampling: dict
    incidents: list = field(default_factory=list)
    alerts_fired: int = 0

    def to_dict(self) -> dict:
        return {
            "replay": self.replay.to_dict(),
            "slo": self.slo,
            "sampling": self.sampling,
            "incidents": self.incidents,
            "alerts_fired": self.alerts_fired,
        }

    def to_json(self) -> str:
        return canonical_json(round_floats(self.to_dict()))

    def digest(self) -> str:
        """SHA-256 over the canonical JSON of the observed outcome."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


def _run_config_dict(config: ReplayConfig) -> dict:
    """The replay config as a JSON-ready dict (embedded in bundles)."""
    return {
        "tenants": config.tenants,
        "events": config.events,
        "window_s": config.window_s,
        "seed": config.seed,
        "shards": config.shards,
        "slots_per_shard": config.slots_per_shard,
        "fault_plan": config.fault_plan,
        "fail_at": list(config.fail_at),
    }


def run_obs_replay(config: ReplayConfig | None = None,
                   obs_config: ObsConfig | None = None,
                   parallel: bool = False,
                   workers: int = 0) -> ObsReplayResult:
    """Run a replay with the observability plane attached.

    ``parallel=True`` routes through the shard-parallel kernel
    (:func:`repro.shard.run_parallel_replay`); the plane's callbacks
    arrive merged into the exact sequential order, so the observed
    digest — replay, SLO report, sampling, incident bundles — is
    byte-identical to the sequential run (the obs tests pin this).
    """
    config = config or ReplayConfig().smoke()
    plane = ReplayObsPlane(obs_config,
                           run_config=_run_config_dict(config))
    if parallel:
        from repro.shard.parallel_replay import run_parallel_replay
        result = run_parallel_replay(config, observer=plane,
                                     workers=workers)
    else:
        result = run_replay(config, observer=plane)
    return ObsReplayResult(
        replay=result,
        slo=plane.slo_report(config.window_s),
        sampling=plane.sampler.summary(),
        incidents=plane.flight.incidents,
        alerts_fired=len(plane.engine.alerts))


def obs_smoke(config: ReplayConfig | None = None) -> dict:
    """The ``repro obs --smoke`` gate; raises AssertionError on failure."""
    config = config or ReplayConfig().smoke()

    bare = run_replay(config)
    first = run_obs_replay(config)
    second = run_obs_replay(config)

    checks = {
        "outcome_neutral": first.replay.digest() == bare.digest(),
        "deterministic": first.digest() == second.digest(),
        "alert_fired": first.alerts_fired > 0,
        "incident_dumped": len(first.incidents) > 0,
        "conserved": bool(first.sampling["conserved"]),
        "fault_traces_kept":
            first.sampling["kept_by_reason"]["fault"] > 0,
        "bundles_verify":
            all(verify_bundle(bundle) for bundle in first.incidents),
    }
    # Some incident bundle must name the faulted shard: the ring key
    # whose notes carry the "shard-failure" entry is the dead shard.
    checks["names_faulted_shard"] = any(
        note["kind"] == "shard-failure"
        for bundle in first.incidents
        for ring in bundle["rings"].values()
        for note in ring)

    failed = sorted(name for name, ok in checks.items() if not ok)
    if failed:
        raise AssertionError(f"obs smoke failed: {failed}")
    return {
        "checks": checks,
        "digest": first.digest(),
        "alerts_fired": first.alerts_fired,
        "incidents": len(first.incidents),
        "sampling": first.sampling,
    }
