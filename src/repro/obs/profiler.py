"""Resource-attribution profiler: span trees folded into stage profiles.

The engine already emits a full span hierarchy per query (query →
coordinate → stage → worker → phase/operator, with storage and faas
spans hanging off the workers). This module folds that tree into
per-stage **profiles**: where each stage's worker-seconds went
(compute, network, storage wait, sandbox startup), how many bytes and
requests it moved per storage service, and what it cost — compute via
the Lambda price sheet, storage via per-service request/transfer
pricing (:func:`repro.pricing.calculator.stage_cost`).

The output (schema ``repro.obs.profile/1``) is the machine-readable
feed the placement/tiering optimizer (ROADMAP item 3) consumes: a cost
model per stage, not a flame graph per run. It is a pure fold over
recorded spans — same trace in, same bytes out.

Phase attribution:

* ``compute`` — the worker's ``phase compute`` spans;
* ``network`` — ``phase shuffle_read`` (inter-worker data motion);
* ``storage_wait`` — ``phase scan`` + ``phase write`` (external
  storage on both ends of the pipe);
* ``startup`` — ``coldstart``/``warmstart`` sandbox spans under the
  stage's invokes;
* ``other`` — worker time not covered above (scheduling slack,
  attempt overhead).
"""

from __future__ import annotations

from repro import units
from repro.pricing.calculator import stage_cost
from repro.telemetry.export import round_floats

PROFILE_SCHEMA = "repro.obs.profile/1"

#: phase-span suffix → share bucket.
_PHASE_BUCKET = {
    "compute": "compute",
    "shuffle_read": "network",
    "scan": "storage_wait",
    "write": "storage_wait",
}


def _index(spans):
    """(by_id, children) maps over finished spans of every trace."""
    by_id: dict[tuple[str, int], object] = {}
    children: dict[tuple[str, int], list] = {}
    for span in spans:
        by_id[(span.trace_id, span.span_id)] = span
        if span.parent_id is not None:
            children.setdefault((span.trace_id, span.parent_id),
                                []).append(span)
    return by_id, children


def _subtree(span, children):
    """Iterate a span's descendants (the span itself excluded)."""
    stack = list(children.get((span.trace_id, span.span_id), ()))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(children.get((node.trace_id, node.span_id), ()))


def _profile_stage(stage, children) -> dict:
    """Fold one stage span's subtree into a profile dict."""
    workers = 0
    worker_s = 0.0
    bytes_read = bytes_written = rows_out = 0
    phases: dict[str, float] = {}
    buckets = {"compute": 0.0, "network": 0.0, "storage_wait": 0.0}
    startup_s = 0.0
    cold_starts = warm_starts = 0
    storage: dict[str, dict] = {}
    operators: dict[str, dict] = {}
    invocations: list[tuple[float, float]] = []

    for span in _subtree(stage, children):
        category = span.category
        if category == "worker":
            workers += 1
            worker_s += span.duration
            bytes_read += span.attrs.get("bytes_read", 0)
            bytes_written += span.attrs.get("bytes_written", 0)
            rows_out += span.attrs.get("rows_out", 0)
        elif category == "phase":
            # "phase scan" → "scan"
            name = span.name.split(" ", 1)[-1]
            phases[name] = phases.get(name, 0.0) + span.duration
            bucket = _PHASE_BUCKET.get(name)
            if bucket is not None:
                buckets[bucket] += span.duration
        elif category == "operator":
            entry = operators.setdefault(
                span.name, {"n": 0, "total_s": 0.0, "rows_out": 0})
            entry["n"] += 1
            entry["total_s"] += span.duration
            entry["rows_out"] += span.attrs.get("rows_out", 0)
        elif category == "storage":
            service = span.attrs.get("service", "s3-standard")
            entry = storage.setdefault(service, {
                "reads": 0, "read_bytes": 0, "writes": 0, "write_bytes": 0,
                "wait_s": 0.0})
            entry["wait_s"] += span.duration
            size = span.attrs.get("bytes", 0)
            count = span.attrs.get("chunks", 1)
            if span.name == "storage.write":
                entry["writes"] += count
                entry["write_bytes"] += size
            else:
                entry["reads"] += count
                entry["read_bytes"] += size
        elif category == "faas":
            if span.name.startswith("invoke "):
                memory_mb = span.attrs.get("memory_mb")
                if memory_mb is not None:
                    invocations.append(
                        (memory_mb * units.MiB, span.duration))
            elif span.name == "coldstart":
                startup_s += span.duration
                cold_starts += 1
            elif span.name == "warmstart":
                startup_s += span.duration
                warm_starts += 1

    cost = stage_cost(
        invocations,
        {s: (e["reads"], e["read_bytes"]) for s, e in storage.items()},
        {s: (e["writes"], e["write_bytes"]) for s, e in storage.items()})

    attributed = sum(buckets.values()) + startup_s
    denominator = max(worker_s, attributed)
    shares = {bucket: (value / denominator if denominator else 0.0)
              for bucket, value in buckets.items()}
    shares["startup"] = startup_s / denominator if denominator else 0.0
    shares["other"] = max(0.0, 1.0 - sum(shares.values())) \
        if denominator else 0.0

    return {
        "wall_s": stage.duration,
        "workers": workers,
        "worker_s": worker_s,
        "phases": dict(sorted(phases.items())),
        "shares": shares,
        "startup_s": startup_s,
        "cold_starts": cold_starts,
        "warm_starts": warm_starts,
        "bytes_read": bytes_read,
        "bytes_written": bytes_written,
        "rows_out": rows_out,
        "storage": dict(sorted(storage.items())),
        "operators": dict(sorted(operators.items())),
        "cost": cost,
    }


def profile_spans(spans) -> dict:
    """Fold recorded spans into the per-query, per-stage profile feed.

    Accepts any iterable of finished :class:`~repro.telemetry.spans.Span`
    objects (typically ``recorder.spans``). Traces without stage spans
    (futures jobs, serving-only traces) simply contribute nothing.
    """
    _, children = _index(spans)
    queries: dict[str, dict] = {}
    totals = {"compute_usd": 0.0, "storage_usd": 0.0, "total_usd": 0.0}
    for span in spans:
        if span.category != "stage":
            continue
        query_key = span.trace_id
        stages = queries.setdefault(query_key, {})
        profile = _profile_stage(span, children)
        stages[span.attrs.get("pipeline", span.name)] = profile
        for key in totals:
            totals[key] += profile["cost"][key]
    return round_floats({
        "schema": PROFILE_SCHEMA,
        "queries": {key: {"stages": dict(sorted(stages.items()))}
                    for key, stages in sorted(queries.items())},
        "stage_count": sum(len(q) for q in queries.values()),
        "cost": totals,
    })


def profile_recorder(recorder) -> dict:
    """Convenience wrapper: profile everything a recorder captured."""
    return profile_spans(recorder.spans)
