"""The flight recorder: bounded recent-history rings and incident bundles.

Post-incident debugging needs the moments *before* the alert, but a
replay serves hundreds of thousands of requests — keeping everything is
off the table. The :class:`FlightRecorder` keeps a bounded ring of
recent notes per shard (``collections.deque(maxlen=N)``: O(1) append,
old entries fall off the back) and, when something fires — a burn-rate
alert, a chaos fault breaching an SLO — freezes the rings into an
**incident bundle**: a canonical-JSON document carrying the trigger,
the recent history of the implicated shards, a metrics snapshot, the
retained-trace ids, and enough config to reproduce the run.

Bundles are schema-versioned (``repro.obs.incident/1``) and digested
(sha256 over the canonical bytes) so the determinism contract extends
to incidents: same seed, same fault plan, byte-identical bundle.
"""

from __future__ import annotations

import hashlib
from collections import deque

from repro.telemetry.export import canonical_json, round_floats

INCIDENT_SCHEMA = "repro.obs.incident/1"

#: Default per-shard ring capacity. Sized so the ring spans several
#: control intervals of interesting events without holding the bulk of
#: a replay's traffic.
DEFAULT_RING_CAPACITY = 256


class FlightRecorder:
    """Bounded per-shard rings of recent observability notes.

    A *note* is a small dict — ``{"t": ..., "kind": ..., ...}`` — not a
    span: the recorder stores only what the integration explicitly
    notes (sheds, failures, rescues, faults, alerts), which keeps the
    per-event cost of the happy path at zero.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._rings: dict[str, deque] = {}
        self.incidents: list[dict] = []

    def _new_ring(self) -> deque:
        """A fresh bounded ring (hot-path integrations inline ``note``)."""
        return deque(maxlen=self.capacity)

    def note(self, shard: str, t: float, kind: str, **attrs) -> None:
        """Append one note to a shard's ring (creates the ring lazily)."""
        ring = self._rings.get(shard)
        if ring is None:
            ring = self._rings[shard] = self._new_ring()
        entry = {"t": round(t, 9), "kind": kind}
        entry.update(attrs)
        ring.append(entry)

    def ring(self, shard: str) -> list[dict]:
        """The shard's current ring contents, oldest first."""
        return list(self._rings.get(shard, ()))

    def shards(self) -> list[str]:
        return sorted(self._rings)

    # -- incident bundles --------------------------------------------------

    def dump_incident(self, at: float, trigger: dict,
                      shards=None,
                      metrics: dict | None = None,
                      traces: dict | None = None,
                      config: dict | None = None) -> dict:
        """Freeze the rings into a schema-versioned incident bundle.

        ``trigger`` describes what fired (an alert's dict, a fault
        breach); ``shards`` restricts the ring excerpt to the implicated
        shards (None = all); ``metrics`` / ``traces`` / ``config``
        attach the SLO-metric snapshot, retained-trace information, and
        run configuration. The bundle is float-rounded on construction
        so serializing it with :func:`canonical_json` is byte-stable.
        """
        selected = self.shards() if shards is None else sorted(shards)
        bundle = {
            "schema": INCIDENT_SCHEMA,
            "at": round(at, 9),
            "seq": len(self.incidents),
            "trigger": trigger,
            "rings": {shard: self.ring(shard) for shard in selected
                      if shard in self._rings},
            "metrics": metrics or {},
            "traces": traces or {},
            "config": config or {},
        }
        bundle = round_floats(bundle)
        bundle["digest"] = bundle_digest(bundle)
        self.incidents.append(bundle)
        return bundle


def bundle_digest(bundle: dict) -> str:
    """sha256 over the bundle's canonical bytes (digest field excluded)."""
    body = {k: v for k, v in bundle.items() if k != "digest"}
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()


def verify_bundle(bundle: dict) -> bool:
    """Check schema and digest integrity of a (possibly reloaded) bundle."""
    if bundle.get("schema") != INCIDENT_SCHEMA:
        return False
    return bundle.get("digest") == bundle_digest(bundle)
