"""Process-pool substrate for shard-parallel simulation.

The shard-parallel replay kernel (:mod:`repro.shard.parallel_replay`)
partitions a run into independent *domains* (shards) that only
synchronise at control ticks.  This module provides the two execution
substrates that kernel fans out over:

* :class:`ProcessPool` — one OS process per worker, each owning a
  handler object built by a picklable factory.  Calls are method
  dispatches shipped over a :func:`multiprocessing.Pipe`; scatter /
  gather lets a barrier round overlap the workers' compute.
* :class:`SerialPool` — the same interface with every handler living
  in-process.  No pickling, no processes: this is both the fallback on
  hosts where ``fork`` is unavailable and the fast path when the
  caller asks for ``workers=0`` (the partitioned kernel without the
  IPC tax — on a single-core host the honest configuration).

Both pools are deterministic by construction: a worker owns its
domains exclusively (no shared mutable state — the property the
CONC001/CONC002 lint checks gate), every call is addressed to exactly
one worker, and gather returns results in worker order, never in
completion order.

Errors raised inside a worker are re-raised at the caller as
:class:`WorkerError` carrying the remote traceback — a fault in one
domain must fail the whole run loudly, not silently skew the merge.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Any, Callable, Sequence

__all__ = ["ProcessPool", "SerialPool", "WorkerError", "make_pool"]

#: Sentinel method name that shuts a worker loop down.
_STOP = "__stop__"


class WorkerError(RuntimeError):
    """A worker raised; carries the remote traceback text."""

    def __init__(self, worker: int, remote_traceback: str) -> None:
        super().__init__(
            f"worker {worker} raised:\n{remote_traceback}")
        self.worker = worker
        self.remote_traceback = remote_traceback


def _worker_main(conn, factory: Callable[[], Any]) -> None:
    """Worker loop: build the handler, dispatch method calls forever."""
    try:
        handler = factory()
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ok", None))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        method, args = message
        if method == _STOP:
            conn.send(("ok", None))
            break
        try:
            result = getattr(handler, method)(*args)
        except BaseException:
            conn.send(("error", traceback.format_exc()))
        else:
            conn.send(("ok", result))
    conn.close()


class ProcessPool:
    """``n`` worker processes, each owning one handler object.

    ``factory`` is called once inside each worker to build its
    handler; it must be picklable (a module-level callable, or a
    ``functools.partial`` over one).  With the ``fork`` start method
    the factory may also close over inherited state.
    """

    def __init__(self, factory: Callable[[], Any], workers: int,
                 context: str = "fork") -> None:
        if workers <= 0:
            raise ValueError("ProcessPool needs at least one worker")
        ctx = multiprocessing.get_context(context)
        self.workers = workers
        self._conns = []
        self._procs = []
        #: Outstanding (un-received) replies per worker, so close()
        #: can drain before shutting down.
        self._inflight = [0] * workers
        for index in range(workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_worker_main,
                               args=(child, factory), daemon=True)
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        for index, conn in enumerate(self._conns):
            status, payload = conn.recv()
            if status != "ok":
                self._terminate()
                raise WorkerError(index, payload)

    # -- calls -------------------------------------------------------------

    def submit(self, worker: int, method: str, *args: Any) -> None:
        """Send one call without waiting for its result."""
        self._conns[worker].send((method, args))
        self._inflight[worker] += 1

    def result(self, worker: int) -> Any:
        """Receive the next pending result of one worker."""
        status, payload = self._conns[worker].recv()
        self._inflight[worker] -= 1
        if status != "ok":
            raise WorkerError(worker, payload)
        return payload

    def call(self, worker: int, method: str, *args: Any) -> Any:
        """One synchronous round trip to one worker."""
        self.submit(worker, method, *args)
        return self.result(worker)

    def scatter(self, calls: Sequence[tuple[int, str, tuple]]) -> list:
        """Overlapped fan-out: send every call, then gather in order.

        ``calls`` is ``[(worker, method, args), ...]``; the returned
        results follow the same order.  All sends complete before any
        receive, so workers compute concurrently between the two
        phases — this is the barrier primitive a control tick uses.
        """
        for worker, method, args in calls:
            self.submit(worker, method, *args)
        return [self.result(worker) for worker, _method, _args in calls]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop every worker loop and join the processes."""
        try:
            for worker, conn in enumerate(self._conns):
                while self._inflight[worker] > 0:
                    self.result(worker)
                conn.send((_STOP, ()))
            for worker in range(self.workers):
                self.result(worker)
        except (OSError, EOFError, WorkerError):
            pass
        finally:
            self._terminate()

    def _terminate(self) -> None:
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SerialPool:
    """The :class:`ProcessPool` interface with in-process handlers.

    Handlers run in the caller's process and results are returned
    directly — no pickling, no pipes.  ``scatter`` degenerates to a
    sequential loop; determinism and call order are identical to the
    process pool by construction, which is exactly what makes the two
    substrates interchangeable under a digest equality gate.
    """

    def __init__(self, factory: Callable[[], Any], workers: int = 1) -> None:
        if workers <= 0:
            raise ValueError("SerialPool needs at least one worker")
        self.workers = workers
        self.handlers = [factory() for _ in range(workers)]
        self._pending: list[list[Any]] = [[] for _ in range(workers)]

    def submit(self, worker: int, method: str, *args: Any) -> None:
        handler = self.handlers[worker]
        try:
            result = ("ok", getattr(handler, method)(*args))
        except BaseException:
            result = ("error", traceback.format_exc())
        self._pending[worker].append(result)

    def result(self, worker: int) -> Any:
        status, payload = self._pending[worker].pop(0)
        if status != "ok":
            raise WorkerError(worker, payload)
        return payload

    def call(self, worker: int, method: str, *args: Any) -> Any:
        self.submit(worker, method, *args)
        return self.result(worker)

    def scatter(self, calls: Sequence[tuple[int, str, tuple]]) -> list:
        for worker, method, args in calls:
            self.submit(worker, method, *args)
        return [self.result(worker) for worker, _method, _args in calls]

    def close(self) -> None:
        self.handlers = []
        self._pending = []

    def __enter__(self) -> "SerialPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:
        return False


def make_pool(factory: Callable[[], Any], workers: int):
    """Build the right substrate for a worker count.

    ``workers == 0`` (or a platform without ``fork``) yields a
    :class:`SerialPool` with one in-process handler; anything larger
    forks that many worker processes.
    """
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if workers == 0 or not _fork_available():
        return SerialPool(factory, workers=max(workers, 1))
    return ProcessPool(factory, workers=workers)
