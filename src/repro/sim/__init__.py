"""Discrete-event simulation kernel.

This package provides the simulation substrate on which all infrastructure
simulators (FaaS platform, storage services, network fabric) are built. The
design follows the classic process-interaction style: simulation logic is
written as Python generator functions ("processes") that yield events, and
an :class:`Environment` advances virtual time by executing scheduled events
in timestamp order.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5.0)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
5.0
"""

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Process, Timeout
from repro.sim.kernel import Environment
from repro.sim.parallel import ProcessPool, SerialPool, WorkerError, make_pool
from repro.sim.resources import Container, PriorityResource, Resource, Store
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "ProcessPool",
    "RandomStreams",
    "Resource",
    "SerialPool",
    "SimulationError",
    "Store",
    "Timeout",
    "WorkerError",
    "make_pool",
]
