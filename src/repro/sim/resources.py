"""Shared resources for simulation processes.

Three classic resource kinds are provided:

* :class:`Resource` — a counted resource with FIFO (or priority) queueing,
  modelling things like worker slots or connection pools.
* :class:`Container` — a continuous quantity (e.g. tokens, bytes of budget)
  with blocking ``get``/``put``.
* :class:`Store` — a FIFO buffer of discrete items (e.g. a message queue).
"""

from __future__ import annotations

import heapq
from typing import Any

from repro.sim.errors import SimulationError
from repro.sim.events import Event


class Request(Event):
    """Pending acquisition of one unit of a :class:`Resource`.

    Usable as a context manager so the unit is always released::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._enqueue(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.resource.release(self)


class Resource:
    """A resource with integral capacity and a wait queue.

    ``request()`` returns an event that triggers once a unit is granted;
    ``release(request)`` hands the unit back and wakes the next waiter.
    """

    def __init__(self, env, capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self._users: set[Request] = set()
        self._queue: list[tuple[int, int, Request]] = []
        self._seq = 0

    @property
    def capacity(self) -> int:
        """Total number of units this resource can grant concurrently."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of units currently granted."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._queue)

    def request(self, priority: int = 0) -> Request:
        """Ask for one unit; lower ``priority`` values are served first."""
        return Request(self, priority=priority)

    def release(self, request: Request) -> None:
        """Return the unit held by ``request``.

        Releasing a request that was never granted cancels it instead.
        """
        if request in self._users:
            self._users.remove(request)
            self._grant_waiters()
        else:
            self._queue = [entry for entry in self._queue if entry[2] is not request]
            heapq.heapify(self._queue)

    def _enqueue(self, request: Request) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (request.priority, self._seq, request))
        self._grant_waiters()

    def _grant_waiters(self) -> None:
        while self._queue and len(self._users) < self._capacity:
            _, _, request = heapq.heappop(self._queue)
            self._users.add(request)
            request.succeed(request)


class PriorityResource(Resource):
    """Alias of :class:`Resource`; priorities are honoured by ``request``."""


class Container:
    """A continuous quantity with blocking ``get`` and ``put``.

    Useful for byte budgets and token accounting where the amount matters
    but identity of individual units does not.
    """

    def __init__(self, env, capacity: float = float("inf"),
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init={init} outside [0, {capacity}]")
        self.env = env
        self._capacity = capacity
        self._level = float(init)
        self._getters: list[tuple[int, Event, float]] = []
        self._putters: list[tuple[int, Event, float]] = []
        self._seq = 0

    @property
    def level(self) -> float:
        """Amount currently stored."""
        return self._level

    @property
    def capacity(self) -> float:
        """Maximum amount the container can hold."""
        return self._capacity

    def get(self, amount: float) -> Event:
        """Event that triggers once ``amount`` could be withdrawn."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        event = Event(self.env)
        self._seq += 1
        self._getters.append((self._seq, event, amount))
        self._settle()
        return event

    def put(self, amount: float) -> Event:
        """Event that triggers once ``amount`` fits into the container."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        event = Event(self.env)
        self._seq += 1
        self._putters.append((self._seq, event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                _, event, amount = self._putters[0]
                if self._level + amount <= self._capacity:
                    self._putters.pop(0)
                    self._level += amount
                    event.succeed(amount)
                    progressed = True
            if self._getters:
                _, event, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.pop(0)
                    self._level -= amount
                    event.succeed(amount)
                    progressed = True


class Store:
    """A FIFO buffer of discrete items with blocking ``get``/``put``."""

    def __init__(self, env, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self._items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Event, Any]] = []

    @property
    def items(self) -> list:
        """Snapshot of buffered items (oldest first)."""
        return list(self._items)

    @property
    def capacity(self) -> float:
        """Maximum number of buffered items."""
        return self._capacity

    def put(self, item: Any) -> Event:
        """Event that triggers once ``item`` has been buffered."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._settle()
        return event

    def get(self) -> Event:
        """Event that triggers with the oldest buffered item."""
        event = Event(self.env)
        self._getters.append(event)
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and len(self._items) < self._capacity:
                event, item = self._putters.pop(0)
                self._items.append(item)
                event.succeed(item)
                progressed = True
            if self._getters and self._items:
                event = self._getters.pop(0)
                item = self._items.pop(0)
                event.succeed(item)
                progressed = True


def ensure_positive(name: str, value: float) -> float:
    """Validate that ``value`` is positive, returning it for chaining."""
    if value <= 0:
        raise SimulationError(f"{name} must be positive, got {value}")
    return value
