"""Exception types used by the simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class EmptySchedule(SimulationError):
    """Raised internally when the event queue runs dry before ``until``."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The interrupting party may attach an arbitrary ``cause`` describing why
    the interrupt happened (e.g. a preemption token or a timeout sentinel).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"
