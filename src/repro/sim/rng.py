"""Deterministic, named random-number streams.

Every stochastic component of the simulation (latency sampling, coldstart
jitter, placement noise) draws from its own named stream so that adding a
new consumer never perturbs the draws seen by existing ones. Streams are
derived from a single root seed via ``numpy``'s ``SeedSequence`` spawning,
keyed by a stable hash of the stream name.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _digest(name: str) -> int:
    """Stable 64-bit integer digest of a stream name."""
    raw = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(raw[:8], "little")


class RandomStreams:
    """Factory of independent, reproducible ``numpy`` generators."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed all streams are derived from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields an identical sequence.
        """
        if name not in self._streams:
            sequence = np.random.SeedSequence([self._seed, _digest(name)])
            self._streams[name] = np.random.default_rng(sequence)
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours."""
        return RandomStreams(seed=(self._seed * 0x9E3779B1 + _digest(name)) % 2**63)
