"""The simulation environment: virtual clock and event queue."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.sim.errors import EmptySchedule, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Process, Timeout

#: Default priority for ordinary events. Urgent events (process init,
#: interrupts) use priority 0 so they run before same-timestamp events.
NORMAL_PRIORITY = 1


class Environment:
    """Execution environment for a discrete-event simulation.

    The environment keeps the virtual clock (:attr:`now`, in seconds) and a
    priority queue of triggered events. Time only advances when :meth:`run`
    or :meth:`step` processes events; scheduling is O(log n).
    """

    __slots__ = ("_now", "_queue", "_seq", "_active_process", "_monitor")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._monitor: Optional[Any] = None

    def set_monitor(self, monitor: Optional[Any]) -> None:
        """Install a passive observer (``on_event(now, queue_depth)`` and
        ``on_process(name)``); it must never schedule events or touch the
        clock. The kernel stays import-free of any telemetry package —
        recorders attach themselves through this hook."""
        self._monitor = monitor

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def scheduled_events(self) -> int:
        """Total events scheduled so far (a deterministic work counter)."""
        return self._seq

    @property
    def active_process_generator(self):
        """Generator of the active process (used for self-interrupt checks)."""
        return self._active_process.generator if self._active_process else None

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: Optional[str] = None) -> Process:
        """Start a new process executing ``generator``."""
        if self._monitor is not None:
            self._monitor.on_process(name)
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Event that triggers when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling and execution ------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL_PRIORITY) -> None:
        """Queue ``event`` for processing ``delay`` seconds from now."""
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Timestamp of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event, advancing the clock."""
        try:
            when, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no more events scheduled") from None
        self._now = when
        if self._monitor is not None:
            self._monitor.on_event(when, len(self._queue))
        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An unhandled failure: abort the simulation loudly rather than
            # silently dropping the exception.
            if isinstance(event._value, BaseException):
                raise event._value
            raise SimulationError(f"event failed with non-exception {event._value!r}")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue is empty), a number
        (run until the clock reaches that time), or an :class:`Event` (run
        until that event is processed, returning its value).

        The loop is :meth:`step` inlined with the queue and heap pop
        bound to locals — event dispatch is the simulator's innermost
        loop, and the per-event overhead here is what every scenario
        pays. Pop order, clock updates, monitor hooks, and failure
        propagation are identical to calling :meth:`step` repeatedly.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} lies in the past (now={self._now})")
        queue = self._queue
        heappop = heapq.heappop
        while True:
            if stop_event is not None and stop_event.callbacks is None:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            if not queue:
                if stop_event is not None:
                    raise SimulationError(
                        "simulation ended before the awaited event triggered")
                return None
            if queue[0][0] > stop_time:
                self._now = stop_time
                return None
            when, _, _, event = heappop(queue)
            self._now = when
            monitor = self._monitor
            if monitor is not None:
                monitor.on_event(when, len(queue))
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                if isinstance(event._value, BaseException):
                    raise event._value
                raise SimulationError(
                    f"event failed with non-exception {event._value!r}")
