"""Event primitives for the discrete-event simulation kernel.

Events follow a small state machine: *pending* (created, not yet triggered),
*triggered* (scheduled for processing at some timestamp), and *processed*
(callbacks have run). Processes are events themselves: a process event
triggers when its underlying generator returns (or fails).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.errors import Interrupt, SimulationError

PENDING = object()
"""Unique sentinel marking an event value as not yet decided."""


class Event:
    """An event that may happen at some point in simulated time.

    Callbacks (``event.callbacks``) are invoked with the event as their only
    argument when the event is processed. An event carries a ``value`` that
    waiting processes receive, and an ``ok`` flag; a failed event re-raises
    its value (an exception) inside any process waiting on it.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:  # noqa: F821
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded; only meaningful once triggered."""
        if self._value is PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see ``exception``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel does not abort."""
        self._defused = True

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"  # repro-lint: disable=DET004 debug repr only, never feeds artifacts


class Timeout(Event):
    """An event that triggers after a fixed delay of simulated time."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float,  # noqa: F821
                 value: Any = None) -> None:
        # Timeouts dominate the event mix, so construction is inlined:
        # attributes are set directly and the schedule heappush happens
        # here (priority 1 == kernel.NORMAL_PRIORITY), skipping the
        # Event.__init__ and Environment.schedule call frames.
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._delay = delay
        self._ok = True
        self._value = value
        self._defused = False
        env._seq += 1
        heapq.heappush(env._queue, (env._now + delay, 1, env._seq, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay} at {id(self):#x}>"  # repro-lint: disable=DET004 debug repr only, never feeds artifacts


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:  # noqa: F821
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        env.schedule(self, priority=0)


class Process(Event):
    """Wraps a generator so it can be executed as a simulation process.

    The process advances by sending the value of each yielded event back
    into the generator. The process event itself triggers with the
    generator's return value, or fails with an uncaught exception.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment",  # noqa: F821
                 generator: Generator[Event, Any, Any],
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def generator(self) -> Generator[Event, Any, Any]:
        """The underlying generator (read-only; identity checks only)."""
        return self._generator

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for, if any."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: object = None) -> None:
        """Throw an :class:`Interrupt` into this process.

        The interrupt is delivered via an immediately scheduled event so
        that interrupting is safe from within any other process.
        """
        if not self.is_alive:
            raise SimulationError(f"{self} has terminated and cannot be interrupted")
        if self._generator is self.env.active_process_generator:
            raise SimulationError("a process cannot interrupt itself")
        # Unhook from whatever the process was waiting on, so the stale
        # target cannot resume the process again after the interrupt.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks = [self._resume]
        self.env.schedule(event, priority=0)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_process = self
        while True:
            if event._ok:
                try:
                    next_target = self._generator.send(event._value)
                except StopIteration as stop:
                    self._terminate(True, stop.value)
                    break
                except BaseException as exc:
                    self._terminate(False, exc)
                    break
            else:
                event._defused = True
                try:
                    next_target = self._generator.throw(event._value)
                except StopIteration as stop:
                    self._terminate(True, stop.value)
                    break
                except BaseException as exc:
                    self._terminate(False, exc)
                    break
            if not isinstance(next_target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_target!r}")
                event = Event(self.env)
                event._ok = False
                event._value = exc
                event._defused = True
                continue
            if next_target.callbacks is not None:
                # The target has not been processed yet: park this process.
                next_target.callbacks.append(self._resume)
                self._target = next_target
                break
            # The target was already processed; feed its value immediately.
            event = next_target
        self.env._active_process = None

    def _terminate(self, ok: bool, value: Any) -> None:
        self._target = None
        self._ok = ok
        self._value = value
        self.env.schedule(self)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"  # repro-lint: disable=DET004 debug repr only, never feeds artifacts


class ConditionValue(dict):
    """Mapping of events to their values for condition events."""


class _Condition(Event):
    """Base class for :class:`AllOf` / :class:`AnyOf` composite events.

    Membership is tracked with a pending counter rather than a scan:
    ``_pending`` counts members not yet processed, so each member's
    completion is O(1) instead of O(members) — the difference between
    O(n) and O(n²) for wide fan-out joins (straggler hedging creates an
    :class:`AnyOf` per chunk read).
    """

    __slots__ = ("_events", "_pending")

    def __init__(self, env: "Environment",  # noqa: F821
                 events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        self._pending = sum(1 for event in self._events
                            if event.callbacks is not None)
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._on_member)
        if not self._events and self._value is PENDING:
            self.succeed(ConditionValue())

    def _collect_values(self) -> ConditionValue:
        values = ConditionValue()
        for event in self._events:
            if event.callbacks is None and event._ok:
                values[event] = event._value
        return values

    def _on_member(self, event: Event) -> None:
        """Member completion callback: count it down, then re-evaluate."""
        self._pending -= 1
        self._check(event)

    def _check(self, event: Event) -> None:
        if not event._ok:
            # The condition absorbs member failures — including ones that
            # arrive after the condition already triggered (e.g. a second
            # concurrent process failing after the first one did).
            event._defused = True
        if self._value is not PENDING:
            return
        if not event._ok:
            self.fail(event._value)
        elif self._satisfied():
            self.succeed(self._collect_values())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Event that triggers once all given events have triggered."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._pending == 0


class AnyOf(_Condition):
    """Event that triggers as soon as any one of the given events does."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._pending < len(self._events)
