"""Application-level workloads: the query suite and its protocols.

Wires the Skyrise engine onto a :class:`~repro.core.context.CloudSim`,
loads scaled TPC datasets, and implements the experiment protocols of
Sections 4.5, 4.6, and 5.2: single-query runs with controlled storage
setups, the cold (15-minute intervals over a workday) and warm
(back-to-back) variability suites across regions, and FaaS-vs-IaaS
comparison runs.
"""

from repro.workloads.arrivals import (
    ArrivalOutcome,
    cost_crossover,
    run_arrival_workload,
)
from repro.workloads.traffic import (
    burst_arrivals,
    poisson_arrivals,
    zipf_trace,
    zipf_trace_reference,
)
from repro.workloads.suite import (
    SuiteSetup,
    run_query_experiment,
    run_suite_once,
    run_variability_experiment,
    setup_engine,
    table5_metrics,
)

__all__ = [
    "ArrivalOutcome",
    "SuiteSetup",
    "burst_arrivals",
    "cost_crossover",
    "poisson_arrivals",
    "run_arrival_workload",
    "run_query_experiment",
    "run_suite_once",
    "run_variability_experiment",
    "setup_engine",
    "table5_metrics",
    "zipf_trace",
    "zipf_trace_reference",
]
