"""Query suite orchestration: setup, protocols, variability metrics."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro import units
from repro.analysis.stats import coefficient_of_variation, median_ratio
from repro.core.context import CloudSim
from repro.core.driver import Driver
from repro.datagen import load_table, scaled_spec
from repro.engine import SkyriseEngine
from repro.engine.queries import QUERY_BUILDERS
from repro.faas.regions import REGIONS
from repro.iaas import VmShim


@dataclass
class SuiteSetup:
    """Dataset scale of a suite run (shrunken from Table 4 for speed).

    Partition logical sizes stay at SF1000 density (see the scale knob in
    DESIGN.md); only the partition counts shrink.
    """

    lineitem_partitions: int = 6
    orders_partitions: int = 3
    clickstreams_partitions: int = 4
    rows_per_partition: int = 256
    queries: tuple[str, ...] = ("tpch-q1", "tpch-q6", "tpch-q12",
                                "tpcxbb-q3")

    def specs(self) -> list:
        """Dataset specs needed by the configured queries."""
        wanted: list = []
        names = set()
        for query in self.queries:
            if query in ("tpch-q1", "tpch-q6", "tpch-q12"):
                names.add("lineitem")
            if query == "tpch-q12":
                names.add("orders")
            if query == "tpcxbb-q3":
                names.update(("clickstreams", "item"))
        counts = {
            "lineitem": self.lineitem_partitions,
            "orders": self.orders_partitions,
            "clickstreams": self.clickstreams_partitions,
            "item": 1,
        }
        for name in sorted(names):
            wanted.append(scaled_spec(name, counts[name],
                                      self.rows_per_partition))
        return wanted


def setup_engine(sim: CloudSim, setup: SuiteSetup,
                 backend: str = "faas", vm_count: int = 8,
                 intermediate_service: str = "s3-standard",
                 recovery=None) -> SkyriseEngine:
    """Load datasets and deploy the engine on the chosen backend.

    ``recovery`` (a :class:`~repro.engine.coordinator.RecoveryConfig`)
    configures the coordinator's task-level fault tolerance; ``None``
    uses the defaults (retries on, hedging off).
    """
    s3 = sim.s3()
    storage = {"s3-standard": s3}
    if intermediate_service != "s3-standard":
        storage[intermediate_service] = sim.service(intermediate_service)
    metadata = []
    for spec in setup.specs():
        metadata.append(sim.run(load_table(sim.env, s3, spec)))
    if backend == "faas":
        platform = sim.platform
    elif backend == "iaas":
        instances = sim.run(sim.fleet.provision("c6g.xlarge", count=vm_count))
        platform = VmShim(sim.env, instances, slots_per_vm=1)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    engine = SkyriseEngine(sim.env, platform, storage=storage,
                           intermediate_service=intermediate_service,
                           recovery=recovery)
    for table in metadata:
        engine.register_table(table)
    engine.deploy()
    return engine


def build_plan(query: str, **kwargs):
    """Instantiate a plan from the suite's query registry."""
    try:
        builder = QUERY_BUILDERS[query]
    except KeyError:
        raise KeyError(f"unknown query {query!r}; known: "
                       f"{sorted(QUERY_BUILDERS)}") from None
    return builder(**kwargs)


def run_suite_once(sim: CloudSim, engine: SkyriseEngine,
                   queries: tuple[str, ...]) -> float:
    """Run every query once; return the summed runtime (seconds)."""
    total = 0.0
    for query in queries:
        result = sim.run(engine.run_query(build_plan(query)))
        total += result.runtime
    return total


@dataclass
class VariabilityData:
    """Observed suite runtimes per region for one protocol."""

    mode: str
    runtimes: dict[str, list[float]] = field(default_factory=dict)


def run_variability_experiment(mode: str, runs: int = 8,
                               regions: tuple[str, ...] = (
                                   "us-east-1", "eu-west-1",
                                   "ap-northeast-1"),
                               setup: Optional[SuiteSetup] = None,
                               seed: int = 0) -> VariabilityData:
    """Table 5 protocol: repeated suite runs per region.

    ``mode="cold"`` leaves 15-minute gaps between runs (sandboxes are
    reclaimed; regional conditions get redrawn), ``mode="warm"`` runs
    back-to-back. Observed runtimes include the region's ambient
    congestion factor, which is what the paper's CoV quantifies.
    """
    if mode not in ("cold", "warm"):
        raise ValueError(f"mode must be cold/warm, got {mode!r}")
    setup = setup or SuiteSetup()
    data = VariabilityData(mode=mode)
    gap = 900.0 if mode == "cold" else 0.0
    for region in regions:
        sim = CloudSim(seed=seed, region=region)
        engine = setup_engine(sim, setup)
        profile = REGIONS[region]
        rng = sim.rng.stream(f"suite.{region}.{mode}")
        observed: list[float] = []
        for run_index in range(runs):
            runtime = run_suite_once(sim, engine, setup.queries)
            ambient = profile.runtime_multiplier * profile.congestion(
                rng, sim.env.now, warm=(mode == "warm"))
            observed.append(runtime * ambient)
            if gap:
                sim.run(sim.env.process(_sleep(sim.env, gap)))
        data.runtimes[region] = observed
    return data


def _sleep(env, seconds: float):
    yield env.timeout(seconds)


def table5_metrics(data: VariabilityData,
                   base_region: str = "us-east-1") -> dict[str, dict]:
    """MR and CoV per region from a variability run."""
    base = data.runtimes[base_region]
    metrics = {}
    for region, runtimes in data.runtimes.items():
        metrics[region] = {
            "MR": median_ratio(runtimes, base),
            "CoV_percent": coefficient_of_variation(runtimes) * 100.0,
        }
    return metrics


def run_query_experiment(sim: CloudSim, config, result) -> None:
    """Driver hook: one query on a configured stack (Figures 14/15)."""
    params = config.parameters
    setup = SuiteSetup(
        lineitem_partitions=params.get("lineitem_partitions", 6),
        orders_partitions=params.get("orders_partitions", 3),
        clickstreams_partitions=params.get("clickstreams_partitions", 4),
        rows_per_partition=params.get("rows_per_partition", 256),
        queries=(params["query"],))
    engine = setup_engine(
        sim, setup, backend=params.get("backend", "faas"),
        vm_count=params.get("vm_count", 8),
        intermediate_service=params.get("intermediate_service",
                                        "s3-standard"))
    if params.get("prewarm_partitions"):
        sim.s3().prewarm(params["prewarm_partitions"])
    plan = build_plan(params["query"], **params.get("plan_kwargs", {}))
    query_result = sim.run(engine.run_query(plan))
    result.metrics.update({
        "runtime_s": query_result.runtime,
        "cumulated_time_s": query_result.cumulated_time,
        "cost_cents": query_result.cost_cents,
        "requests": query_result.requests,
        "peak_fragments": query_result.peak_fragments,
        "shuffle_time_s": query_result.shuffle_time(),
    })


def workday_cold_runs(interval_s: float = 900.0,
                      hours: float = 8.0) -> int:
    """Number of cold-protocol runs over a workday (paper: 15-min gaps)."""
    return max(1, math.floor(hours * units.HOUR / interval_s))


# The driver never imports upward; the workloads layer contributes the
# "query" experiment kind through the registration hook instead (the
# same inversion as Environment.set_monitor).
Driver.register_kind("query", run_query_experiment)
