"""Arrival-process generators shared by workloads and the serving layer.

Kept free of engine/serving dependencies so both
:mod:`repro.workloads.arrivals` and :mod:`repro.serve.service` can use
it without an import cycle.
"""

from __future__ import annotations

import numpy as np


def poisson_arrivals(rng, rate_per_hour: float, window_s: float
                     ) -> list[float]:
    """Arrival offsets (seconds) of a Poisson process over the window."""
    if rate_per_hour <= 0:
        raise ValueError("rate must be positive")
    times = []
    now = 0.0
    rate_per_s = rate_per_hour / 3_600.0
    while True:
        now += rng.exponential(1.0 / rate_per_s)
        if now >= window_s:
            return times
        times.append(now)


def burst_arrivals(count: int, at: float = 0.0) -> list[float]:
    """A degenerate trace: ``count`` simultaneous arrivals at ``at``.

    Models the overload spike used to exercise admission control —
    e.g. a burst several times the account concurrency quota.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return [at] * count


def zipf_trace(rng, tenants: int, events: int, window_s: float,
               s: float = 1.2):
    """A Zipf-skewed multi-tenant arrival trace with full tenant coverage.

    Returns ``(times, tenant_ids)`` as numpy arrays of length
    ``events``: arrival offsets sorted over ``[0, window_s)`` and the
    integer tenant id of each arrival. Every one of the ``tenants``
    distinct ids appears at least once (``events >= tenants`` is
    required) — the coverage slice is a permutation of the id space —
    while the remaining draws follow a Zipf law with exponent ``s``,
    clipped to the id space, so a heavy head coexists with a
    million-id long tail.

    Generation is fully vectorized: cost is O(events) time and memory
    (two numpy arrays), never O(tenants) Python objects — callers
    materialize per-tenant state lazily as ids first appear.
    """
    if tenants <= 0 or events <= 0:
        raise ValueError("tenants and events must be positive")
    if events < tenants:
        raise ValueError(
            f"need events >= tenants for full coverage "
            f"({events} < {tenants})")
    if window_s <= 0:
        raise ValueError("window must be positive")
    if s <= 1.0:
        raise ValueError("zipf exponent must exceed 1.0")
    coverage = rng.permutation(tenants)
    extra = rng.zipf(s, size=events - tenants) - 1
    ids = np.concatenate([coverage, np.minimum(extra, tenants - 1)])
    rng.shuffle(ids)
    times = np.sort(rng.uniform(0.0, window_s, size=events))
    return times, ids.astype(np.int64)


def zipf_trace_reference(rng, tenants: int, events: int, window_s: float,
                         s: float = 1.2):
    """Per-event reference implementation of :func:`zipf_trace`.

    The executable spec the vectorized generator is pinned against:
    every distribution draw happens one event at a time, in the same
    order and against the same generator state, so the output is
    **byte-identical** to :func:`zipf_trace` — numpy's batched
    samplers fill element-wise from the bit stream, which the equality
    test turns from an implementation detail into a checked contract.
    The whole-trace permutation primitives (``permutation``,
    ``shuffle``) are shared with the vectorized path: they have no
    per-event decomposition — they *are* single draws over the trace.

    O(events) Python-loop cost: tests only, never the replay path.
    """
    if tenants <= 0 or events <= 0:
        raise ValueError("tenants and events must be positive")
    if events < tenants:
        raise ValueError(
            f"need events >= tenants for full coverage "
            f"({events} < {tenants})")
    if window_s <= 0:
        raise ValueError("window must be positive")
    if s <= 1.0:
        raise ValueError("zipf exponent must exceed 1.0")
    coverage = rng.permutation(tenants)
    limit = tenants - 1
    extra = np.empty(events - tenants, dtype=np.int64)
    for index in range(events - tenants):
        draw = int(rng.zipf(s)) - 1
        extra[index] = draw if draw < limit else limit
    ids = np.concatenate([coverage, extra])
    rng.shuffle(ids)
    times = np.empty(events, dtype=np.float64)
    for index in range(events):
        times[index] = rng.uniform(0.0, window_s)
    times.sort()
    return times, ids.astype(np.int64)
