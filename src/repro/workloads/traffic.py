"""Arrival-process generators shared by workloads and the serving layer.

Kept free of engine/serving dependencies so both
:mod:`repro.workloads.arrivals` and :mod:`repro.serve.service` can use
it without an import cycle.
"""

from __future__ import annotations


def poisson_arrivals(rng, rate_per_hour: float, window_s: float
                     ) -> list[float]:
    """Arrival offsets (seconds) of a Poisson process over the window."""
    if rate_per_hour <= 0:
        raise ValueError("rate must be positive")
    times = []
    now = 0.0
    rate_per_s = rate_per_hour / 3_600.0
    while True:
        now += rng.exponential(1.0 / rate_per_s)
        if now >= window_s:
            return times
        times.append(now)


def burst_arrivals(count: int, at: float = 0.0) -> list[float]:
    """A degenerate trace: ``count`` simultaneous arrivals at ``at``.

    Models the overload spike used to exercise admission control —
    e.g. a burst several times the account concurrency quota.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return [at] * count
