"""Query arrival workloads: dynamic cost comparison of FaaS vs IaaS.

Section 5.2 derives the break-even query throughput analytically (a
peak-provisioned cluster's hourly rate divided by the per-query FaaS
cost). This module validates it dynamically: a Poisson arrival process
submits queries over a simulated window; the FaaS deployment pays per
invocation while the IaaS deployment pays for the provisioned cluster's
uptime — the measured cost curves cross where the formula predicts.

Arrivals flow through the serving layer (:mod:`repro.serve`): a
single-tenant gateway with an unbounded queue and an ungoverned FIFO
scheduler, so the crossover benchmark exercises the same submission
path as multi-tenant serving while reproducing the original
all-arrivals-run-concurrently behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.context import CloudSim
from repro.engine.plan import PhysicalPlan
from repro.pricing import ec2_instance
from repro.pricing.calculator import CostCalculator
from repro.serve.gateway import QueryGateway, Tenant
from repro.serve.metrics import ServingMetrics, cost_per_query
from repro.serve.scheduler import (
    ConcurrencyGovernor,
    FifoPolicy,
    QueryScheduler,
)
from repro.workloads.suite import SuiteSetup, setup_engine
from repro.workloads.traffic import poisson_arrivals  # noqa: F401 - re-export

#: Tenant name used for the single-stream arrival workloads.
ARRIVAL_TENANT = "arrivals"


@dataclass
class ArrivalOutcome:
    """Cost and latency of serving one arrival pattern on one deployment."""

    backend: str
    queries_per_hour: float
    window_s: float
    queries_run: int
    compute_cost_usd: float
    #: Queries the arrival process offered (>= queries_run when shed).
    queries_offered: int = 0
    runtimes: list[float] = field(default_factory=list)

    @property
    def cost_per_query(self) -> float:
        """Average compute dollars per executed query.

        0.0 when the window saw no traffic at all; ``inf`` when traffic
        was offered but nothing ran (e.g. everything was shed) — two
        regimes the overload accounting must keep apart.
        """
        return cost_per_query(self.compute_cost_usd, self.queries_run,
                              max(self.queries_offered, self.queries_run))

    @property
    def median_runtime(self) -> float:
        """Median query latency over the window."""
        ordered = sorted(self.runtimes)
        return ordered[len(ordered) // 2] if ordered else 0.0


def run_arrival_workload(backend: str, plan: PhysicalPlan,
                         queries_per_hour: float,
                         window_s: float = 1_800.0,
                         setup: SuiteSetup | None = None,
                         vm_count: int = 8,
                         seed: int = 0) -> ArrivalOutcome:
    """Serve a Poisson query stream on one deployment; return its cost.

    FaaS cost: billed function time of every invocation the stream
    caused. IaaS cost: the provisioned cluster's uptime over the window
    regardless of load (the peak-provisioning premise of Section 5.2).
    """
    sim = CloudSim(seed=seed)
    setup = setup or SuiteSetup(queries=("tpch-q6",),
                                lineitem_partitions=4,
                                rows_per_partition=96)
    engine = setup_engine(sim, setup, backend=backend, vm_count=vm_count)
    arrival_rng = sim.rng.stream("arrivals")
    arrivals = poisson_arrivals(arrival_rng, queries_per_hour, window_s)

    # Single tenant, unbounded queue, ungoverned scheduler: every
    # arrival dispatches the instant it is submitted, exactly like the
    # pre-serving-layer private loop.
    metrics = ServingMetrics()
    gateway = QueryGateway(sim.env, metrics)
    gateway.register(Tenant(name=ARRIVAL_TENANT,
                            max_concurrent=max(len(arrivals), 1)))
    scheduler = QueryScheduler(sim.env, engine, gateway, FifoPolicy(),
                               ConcurrencyGovernor(), metrics)

    def submit_at(env, offset: float):
        yield env.timeout(offset)
        gateway.submit(ARRIVAL_TENANT, plan)

    def scenario(env):
        scheduler.start()
        submissions = [env.process(submit_at(env, offset))
                       for offset in arrivals]
        for process in submissions:
            yield process
        yield scheduler.drained()
        # Bill the window even if the last query overran it slightly.
        if env.now < window_s:
            yield env.timeout(window_s - env.now)

    sim.run(sim.env.process(scenario(sim.env)))

    calculator = CostCalculator()
    if backend == "faas":
        for record in sim.platform.records:
            config = sim.platform.function(record.function)
            calculator.add_function_invocation(config.memory_bytes,
                                               record.duration)
    else:
        instance = ec2_instance("c6g.xlarge")
        hours = max(sim.env.now, window_s) / 3_600.0
        calculator.cost.compute_iaas += vm_count * instance.hourly_usd * hours
    return ArrivalOutcome(
        backend=backend,
        queries_per_hour=queries_per_hour,
        window_s=window_s,
        queries_run=metrics.completed_count(ARRIVAL_TENANT),
        compute_cost_usd=calculator.cost.total,
        queries_offered=len(arrivals),
        runtimes=metrics.runtimes(ARRIVAL_TENANT))


def cost_crossover(plan: PhysicalPlan, rates: list[float],
                   window_s: float = 1_800.0, vm_count: int = 8,
                   setup: SuiteSetup | None = None,
                   seed: int = 0) -> dict:
    """Measure FaaS and IaaS cost across arrival rates.

    Returns the per-rate outcomes and the measured crossover rate (the
    lowest rate at which IaaS is cheaper), for comparison against the
    analytic break-even.
    """
    outcomes: dict[str, list[ArrivalOutcome]] = {"faas": [], "iaas": []}
    for rate in rates:
        for backend in ("faas", "iaas"):
            outcomes[backend].append(run_arrival_workload(
                backend, plan, rate, window_s=window_s, setup=setup,
                vm_count=vm_count, seed=seed))
    crossover = math.inf
    for faas, iaas in zip(outcomes["faas"], outcomes["iaas"]):
        if iaas.compute_cost_usd < faas.compute_cost_usd:
            crossover = min(crossover, faas.queries_per_hour)
    return {"outcomes": outcomes, "crossover_rate": crossover}
