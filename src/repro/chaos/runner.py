"""Chaos suite runner: baseline pass, faulted pass, resilience report.

Runs a query sequence twice from the same seed — once fault-free to
establish per-query baselines, once with a :class:`FaultPlan` installed —
and assembles a :class:`ResilienceReport` quantifying what recovery cost
(extra runtime, extra cents) and what it saved (goodput under faults).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.chaos.injector import FaultInjector
from repro.chaos.plan import FaultPlan, get_plan
from repro.chaos.report import QueryOutcome, ResilienceReport
from repro.core.context import CloudSim
from repro.engine.coordinator import RecoveryConfig
from repro.workloads.suite import SuiteSetup, build_plan, setup_engine

#: Default query sequence of the chaos suite.
DEFAULT_QUERIES = ("tpch-q6", "tpch-q1")

#: Scan width used by default: at least 4 fragments per stage so the
#: hedging quorum has a meaningful median to compare stragglers against.
DEFAULT_PLAN_KWARGS = {"scan_fragments": 4}


def _default_setup(queries: tuple[str, ...]) -> SuiteSetup:
    return SuiteSetup(lineitem_partitions=4, orders_partitions=2,
                      clickstreams_partitions=2, rows_per_partition=96,
                      queries=tuple(queries))


def run_chaos_suite(plan: Union[str, FaultPlan],
                    queries: tuple[str, ...] = DEFAULT_QUERIES,
                    repeats: int = 2, seed: int = 0,
                    recovery: Optional[RecoveryConfig] = None,
                    plan_kwargs: Optional[dict] = None,
                    baseline: bool = True,
                    setup: Optional[SuiteSetup] = None) -> ResilienceReport:
    """Run ``queries`` x ``repeats`` under ``plan``; return the report.

    With ``baseline=True`` (default) a fault-free pass from the same
    seed runs first, so the report includes per-query recovery latency
    and cost overheads. ``baseline=False`` skips it (faster; overhead
    columns stay empty).
    """
    if isinstance(plan, str):
        plan = get_plan(plan)
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if recovery is None:
        recovery = RecoveryConfig(hedge_enabled=True)
    if plan_kwargs is None:
        plan_kwargs = dict(DEFAULT_PLAN_KWARGS)
    if setup is None:
        setup = _default_setup(queries)

    baselines: dict[tuple[str, int], tuple[float, float]] = {}
    if baseline:
        sim = CloudSim(seed=seed)
        engine = setup_engine(sim, setup, recovery=recovery)
        for run in range(repeats):
            for query in queries:
                result = sim.run(engine.run_query(
                    build_plan(query, **plan_kwargs)))
                baselines[(query, run)] = (result.runtime, result.cost_cents)

    sim = CloudSim(seed=seed)
    engine = setup_engine(sim, setup, recovery=recovery)
    injector = FaultInjector(plan, rng=sim.rng)
    injector.install(platform=sim.platform,
                     services=list(engine.storage.values()))
    outcomes: list[QueryOutcome] = []
    for run in range(repeats):
        for query in queries:
            plan_obj = build_plan(query, **plan_kwargs)
            base = baselines.get((query, run), (None, None))
            try:
                result = sim.run(engine.run_query(plan_obj))
            except Exception as exc:  # noqa: BLE001 - reported, not re-raised
                outcomes.append(QueryOutcome(
                    query=query, run=run, ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    baseline_runtime_s=base[0],
                    baseline_cost_cents=base[1]))
                # The failed query abandoned its barriers mid-rendezvous;
                # drop them so the next query starts clean.
                engine.barriers.clear(plan_obj.query_id)
                continue
            outcomes.append(QueryOutcome(
                query=query, run=run, ok=True,
                runtime_s=result.runtime,
                cost_cents=result.cost_cents,
                retry_cost_cents=result.retry_cost_cents,
                retries=result.retries, hedges=result.hedges,
                hedge_wins=result.hedge_wins,
                failed_attempts=result.failed_attempts,
                baseline_runtime_s=base[0],
                baseline_cost_cents=base[1]))
    return ResilienceReport(
        plan=plan.to_dict(), seed=seed, outcomes=outcomes,
        fault_timeline=injector.timeline(),
        fault_counts=injector.fault_counts,
        dropped_fault_events=injector.state.dropped_events)
