"""Fault taxonomy for the chaos subsystem.

The fault kinds mirror the transient failures the paper observes in the
wild: S3 503 ``SlowDown`` under prefix scaling (Section 4.4), Lambda
admission throttling and cold-start stragglers (Section 5.2), and the
general sandbox unreliability of commodity FaaS platforms. Each kind is
a typed :class:`FaultSpec` with a schedule — probabilistic per event,
time-windowed, optionally targeted at one function or pipeline — so a
:class:`~repro.chaos.plan.FaultPlan` can reproduce a failure regime
deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

#: Valid values of :attr:`FaultSpec.kind`.
FAULT_KINDS = (
    "worker_crash",      # invocation fails before the handler runs
    "sandbox_loss",      # sandbox dies mid-flight, after ``after_s``
    "invoke_straggler",  # handler start delayed by ``delay_s``
    "invoke_throttle",   # frontend pushback: ``delay_s`` before admission
    "storage_slowdown",  # S3-style 503 SlowDown on get/put
    "storage_timeout",   # request lost; client sees a timeout
    "network_degrade",   # sandbox NIC shaped down by ``factor``
    "shard_failure",     # a serving-fleet gateway shard dies outright
)

#: Fault kinds decided per function invocation.
INVOKE_KINDS = ("worker_crash", "sandbox_loss", "invoke_straggler",
                "invoke_throttle")
#: Fault kinds decided per storage request.
STORAGE_KINDS = ("storage_slowdown", "storage_timeout")
#: Fault kinds decided per serving-fleet shard at the control cadence.
SHARD_KINDS = ("shard_failure",)


class InjectedFault(Exception):
    """Base class for errors raised by injected faults.

    Injected faults model *transient* infrastructure failures, so the
    recovery layer treats them as retryable — unlike application errors
    (missing table, oversized item), which propagate unchanged.
    """

    retryable = True


class WorkerCrash(InjectedFault):
    """The invocation failed before the handler produced a result."""


class SandboxLost(InjectedFault):
    """The sandbox disappeared while the handler was running."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault source inside a :class:`FaultPlan`.

    ``probability`` applies per matching event (invocation or storage
    request) inside the ``[start_s, end_s)`` window; ``max_events``
    bounds the total number of injections from this spec.
    """

    kind: str
    probability: float = 1.0
    #: Target function name (invoke kinds); ``None`` matches any.
    function: Optional[str] = None
    #: Target pipeline id (invoke kinds); ``None`` matches any.
    pipeline: Optional[str] = None
    #: Target operation for storage kinds: "get", "put", or ``None``.
    operation: Optional[str] = None
    #: Target shard id for shard kinds; ``None`` matches any shard.
    shard: Optional[str] = None
    #: Key prefix filter for storage kinds ("" matches every key).
    key_prefix: str = ""
    #: Active window in simulated seconds.
    start_s: float = 0.0
    end_s: float = float("inf")
    #: Added latency (invoke_straggler / invoke_throttle / worker_crash).
    delay_s: float = 0.0
    #: Handler lifetime before a sandbox_loss strikes.
    after_s: float = 0.5
    #: Rate multiplier for network_degrade (0 < factor <= 1).
    factor: float = 0.5
    #: Cap on injections from this spec (None = unbounded).
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.kind == "network_degrade" and not 0.0 < self.factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        if self.end_s < self.start_s:
            raise ValueError("end_s must be >= start_s")

    def in_window(self, now: float) -> bool:
        """Whether the spec is active at simulated time ``now``."""
        return self.start_s <= now < self.end_s

    def make_error(self) -> InjectedFault:
        """Instantiate the error this fault surfaces (invoke kinds)."""
        if self.kind == "worker_crash":
            return WorkerCrash(f"injected worker crash "
                               f"(function={self.function or 'any'})")
        if self.kind == "sandbox_loss":
            return SandboxLost(f"sandbox lost after {self.after_s:.3f}s")
        raise ValueError(f"{self.kind!r} does not raise an invoke error")

    def to_dict(self) -> dict:
        """JSON-serializable spec snapshot for the resilience report."""
        out = asdict(self)
        if out["end_s"] == float("inf"):
            out["end_s"] = None
        if out["max_events"] is None:
            del out["max_events"]
        if out["shard"] is None:
            # Omitted when untargeted so pre-sharding reports keep
            # their exact shape.
            del out["shard"]
        return out
