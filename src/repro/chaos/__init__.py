"""Chaos engineering: deterministic fault injection + resilience reports.

The subsystem has three layers: typed fault plans (:mod:`.faults`,
:mod:`.plan`), an injector that wires them into the platform and storage
hooks (:mod:`.injector`), and the resilience report (:mod:`.report`).
The suite runner lives in :mod:`.runner`; import it directly (it pulls
in the whole engine stack).
"""

from repro.chaos.faults import (
    FAULT_KINDS,
    FaultSpec,
    InjectedFault,
    SandboxLost,
    WorkerCrash,
)
from repro.chaos.injector import FaultInjector
from repro.chaos.plan import FAULT_PLANS, FaultPlan, get_plan
from repro.chaos.report import QueryOutcome, ResilienceReport
