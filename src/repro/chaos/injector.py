"""The fault injector: wires a FaultPlan into the infrastructure hooks.

Injection happens through first-class hooks — ``fault_injector`` on
:class:`~repro.faas.platform.LambdaPlatform`, ``fault_hook`` on storage
services and clients — never by monkeypatching. Every decision draws
from a named RNG stream derived from the plan, so a (seed, plan) pair
reproduces the exact same fault sequence, and attaching an injector
never perturbs any other stream in the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.faults import (
    INVOKE_KINDS,
    SHARD_KINDS,
    STORAGE_KINDS,
    FaultSpec,
)
from repro.chaos.plan import FaultPlan
from repro.sim import RandomStreams
from repro.storage.errors import SlowDown, StorageError
from repro.storage.errors import RequestTimeout as StorageRequestTimeout

#: Timeline entries kept verbatim; beyond this only counters grow.
TIMELINE_CAP = 512


@dataclass
class FaultEvent:
    """One injected fault, for the resilience report's timeline."""

    time: float
    kind: str
    target: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {"t": round(self.time, 6), "kind": self.kind,
                "target": self.target, "detail": self.detail}


@dataclass
class InjectorState:
    """Mutable accounting of an installed injector."""

    events: list[FaultEvent] = field(default_factory=list)
    dropped_events: int = 0
    counts: dict[str, int] = field(default_factory=dict)


class FaultInjector:
    """Decides, per event, whether a fault from the plan strikes."""

    def __init__(self, plan: FaultPlan, rng: RandomStreams) -> None:
        self.plan = plan
        self._spec_rngs = [
            rng.stream(f"chaos.{plan.name}.{index}.{spec.kind}")
            for index, spec in enumerate(plan.specs)]
        self._spec_counts = [0] * len(plan.specs)
        self.state = InjectorState()
        #: Optional observability hook (``on_fault(now, kind, target,
        #: detail)``), called on every strike. Strictly passive: it sees
        #: the fault after the draw, so attaching one cannot change
        #: which faults fire.
        self.observer = None

    # -- installation --------------------------------------------------------

    def install(self, platform=None, services=(), clients=()) -> None:
        """Attach this injector to platform/storage hooks."""
        if platform is not None:
            platform.fault_injector = self
        for service in services:
            service.fault_hook = self.on_storage
        for client in clients:
            client.fault_hook = self.on_storage

    # -- accounting ----------------------------------------------------------

    @property
    def fault_counts(self) -> dict[str, int]:
        """Injections so far, by fault kind."""
        return dict(self.state.counts)

    @property
    def total_injected(self) -> int:
        return sum(self.state.counts.values())

    def timeline(self) -> list[dict]:
        """The recorded fault events as JSON-ready dicts."""
        return [event.to_dict() for event in self.state.events]

    def _fire(self, index: int, spec: FaultSpec, now: float,
              target: str, detail: str) -> None:
        self._spec_counts[index] += 1
        self.state.counts[spec.kind] = self.state.counts.get(spec.kind, 0) + 1
        if len(self.state.events) < TIMELINE_CAP:
            self.state.events.append(FaultEvent(
                time=now, kind=spec.kind, target=target, detail=detail))
        else:
            self.state.dropped_events += 1
        if self.observer is not None:
            self.observer.on_fault(now, spec.kind, target, detail)

    def _eligible(self, index: int, spec: FaultSpec, now: float) -> bool:
        if not spec.in_window(now):
            return False
        if spec.max_events is not None \
                and self._spec_counts[index] >= spec.max_events:
            return False
        return True

    def _draw(self, index: int, spec: FaultSpec) -> bool:
        if spec.probability >= 1.0:
            return True
        return float(self._spec_rngs[index].random()) < spec.probability

    # -- hooks ---------------------------------------------------------------

    def on_invoke(self, function: str, payload, now: float):
        """Platform hook: fault striking this invocation, or ``None``.

        Called by :meth:`LambdaPlatform._invoke` before admission. The
        first matching spec (plan order) wins.
        """
        for index, spec in enumerate(self.plan.specs):
            if spec.kind not in INVOKE_KINDS:
                continue
            if spec.function is not None and spec.function != function:
                continue
            if spec.pipeline is not None:
                pipeline = (payload or {}).get("pipeline", {})
                if isinstance(pipeline, dict):
                    pipeline = pipeline.get("id")
                if pipeline != spec.pipeline:
                    continue
            if not self._eligible(index, spec, now):
                continue
            if not self._draw(index, spec):
                continue
            fragment = (payload or {}).get("fragment")
            target = function if fragment is None \
                else f"{function}/frag-{fragment}"
            attempt = (payload or {}).get("attempt", 0)
            detail = f"attempt={attempt}" if attempt else ""
            self._fire(index, spec, now, target, detail)
            return spec
        return None

    def on_place(self, function: str, now: float):
        """Platform hook: NIC degradation factor for a new sandbox."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind != "network_degrade":
                continue
            if spec.function is not None and spec.function != function:
                continue
            if not self._eligible(index, spec, now):
                continue
            if not self._draw(index, spec):
                continue
            self._fire(index, spec, now, f"{function}/sandbox",
                       f"factor={spec.factor}")
            return spec.factor
        return None

    def on_storage(self, op: str, key: str, now: float):
        """Storage hook: error to inject for this request, or ``None``."""
        for index, spec in enumerate(self.plan.specs):
            if spec.kind not in STORAGE_KINDS:
                continue
            if spec.operation is not None and spec.operation != op:
                continue
            if spec.key_prefix and not key.startswith(spec.key_prefix):
                continue
            if not self._eligible(index, spec, now):
                continue
            if not self._draw(index, spec):
                continue
            self._fire(index, spec, now, f"{op} {key}", "")
            return self._storage_error(spec, op, key)
        return None

    def on_shard(self, shard: str, now: float) -> bool:
        """Fleet hook: whether this gateway shard dies now.

        Polled by the sharded-serving control loop once per shard per
        control interval. A strike means the shard is removed from the
        fleet; the partition directory reassigns its ranges and the
        router re-homes its backlog — the conservation check in the
        fleet roll-up proves no admitted query was lost.
        """
        for index, spec in enumerate(self.plan.specs):
            if spec.kind not in SHARD_KINDS:
                continue
            if spec.shard is not None and spec.shard != shard:
                continue
            if not self._eligible(index, spec, now):
                continue
            if not self._draw(index, spec):
                continue
            self._fire(index, spec, now, shard, "shard removed")
            return True
        return False

    @staticmethod
    def _storage_error(spec: FaultSpec, op: str, key: str) -> StorageError:
        if spec.kind == "storage_slowdown":
            return SlowDown(f"injected SlowDown on {op} {key!r}")
        return StorageRequestTimeout(f"injected timeout on {op} {key!r}")
