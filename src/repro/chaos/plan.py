"""Fault plans: named, reproducible failure regimes.

A :class:`FaultPlan` is an ordered tuple of :class:`FaultSpec` entries.
The built-in plans cover the failure modes the paper's infrastructure
analysis observes (Sections 4-5); ``demo-outage`` is the acceptance
scenario — a regime that kills the retry-free engine outright but which
the recovery layer survives with measurable retries and hedge wins.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.chaos.faults import FaultSpec


@dataclass(frozen=True)
class FaultPlan:
    """A named set of fault specs applied together."""

    name: str
    specs: tuple[FaultSpec, ...]
    description: str = ""

    def to_dict(self) -> dict:
        return {"name": self.name, "description": self.description,
                "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        specs = []
        for raw in data.get("specs", []):
            raw = dict(raw)
            if raw.get("end_s") is None:
                raw["end_s"] = float("inf")
            specs.append(FaultSpec(**raw))
        return cls(name=data["name"], specs=tuple(specs),
                   description=data.get("description", ""))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


FAULT_PLANS: dict[str, FaultPlan] = {
    "worker-crash": FaultPlan(
        name="worker-crash",
        description="Sporadic worker invocation failures (commodity FaaS "
                    "unreliability).",
        specs=(
            FaultSpec(kind="worker_crash", function="skyrise-worker",
                      probability=0.25, delay_s=0.05, max_events=6),
        )),
    "sandbox-loss": FaultPlan(
        name="sandbox-loss",
        description="Sandboxes reclaimed mid-flight while handlers run.",
        specs=(
            FaultSpec(kind="sandbox_loss", function="skyrise-worker",
                      probability=0.2, after_s=0.4, max_events=4),
        )),
    "slowdown-storm": FaultPlan(
        name="slowdown-storm",
        description="S3 503 SlowDown storm during prefix scaling "
                    "(Section 4.4).",
        specs=(
            FaultSpec(kind="storage_slowdown", operation="get",
                      probability=0.5, start_s=0.0, end_s=20.0,
                      max_events=64),
        )),
    "stragglers": FaultPlan(
        name="stragglers",
        description="Latency stragglers: delayed handler starts plus "
                    "degraded sandbox NICs (Section 5.2).",
        specs=(
            FaultSpec(kind="invoke_straggler", function="skyrise-worker",
                      probability=0.15, delay_s=6.0, max_events=3),
            FaultSpec(kind="network_degrade", function="skyrise-worker",
                      probability=0.1, factor=0.25, max_events=2),
        )),
    "throttle-storm": FaultPlan(
        name="throttle-storm",
        description="Invoke admission pushback plus worker crashes: sheds "
                    "queued traffic while crashed fragments recover via "
                    "retry.",
        specs=(
            FaultSpec(kind="invoke_throttle", function="skyrise-worker",
                      probability=0.5, delay_s=2.0, start_s=0.0,
                      end_s=240.0),
            FaultSpec(kind="worker_crash", function="skyrise-worker",
                      probability=0.08, delay_s=0.05, start_s=0.0,
                      end_s=240.0),
        )),
    "demo-outage": FaultPlan(
        name="demo-outage",
        description="Acceptance scenario: crashes force retries, one "
                    "pathological straggler forces a hedge win, and a "
                    "short SlowDown burst exercises storage backoff.",
        specs=(
            FaultSpec(kind="invoke_straggler", function="skyrise-worker",
                      probability=1.0, delay_s=25.0, max_events=1),
            FaultSpec(kind="worker_crash", function="skyrise-worker",
                      probability=0.3, delay_s=0.05, max_events=4),
            FaultSpec(kind="storage_slowdown", operation="get",
                      probability=0.3, start_s=0.0, end_s=5.0,
                      max_events=16),
        )),
    "futures-chaos": FaultPlan(
        name="futures-chaos",
        description="Chaos regime for futures jobs: sporadic worker "
                    "crashes the invoker retries, plus a SlowDown window "
                    "on partitioned-object reads.",
        specs=(
            FaultSpec(kind="worker_crash", function="futures-worker",
                      probability=0.2, delay_s=0.05, max_events=8),
            FaultSpec(kind="storage_slowdown", operation="get",
                      probability=0.3, start_s=0.0, end_s=10.0,
                      max_events=32),
        )),
    "shard-failure": FaultPlan(
        name="shard-failure",
        description="Serving-fleet shard loss: one gateway shard dies "
                    "mid-run; the directory reassigns its ranges and "
                    "every admitted query must be completed, shed with "
                    "a metric, or recovered.",
        specs=(
            FaultSpec(kind="shard_failure", probability=0.5,
                      start_s=60.0, max_events=1),
        )),
    "smoke": FaultPlan(
        name="smoke",
        description="Short deterministic plan for the CI smoke job.",
        specs=(
            FaultSpec(kind="worker_crash", function="skyrise-worker",
                      probability=0.5, delay_s=0.05, max_events=2),
            FaultSpec(kind="invoke_straggler", function="skyrise-worker",
                      probability=0.5, delay_s=10.0, max_events=1),
            FaultSpec(kind="storage_slowdown", operation="get",
                      probability=0.25, start_s=0.0, end_s=10.0,
                      max_events=8),
        )),
}


def get_plan(name: str) -> FaultPlan:
    """Look up a built-in plan by name."""
    try:
        return FAULT_PLANS[name]
    except KeyError:
        raise KeyError(f"unknown fault plan {name!r}; known: "
                       f"{sorted(FAULT_PLANS)}") from None
