"""The resilience report: what happened under injection, and what it cost.

Summarizes a chaos run — per-query attempt counts, the fault timeline,
recovery latency and cost overheads versus a fault-free baseline, and
goodput. The JSON form is canonical (sorted keys, rounded floats) so the
determinism contract is byte-exact: same seed + same plan => identical
``to_json()`` output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.telemetry.export import canonical_json, round_for_json as _r


@dataclass
class QueryOutcome:
    """One query execution under injection."""

    query: str
    run: int
    ok: bool
    runtime_s: float = 0.0
    cost_cents: float = 0.0
    retry_cost_cents: float = 0.0
    retries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    failed_attempts: int = 0
    error: Optional[str] = None
    baseline_runtime_s: Optional[float] = None
    baseline_cost_cents: Optional[float] = None

    @property
    def recovered(self) -> bool:
        """Completed, but only after at least one retry or hedge."""
        return self.ok and (self.retries > 0 or self.hedges > 0)

    @property
    def recovery_latency_s(self) -> Optional[float]:
        """Runtime added versus the fault-free baseline."""
        if not self.ok or self.baseline_runtime_s is None:
            return None
        return self.runtime_s - self.baseline_runtime_s

    @property
    def cost_overhead_cents(self) -> Optional[float]:
        if not self.ok or self.baseline_cost_cents is None:
            return None
        return self.cost_cents - self.baseline_cost_cents

    def to_dict(self) -> dict:
        return {
            "query": self.query, "run": self.run, "ok": self.ok,
            "runtime_s": _r(self.runtime_s),
            "cost_cents": _r(self.cost_cents),
            "retry_cost_cents": _r(self.retry_cost_cents),
            "retries": self.retries, "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "failed_attempts": self.failed_attempts,
            "recovered": self.recovered,
            "error": self.error,
            "baseline_runtime_s": _r(self.baseline_runtime_s),
            "recovery_latency_s": _r(self.recovery_latency_s),
            "cost_overhead_cents": _r(self.cost_overhead_cents),
        }


@dataclass
class ResilienceReport:
    """Everything measured over one chaos suite run."""

    plan: dict
    seed: int
    outcomes: list[QueryOutcome] = field(default_factory=list)
    fault_timeline: list[dict] = field(default_factory=list)
    fault_counts: dict[str, int] = field(default_factory=dict)
    dropped_fault_events: int = 0

    # -- aggregates ----------------------------------------------------------

    @property
    def offered(self) -> int:
        return len(self.outcomes)

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def unrecovered(self) -> int:
        """Queries that failed despite the recovery layer."""
        return self.offered - self.completed

    @property
    def recovered(self) -> int:
        return sum(1 for o in self.outcomes if o.recovered)

    @property
    def goodput(self) -> float:
        """Fraction of offered queries that completed."""
        return self.completed / self.offered if self.offered else 1.0

    @property
    def total_retries(self) -> int:
        return sum(o.retries for o in self.outcomes)

    @property
    def total_hedges(self) -> int:
        return sum(o.hedges for o in self.outcomes)

    @property
    def total_hedge_wins(self) -> int:
        return sum(o.hedge_wins for o in self.outcomes)

    @property
    def total_retry_cost_cents(self) -> float:
        return sum(o.retry_cost_cents for o in self.outcomes)

    @property
    def total_recovery_latency_s(self) -> float:
        return sum(o.recovery_latency_s or 0.0 for o in self.outcomes)

    @property
    def total_cost_overhead_cents(self) -> float:
        return sum(o.cost_overhead_cents or 0.0 for o in self.outcomes)

    # -- rendering -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "plan": self.plan,
            "seed": self.seed,
            "totals": {
                "offered": self.offered,
                "completed": self.completed,
                "unrecovered": self.unrecovered,
                "recovered": self.recovered,
                "goodput": _r(self.goodput),
                "retries": self.total_retries,
                "hedges": self.total_hedges,
                "hedge_wins": self.total_hedge_wins,
                "failed_attempts": sum(o.failed_attempts
                                       for o in self.outcomes),
                "retry_cost_cents": _r(self.total_retry_cost_cents),
                "recovery_latency_s": _r(self.total_recovery_latency_s),
                "cost_overhead_cents": _r(self.total_cost_overhead_cents),
                "faults_injected": dict(sorted(self.fault_counts.items())),
            },
            "queries": [o.to_dict() for o in self.outcomes],
            "fault_timeline": self.fault_timeline,
            "dropped_fault_events": self.dropped_fault_events,
        }

    def to_json(self) -> str:
        """Canonical JSON artifact (byte-stable for a fixed seed+plan)."""
        return canonical_json(self.to_dict())

    def format(self) -> str:
        """Text rendering for the ``repro chaos`` CLI."""
        name = self.plan.get("name", "?")
        lines = [f"Resilience report — plan={name}, seed={self.seed}",
                 f"{'query':<12} {'run':>3} {'ok':>3} {'runtime':>9} "
                 f"{'retries':>7} {'hedges':>6} {'wins':>5} "
                 f"{'+lat [s]':>9} {'+cost [¢]':>10}"]
        for o in self.outcomes:
            extra_lat = o.recovery_latency_s
            extra_cost = o.cost_overhead_cents
            lines.append(
                f"{o.query:<12} {o.run:>3} {'y' if o.ok else 'N':>3} "
                f"{o.runtime_s:>9.3f} {o.retries:>7} {o.hedges:>6} "
                f"{o.hedge_wins:>5} "
                f"{extra_lat if extra_lat is not None else float('nan'):>9.3f} "
                f"{extra_cost if extra_cost is not None else float('nan'):>10.4f}")
        lines.append(
            f"goodput {self.goodput * 100:.1f}% "
            f"({self.completed}/{self.offered} completed, "
            f"{self.recovered} recovered, {self.unrecovered} unrecovered); "
            f"{self.total_retries} retries, {self.total_hedges} hedges "
            f"({self.total_hedge_wins} wins); "
            f"retry cost {self.total_retry_cost_cents:.4f}¢")
        counts = ", ".join(f"{k}={v}"
                           for k, v in sorted(self.fault_counts.items()))
        lines.append(f"faults injected: {counts or 'none'}")
        return "\n".join(lines)
