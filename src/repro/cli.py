"""Command-line interface for the evaluation framework.

Mirrors the paper's experiment flow (Figure 3): configurations go in,
JSON results come out, and the plotter renders what it can. Usage::

    python -m repro list                      # predefined experiments
    python -m repro run fig5-function-burst   # run one by name
    python -m repro run path/to/config.json   # or from a JSON file
    python -m repro suite network             # run a whole suite
    python -m repro serve --policy fair       # multi-tenant serving run
    python -m repro chaos --plan demo-outage  # fault-injected suite run
    python -m repro trace --query tpch-q12    # Perfetto trace of one query
    python -m repro futures --workload sweep  # futures/map-reduce workload
    python -m repro shard --smoke             # sharded-serving replay gate
    python -m repro metrics --query tpch-q12  # telemetry dashboard
    python -m repro lint --strict             # determinism/architecture gate
    python -m repro bench --smoke             # perf macro-benchmark gate
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from repro.core import Driver, ExperimentConfig, ascii_timeseries
from repro.core.suites import (
    full_evaluation,
    network_suite,
    query_suite,
    startup_suite,
    storage_suite,
)

SUITES = {
    "network": network_suite,
    "storage": storage_suite,
    "query": query_suite,
    "startup": startup_suite,
    "full": full_evaluation,
}


def _predefined() -> dict[str, ExperimentConfig]:
    return {config.name: config for config in full_evaluation()}


def _run_serve(args) -> int:
    """Run a multi-tenant serving mix and print the per-tenant report."""
    from repro.serve import default_tenant_mix, run_serving_workload
    from repro.serve.scheduler import POLICIES

    policies = [args.policy]
    if args.compare_fifo and args.policy != "fifo":
        policies.insert(0, "fifo")
    assert all(policy in POLICIES for policy in policies)
    try:
        mix = default_tenant_mix(rate_scale=args.rate_scale)
        warm_targets = ({"skyrise-worker": args.warm_pool,
                         "skyrise-coordinator": 1}
                        if args.warm_pool else None)
        for policy in policies:
            outcome = run_serving_workload(
                mix, policy=policy, window_s=args.window, seed=args.seed,
                max_concurrent_queries=args.max_queries,
                warm_targets=warm_targets)
            print(outcome.format_report())
            print()
    except ValueError as exc:
        print(f"repro serve: error: {exc}", file=sys.stderr)
        return 2
    return 0


def _run_chaos(args) -> int:
    """Run a fault-injected chaos suite and print the resilience report."""
    from repro.chaos.runner import run_chaos_suite

    try:
        if args.smoke:
            # CI gate: the smoke plan must recover every query, and the
            # report must be byte-deterministic across two runs.
            first = run_chaos_suite("smoke", queries=("tpch-q6",),
                                    repeats=2, seed=args.seed,
                                    baseline=False)
            second = run_chaos_suite("smoke", queries=("tpch-q6",),
                                     repeats=2, seed=args.seed,
                                     baseline=False)
            print(first.format())
            if first.to_json() != second.to_json():
                print("repro chaos --smoke: FAIL: report is not "
                      "deterministic across identical runs",
                      file=sys.stderr)
                return 1
            if first.unrecovered:
                print(f"repro chaos --smoke: FAIL: {first.unrecovered} "
                      f"unrecovered quer(ies)", file=sys.stderr)
                return 1
            print("smoke OK: deterministic report, all queries recovered")
            return 0
        queries = tuple(q for q in args.queries.split(",") if q)
        report = run_chaos_suite(args.plan, queries=queries,
                                 repeats=args.repeats, seed=args.seed)
        print(report.to_json() if args.json else report.format())
    except (KeyError, ValueError) as exc:
        print(f"repro chaos: error: {exc}", file=sys.stderr)
        return 2
    return 0


def _record_query(query: str, seed: int):
    """Run one TPC-H query with telemetry recording on; return result+recorder."""
    from repro.core.context import CloudSim
    from repro.telemetry import recording
    from repro.workloads.suite import SuiteSetup, build_plan, setup_engine

    with recording() as recorder:
        sim = CloudSim(seed=seed)
        setup = SuiteSetup(queries=(query,), lineitem_partitions=3,
                           orders_partitions=2, clickstreams_partitions=2,
                           rows_per_partition=96)
        engine = setup_engine(sim, setup)
        result = sim.run(engine.run_query(build_plan(query)))
    return result, recorder


def _run_trace(args) -> int:
    """Trace one query and export a Perfetto-loadable Chrome trace."""
    import json

    from repro.telemetry import (
        canonical_json,
        chrome_trace,
        metrics_snapshot,
        validate_chrome_trace,
    )

    query = "tpch-q6" if args.smoke else args.query
    trace_filter = getattr(args, "trace", None)
    try:
        result, recorder = _record_query(query, args.seed)
        if trace_filter is not None:
            known = sorted({span.trace_id for span in recorder.spans})
            if trace_filter not in known:
                raise ValueError(
                    f"trace id {trace_filter!r} not in this run; "
                    f"recorded: {known}")
        trace = chrome_trace(
            recorder,
            trace_ids=None if trace_filter is None else [trace_filter])
        snapshot = metrics_snapshot(recorder)
        trace_text = canonical_json(trace)
        snapshot_text = canonical_json(snapshot)
        # Round-trip both artifacts through the parser before (and
        # instead of trusting) any consumer: the smoke gate is exactly
        # "both artifacts parse and the trace schema holds".
        counts = validate_chrome_trace(json.loads(trace_text))
        parsed_snapshot = json.loads(snapshot_text)
    except (KeyError, ValueError) as exc:
        print(f"repro trace: error: {exc}", file=sys.stderr)
        return 1 if args.smoke else 2
    if args.smoke:
        if not parsed_snapshot.get("counters"):
            print("repro trace --smoke: FAIL: metrics snapshot has no "
                  "counters", file=sys.stderr)
            return 1
        if not counts.get("X"):
            print("repro trace --smoke: FAIL: trace has no complete "
                  "spans", file=sys.stderr)
            return 1
        print(f"smoke OK: {query} runtime {result.runtime:.3f}s; "
              f"trace events {counts}; metrics snapshot "
              f"{len(parsed_snapshot['counters'])} counters / "
              f"{len(parsed_snapshot['series'])} series")
        return 0
    output_dir = Path(args.output)
    output_dir.mkdir(parents=True, exist_ok=True)
    stem = query if trace_filter is None \
        else f"{query}-{trace_filter.replace(' ', '_').replace('/', '_')}"
    trace_path = output_dir / f"{stem}-trace.json"
    metrics_path = output_dir / f"{stem}-metrics.json"
    trace_path.write_text(trace_text + "\n")
    metrics_path.write_text(snapshot_text + "\n")
    print(f"{query}: runtime {result.runtime:.3f}s, "
          f"cost {result.cost_cents:.4f}¢")
    print(f"  {counts['X']} spans, {counts.get('i', 0)} instants, "
          f"{counts.get('C', 0)} counter samples")
    print(f"  trace   -> {trace_path}  (load in ui.perfetto.dev or "
          f"chrome://tracing)")
    print(f"  metrics -> {metrics_path}")
    return 0


def _run_metrics(args) -> int:
    """Run one query with telemetry on and print the metric dashboard."""
    from repro.telemetry import (
        canonical_json,
        metrics_snapshot,
        render_dashboard,
    )

    try:
        result, recorder = _record_query(args.query, args.seed)
    except (KeyError, ValueError) as exc:
        print(f"repro metrics: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(canonical_json(metrics_snapshot(recorder)))
    else:
        print(render_dashboard(recorder))
        print(f"\nquery {args.query}: runtime {result.runtime:.3f}s, "
              f"cost {result.cost_cents:.4f}¢")
    return 0


def _run_obs(args) -> int:
    """Run the observability plane: observed replay, smoke gate, profiler."""
    from repro.telemetry.export import canonical_json

    try:
        if args.profile is not None:
            from repro.obs import profile_recorder
            result, recorder = _record_query(args.profile, args.seed)
            profile = profile_recorder(recorder)
            print(canonical_json(profile))
            if not args.json:
                print(f"# {args.profile}: {profile['stage_count']} stages, "
                      f"total ${profile['cost']['total_usd']:.6f} "
                      f"(runtime {result.runtime:.3f}s)", file=sys.stderr)
            return 0

        from repro.obs.scenario import obs_smoke, run_obs_replay
        from repro.shard.replay import ReplayConfig

        config = ReplayConfig(seed=args.seed).smoke()
        config = replace(config, tenants=args.tenants, events=args.events)
        if args.smoke:
            out = obs_smoke(config)
            for name in sorted(out["checks"]):
                print(f"  {name:<22} ok")
            print(f"smoke OK: {out['alerts_fired']} alerts, "
                  f"{out['incidents']} incident bundles, "
                  f"{out['sampling']['kept']}/"
                  f"{out['sampling']['completed']} traces kept, "
                  f"digest {out['digest'][:16]}")
            return 0

        outcome = run_obs_replay(config)
        if args.bundle_dir is not None:
            bundle_dir = Path(args.bundle_dir)
            bundle_dir.mkdir(parents=True, exist_ok=True)
            for bundle in outcome.incidents:
                path = bundle_dir / f"incident-{bundle['seq']:03d}.json"
                path.write_text(canonical_json(bundle) + "\n")
                print(f"  bundle -> {path}", file=sys.stderr)
        if args.json:
            print(outcome.to_json())
            return 0
        sampling = outcome.sampling
        print(f"observed replay: seed={config.seed} "
              f"events={config.events} tenants={config.tenants} "
              f"plan={config.fault_plan or '-'}")
        print(f"  alerts fired      {outcome.alerts_fired}")
        print(f"  incident bundles  {len(outcome.incidents)}")
        print(f"  traces kept       {sampling['kept']}/"
              f"{sampling['completed']} "
              f"(slow={sampling['kept_by_reason']['slow']}, "
              f"fault={sampling['kept_by_reason']['fault']}, "
              f"baseline={sampling['kept_by_reason']['baseline']}; "
              f"conserved={sampling['conserved']})")
        for scope, entry in sorted(outcome.slo["scopes"].items()):
            firing = ",".join(entry["firing"]) or "-"
            print(f"  slo {scope:<16} attainment="
                  f"{entry['attainment']:.4f}  "
                  f"budget={entry['budget_consumed']:.2f}x  "
                  f"firing={firing}")
    except (AssertionError, KeyError, ValueError) as exc:
        print(f"repro obs: error: {exc}", file=sys.stderr)
        return 1 if args.smoke else 2
    return 0


def _run_futures(args) -> int:
    """Run a futures workload (or the CI smoke gate) and print its outcome."""
    from repro.chaos.plan import get_plan
    from repro.futures.workloads import run_sweep, run_wordcount
    from repro.telemetry.export import canonical_json

    try:
        plan = get_plan(args.plan) if args.plan else None
        if args.smoke:
            # CI gate: the acceptance-criterion wordcount (>= 64 chunks)
            # must be byte-deterministic across two runs, with the
            # per-future cost sum matching the pricing-catalog total.
            first = run_wordcount(seed=args.seed, plan=plan)
            second = run_wordcount(seed=args.seed, plan=plan)
            if first != second:
                print("repro futures --smoke: FAIL: outcome is not "
                      "deterministic across identical runs",
                      file=sys.stderr)
                return 1
            if first["chunks"] < 64:
                print(f"repro futures --smoke: FAIL: only "
                      f"{first['chunks']} chunks (need >= 64)",
                      file=sys.stderr)
                return 1
            if first["cost_check"] != "ok":
                print("repro futures --smoke: FAIL: per-future cost sum "
                      "does not match the pricing-catalog total",
                      file=sys.stderr)
                return 1
            if first["states"]["error"] or first["states"]["running"] \
                    or first["states"]["pending"]:
                print(f"repro futures --smoke: FAIL: open or failed "
                      f"calls: {first['states']}", file=sys.stderr)
                return 1
            print(f"smoke OK: wordcount over {first['chunks']} chunks, "
                  f"{first['records']} records, digest {first['digest']}, "
                  f"cost check {first['cost_check']}")
            return 0
        if args.workload == "wordcount":
            outcome = run_wordcount(seed=args.seed, objects=args.objects,
                                    chunks_per_object=args.chunks_per_object,
                                    plan=plan, speculate=args.speculate)
        else:
            outcome = run_sweep(seed=args.seed, points=args.points,
                                plan=plan, speculate=args.speculate)
    except (KeyError, ValueError) as exc:
        print(f"repro futures: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(canonical_json(outcome))
    else:
        print(f"{outcome['workload']}: runtime {outcome['runtime_s']:.3f}s, "
              f"total cost ${outcome['total_cost_usd']:.6f} "
              f"(check: {outcome['cost_check']})")
        print(f"  states {outcome['states']}, retries {outcome['retries']}, "
              f"speculations {outcome['speculations']}")
        if outcome["faults"]:
            print(f"  faults {outcome['faults']}")
        print(f"  digest {outcome['digest']}")
    return 0


def _run_shard(args) -> int:
    """Run the sharded-serving replay (or the CI smoke gate)."""
    from repro.shard import ReplayConfig, run_parallel_replay, run_replay
    from repro.telemetry import canonical_json

    try:
        if args.smoke:
            # CI gate: the >=100k-tenant smoke replay (with one injected
            # shard failure) must be byte-deterministic across two runs,
            # must never walk a tenant-sized structure on the hot path,
            # and must account for every admitted query. With
            # --parallel the second run goes through the shard-parallel
            # kernel instead, so the same comparison gates the
            # sequential/parallel digest equality.
            config = ReplayConfig(seed=args.seed).smoke()
            first = run_replay(config)
            if args.parallel:
                second = run_parallel_replay(config,
                                             workers=args.workers)
            else:
                second = run_replay(config)
            report = first.report
            if first.digest() != second.digest():
                reason = ("parallel kernel diverged from the "
                          "sequential replay" if args.parallel else
                          "replay is not deterministic across "
                          "identical runs")
                print(f"repro shard --smoke: FAIL: {reason}",
                      file=sys.stderr)
                return 1
            if second.full_scans:
                print(f"repro shard --smoke: FAIL: {second.full_scans} "
                      f"full scans of tenant-keyed state in the "
                      f"second run", file=sys.stderr)
                return 1
            if first.distinct_tenants < 100_000:
                print(f"repro shard --smoke: FAIL: only "
                      f"{first.distinct_tenants} distinct tenants "
                      f"(need >= 100000)", file=sys.stderr)
                return 1
            if first.full_scans:
                print(f"repro shard --smoke: FAIL: {first.full_scans} "
                      f"full scans of tenant-keyed state on the hot path",
                      file=sys.stderr)
                return 1
            if not report["balanced"]:
                print("repro shard --smoke: FAIL: fleet roll-up does not "
                      "reconcile (offered != completed + shed + failed + "
                      "pending)", file=sys.stderr)
                return 1
            if not first.failures_injected:
                print("repro shard --smoke: FAIL: no shard failure was "
                      "injected", file=sys.stderr)
                return 1
            if not first.recovered:
                print("repro shard --smoke: FAIL: shard failures recovered "
                      "no admitted queries", file=sys.stderr)
                return 1
            engines = ("sequential==parallel" if args.parallel
                       else "sequential")
            print(f"smoke OK: {first.distinct_tenants} tenants / "
                  f"{first.events} events over {first.shards_final} final "
                  f"shards; {first.failures_injected} failure(s), "
                  f"{first.recovered} recovered, full_scans=0, "
                  f"digest {first.digest()[:16]} ({engines})")
            return 0
        config = ReplayConfig(tenants=args.tenants, events=args.events,
                              seed=args.seed, fail_at=(150.0,),
                              fault_plan="shard-failure")
        if args.parallel:
            result = run_parallel_replay(config, workers=args.workers)
        else:
            result = run_replay(config)
    except (KeyError, ValueError) as exc:
        print(f"repro shard: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(canonical_json(result.to_dict()))
        return 0
    report = result.report
    print(f"sharded replay: {result.distinct_tenants} tenants, "
          f"{result.events} events, {result.shards_final} final shards "
          f"({len(result.rebalances)} rebalances, "
          f"{result.failures_injected} failures)")
    print(f"  offered {report['offered']}, completed {report['completed']}, "
          f"shed {report['shed']}, recovered {report['recovered']}, "
          f"balanced {report['balanced']}")
    print(f"  p50 {report['latency_p50']:.3f}s, "
          f"p99 {report['latency_p99']:.3f}s, "
          f"SLO {report['slo_attainment']:.3%}, "
          f"cost ${report['cost_usd']:.4f}")
    print(f"  stale retries {result.stale_retries}, "
          f"migrated {result.migrated}, full scans {result.full_scans}")
    print(f"  digest {result.digest()[:16]}")
    return 0


def _run_lint(args) -> int:
    """Run the determinism/architecture static-analysis pass."""
    from repro.lint.cli import run_lint

    return run_lint(args)


def _run_configs(configs, output_dir: Path, plot: bool) -> int:
    # Registers the "query" experiment kind with the Driver (the core
    # layer never imports upward; see repro.lint.layer_dag).
    from repro.workloads import suite as _suite  # noqa: F401

    driver = Driver()
    for config in configs:
        print(f"running {config.name} ({config.kind}) ...", flush=True)
        result = driver.run(config)
        path = result.save(output_dir / f"{config.name}.json")
        for key, value in result.metrics.items():
            print(f"  {key} = {value:.6g}")
        print(f"  cost = ${result.cost_usd:.4f}")
        print(f"  saved {path}")
        if plot:
            for label, points in result.series.items():
                print(ascii_timeseries(points, title=f"{config.name}: {label}",
                                       height=8))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Skyrise evaluation framework")
    parser.add_argument("--output", default="results",
                        help="directory for result JSON files")
    parser.add_argument("--plot", action="store_true",
                        help="render result series as ASCII charts")
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list predefined experiments")
    run = commands.add_parser("run", help="run one experiment")
    run.add_argument("experiment",
                     help="predefined name or path to a config JSON")
    suite = commands.add_parser("suite", help="run a predefined suite")
    suite.add_argument("suite", choices=sorted(SUITES))
    serve = commands.add_parser(
        "serve", help="serve a multi-tenant Poisson query mix")
    serve.add_argument("--policy", default="fair",
                       choices=("fifo", "priority", "fair"),
                       help="scheduling policy (default: fair)")
    serve.add_argument("--window", type=float, default=600.0,
                       help="serving window in simulated seconds")
    serve.add_argument("--seed", type=int, default=0,
                       help="RNG seed (fixed seed -> identical metrics)")
    serve.add_argument("--rate-scale", type=float, default=1.0,
                       help="multiply every tenant's arrival rate")
    serve.add_argument("--max-queries", type=int, default=None,
                       help="override the concurrency governor's query cap")
    serve.add_argument("--warm-pool", type=int, default=0, metavar="N",
                       help="keep N worker sandboxes warm via pings")
    serve.add_argument("--compare-fifo", action="store_true",
                       help="also run FIFO on the same trace for contrast")
    chaos = commands.add_parser(
        "chaos", help="run a query suite under fault injection")
    chaos.add_argument("--plan", default="demo-outage",
                       help="fault plan name (see repro.chaos.FAULT_PLANS)")
    chaos.add_argument("--queries", default="tpch-q6,tpch-q1",
                       help="comma-separated query list")
    chaos.add_argument("--repeats", type=int, default=2,
                       help="runs per query")
    chaos.add_argument("--seed", type=int, default=0,
                       help="RNG seed (fixed seed -> identical report)")
    chaos.add_argument("--json", action="store_true",
                       help="print the canonical JSON report")
    chaos.add_argument("--smoke", action="store_true",
                       help="CI gate: smoke plan, fail on any unrecovered "
                            "query or nondeterministic report")
    trace = commands.add_parser(
        "trace", help="run one query with telemetry and export its trace")
    trace.add_argument("--query", default="tpch-q12",
                       help="TPC-H query to trace (default: tpch-q12)")
    trace.add_argument("--seed", type=int, default=0,
                       help="RNG seed (fixed seed -> identical trace)")
    trace.add_argument("--smoke", action="store_true",
                       help="CI gate: trace tpch-q6, validate that the "
                            "Chrome trace and metrics snapshot parse")
    trace.add_argument("--trace", default=None, metavar="TRACE_ID",
                       help="re-export only this trace id (e.g. a trace "
                            "named in an incident bundle)")
    futures = commands.add_parser(
        "futures", help="run a futures/map-reduce workload scenario")
    futures.add_argument("--workload", default="wordcount",
                         choices=("wordcount", "sweep"),
                         help="scenario to run (default: wordcount)")
    futures.add_argument("--seed", type=int, default=7,
                         help="RNG seed (fixed seed -> identical outcome)")
    futures.add_argument("--objects", type=int, default=16,
                         help="corpus objects for wordcount")
    futures.add_argument("--chunks-per-object", type=int, default=4,
                         help="byte-range chunks per corpus object")
    futures.add_argument("--points", type=int, default=24,
                         help="grid points for the parameter sweep")
    futures.add_argument("--plan", default=None,
                         help="fault plan to inject (e.g. futures-chaos)")
    futures.add_argument("--speculate", action="store_true",
                         help="enable speculative re-invocation of "
                              "stragglers")
    futures.add_argument("--json", action="store_true",
                         help="print the canonical JSON outcome")
    futures.add_argument("--smoke", action="store_true",
                         help="CI gate: 64-chunk wordcount, fail on "
                              "nondeterminism or cost mismatch")
    shard = commands.add_parser(
        "shard", help="replay a Zipf trace over the sharded serving fabric")
    shard.add_argument("--tenants", type=int, default=1_000_000,
                       help="distinct tenant population of the trace")
    shard.add_argument("--events", type=int, default=1_500_000,
                       help="trace length in arrivals")
    shard.add_argument("--seed", type=int, default=7,
                       help="RNG seed (fixed seed -> identical replay)")
    shard.add_argument("--json", action="store_true",
                       help="print the canonical JSON replay outcome")
    shard.add_argument("--parallel", action="store_true",
                       help="run through the shard-parallel kernel; with "
                            "--smoke, gate sequential/parallel digest "
                            "equality")
    shard.add_argument("--workers", type=int, default=0,
                       help="parallel worker processes (0 = partitioned "
                            "kernel in-process; default 0)")
    shard.add_argument("--smoke", action="store_true",
                       help="CI gate: >=100k-tenant replay with a shard "
                            "failure; fail on nondeterminism, hot-path "
                            "full scans, or unreconciled queries")
    metrics = commands.add_parser(
        "metrics", help="run one query with telemetry and show a dashboard")
    metrics.add_argument("--query", default="tpch-q12",
                         help="TPC-H query to profile (default: tpch-q12)")
    metrics.add_argument("--seed", type=int, default=0,
                         help="RNG seed (fixed seed -> identical metrics)")
    metrics.add_argument("--json", action="store_true",
                         help="print the canonical JSON metrics snapshot")
    obs = commands.add_parser(
        "obs", help="observability plane: SLO burn-rate alerts, tail "
                    "sampling, incident bundles, stage profiler")
    obs.add_argument("--tenants", type=int, default=120_000,
                     help="distinct tenant population of the replay")
    obs.add_argument("--events", type=int, default=180_000,
                     help="replay length in arrivals")
    obs.add_argument("--seed", type=int, default=7,
                     help="RNG seed (fixed seed -> identical bundles)")
    obs.add_argument("--profile", default=None, metavar="QUERY",
                     help="instead of a replay, profile one TPC-H query's "
                          "span tree into the per-stage cost feed")
    obs.add_argument("--bundle-dir", default=None, metavar="DIR",
                     help="write each incident bundle as a canonical JSON "
                          "file under DIR")
    obs.add_argument("--json", action="store_true",
                     help="print the canonical JSON observed outcome")
    obs.add_argument("--smoke", action="store_true",
                     help="CI gate: shard-failure replay; fail unless the "
                          "burn-rate alert fires, bundles are "
                          "byte-deterministic, and sampled trace counts "
                          "conserve")
    lint = commands.add_parser(
        "lint", help="static analysis: determinism bans + layer contract")
    from repro.lint.cli import add_lint_arguments
    add_lint_arguments(lint)
    bench = commands.add_parser(
        "bench", help="perf macro-benchmarks: measure, record, or gate")
    from repro.bench.cli import add_bench_arguments
    add_bench_arguments(bench)
    args = parser.parse_args(argv)

    if args.command == "lint":
        return _run_lint(args)
    if args.command == "bench":
        from repro.bench.cli import run_bench
        return run_bench(args)

    if args.command == "serve":
        return _run_serve(args)
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "futures":
        return _run_futures(args)
    if args.command == "shard":
        return _run_shard(args)
    if args.command == "metrics":
        return _run_metrics(args)
    if args.command == "obs":
        return _run_obs(args)

    output_dir = Path(args.output)
    if args.command == "list":
        for name, config in _predefined().items():
            print(f"{name:<32} {config.kind}")
        return 0
    if args.command == "run":
        predefined = _predefined()
        if args.experiment in predefined:
            config = predefined[args.experiment]
        elif Path(args.experiment).exists():
            config = ExperimentConfig.from_json(
                Path(args.experiment).read_text())
        else:
            print(f"unknown experiment {args.experiment!r}; "
                  f"try 'python -m repro list'", file=sys.stderr)
            return 2
        return _run_configs([config], output_dir, args.plot)
    return _run_configs(SUITES[args.suite](), output_dir, args.plot)
