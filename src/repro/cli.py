"""Command-line interface for the evaluation framework.

Mirrors the paper's experiment flow (Figure 3): configurations go in,
JSON results come out, and the plotter renders what it can. Usage::

    python -m repro list                      # predefined experiments
    python -m repro run fig5-function-burst   # run one by name
    python -m repro run path/to/config.json   # or from a JSON file
    python -m repro suite network             # run a whole suite
    python -m repro serve --policy fair       # multi-tenant serving run
    python -m repro chaos --plan demo-outage  # fault-injected suite run
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import Driver, ExperimentConfig, ascii_timeseries
from repro.core.suites import (
    full_evaluation,
    network_suite,
    query_suite,
    startup_suite,
    storage_suite,
)

SUITES = {
    "network": network_suite,
    "storage": storage_suite,
    "query": query_suite,
    "startup": startup_suite,
    "full": full_evaluation,
}


def _predefined() -> dict[str, ExperimentConfig]:
    return {config.name: config for config in full_evaluation()}


def _run_serve(args) -> int:
    """Run a multi-tenant serving mix and print the per-tenant report."""
    from repro.serve import default_tenant_mix, run_serving_workload
    from repro.serve.scheduler import POLICIES

    policies = [args.policy]
    if args.compare_fifo and args.policy != "fifo":
        policies.insert(0, "fifo")
    assert all(policy in POLICIES for policy in policies)
    try:
        mix = default_tenant_mix(rate_scale=args.rate_scale)
        warm_targets = ({"skyrise-worker": args.warm_pool,
                         "skyrise-coordinator": 1}
                        if args.warm_pool else None)
        for policy in policies:
            outcome = run_serving_workload(
                mix, policy=policy, window_s=args.window, seed=args.seed,
                max_concurrent_queries=args.max_queries,
                warm_targets=warm_targets)
            print(outcome.format_report())
            print()
    except ValueError as exc:
        print(f"repro serve: error: {exc}", file=sys.stderr)
        return 2
    return 0


def _run_chaos(args) -> int:
    """Run a fault-injected chaos suite and print the resilience report."""
    from repro.chaos.runner import run_chaos_suite

    try:
        if args.smoke:
            # CI gate: the smoke plan must recover every query, and the
            # report must be byte-deterministic across two runs.
            first = run_chaos_suite("smoke", queries=("tpch-q6",),
                                    repeats=2, seed=args.seed,
                                    baseline=False)
            second = run_chaos_suite("smoke", queries=("tpch-q6",),
                                     repeats=2, seed=args.seed,
                                     baseline=False)
            print(first.format())
            if first.to_json() != second.to_json():
                print("repro chaos --smoke: FAIL: report is not "
                      "deterministic across identical runs",
                      file=sys.stderr)
                return 1
            if first.unrecovered:
                print(f"repro chaos --smoke: FAIL: {first.unrecovered} "
                      f"unrecovered quer(ies)", file=sys.stderr)
                return 1
            print("smoke OK: deterministic report, all queries recovered")
            return 0
        queries = tuple(q for q in args.queries.split(",") if q)
        report = run_chaos_suite(args.plan, queries=queries,
                                 repeats=args.repeats, seed=args.seed)
        print(report.to_json() if args.json else report.format())
    except (KeyError, ValueError) as exc:
        print(f"repro chaos: error: {exc}", file=sys.stderr)
        return 2
    return 0


def _run_configs(configs, output_dir: Path, plot: bool) -> int:
    driver = Driver()
    for config in configs:
        print(f"running {config.name} ({config.kind}) ...", flush=True)
        result = driver.run(config)
        path = result.save(output_dir / f"{config.name}.json")
        for key, value in result.metrics.items():
            print(f"  {key} = {value:.6g}")
        print(f"  cost = ${result.cost_usd:.4f}")
        print(f"  saved {path}")
        if plot:
            for label, points in result.series.items():
                print(ascii_timeseries(points, title=f"{config.name}: {label}",
                                       height=8))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Skyrise evaluation framework")
    parser.add_argument("--output", default="results",
                        help="directory for result JSON files")
    parser.add_argument("--plot", action="store_true",
                        help="render result series as ASCII charts")
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("list", help="list predefined experiments")
    run = commands.add_parser("run", help="run one experiment")
    run.add_argument("experiment",
                     help="predefined name or path to a config JSON")
    suite = commands.add_parser("suite", help="run a predefined suite")
    suite.add_argument("suite", choices=sorted(SUITES))
    serve = commands.add_parser(
        "serve", help="serve a multi-tenant Poisson query mix")
    serve.add_argument("--policy", default="fair",
                       choices=("fifo", "priority", "fair"),
                       help="scheduling policy (default: fair)")
    serve.add_argument("--window", type=float, default=600.0,
                       help="serving window in simulated seconds")
    serve.add_argument("--seed", type=int, default=0,
                       help="RNG seed (fixed seed -> identical metrics)")
    serve.add_argument("--rate-scale", type=float, default=1.0,
                       help="multiply every tenant's arrival rate")
    serve.add_argument("--max-queries", type=int, default=None,
                       help="override the concurrency governor's query cap")
    serve.add_argument("--warm-pool", type=int, default=0, metavar="N",
                       help="keep N worker sandboxes warm via pings")
    serve.add_argument("--compare-fifo", action="store_true",
                       help="also run FIFO on the same trace for contrast")
    chaos = commands.add_parser(
        "chaos", help="run a query suite under fault injection")
    chaos.add_argument("--plan", default="demo-outage",
                       help="fault plan name (see repro.chaos.FAULT_PLANS)")
    chaos.add_argument("--queries", default="tpch-q6,tpch-q1",
                       help="comma-separated query list")
    chaos.add_argument("--repeats", type=int, default=2,
                       help="runs per query")
    chaos.add_argument("--seed", type=int, default=0,
                       help="RNG seed (fixed seed -> identical report)")
    chaos.add_argument("--json", action="store_true",
                       help="print the canonical JSON report")
    chaos.add_argument("--smoke", action="store_true",
                       help="CI gate: smoke plan, fail on any unrecovered "
                            "query or nondeterministic report")
    args = parser.parse_args(argv)

    if args.command == "serve":
        return _run_serve(args)
    if args.command == "chaos":
        return _run_chaos(args)

    output_dir = Path(args.output)
    if args.command == "list":
        for name, config in _predefined().items():
            print(f"{name:<32} {config.kind}")
        return 0
    if args.command == "run":
        predefined = _predefined()
        if args.experiment in predefined:
            config = predefined[args.experiment]
        elif Path(args.experiment).exists():
            config = ExperimentConfig.from_json(
                Path(args.experiment).read_text())
        else:
            print(f"unknown experiment {args.experiment!r}; "
                  f"try 'python -m repro list'", file=sys.stderr)
            return 2
        return _run_configs([config], output_dir, args.plot)
    return _run_configs(SUITES[args.suite](), output_dir, args.plot)
