"""The partition directory: the authoritative, versioned shard map.

The directory owns the ring plus an override table for tenants the
rebalancer has pinned explicitly, and versions every mutation with
*epochs*: a global epoch counts map changes, and each shard carries the
epoch at which its assignment set last changed. A route handed out by
:meth:`PartitionDirectory.locate` embeds the shard's epoch; gateways
fence submissions on it (:class:`~repro.serve.gateway.StaleEpoch`), so
a router holding a cached route from before a split/merge/failure is
forced back to the directory instead of double-admitting a rebalanced
tenant on its old shard.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.shard.ring import HashRing


@dataclass(frozen=True)
class Route:
    """One directory answer: where a tenant lives, as of which epoch."""

    shard: str
    epoch: int


class PartitionDirectory:
    """Maps tenant keys to shards; every mutation bumps fenced epochs."""

    def __init__(self, shards: int = 1, vnodes: int | None = None,
                 prefix: str = "shard") -> None:
        self.ring = HashRing() if vnodes is None else HashRing(vnodes)
        self.prefix = prefix
        #: Global map version; grows by one per mutation.
        self.epoch = 0
        #: Epoch at which each shard's assignment set last changed.
        self._shard_epochs: dict[str, int] = {}
        #: Tenants pinned to a shard explicitly (hot-tenant isolation,
        #: failure re-homing); consulted before the ring.
        self._overrides: dict[str, str] = {}
        self._counter = 0
        for _ in range(shards):
            self.add_shard()

    # -- views -------------------------------------------------------------

    def shards(self) -> list[str]:
        """Member shard ids, sorted."""
        return self.ring.nodes()

    def shard_epoch(self, shard: str) -> int:
        """The epoch fence value of one shard."""
        return self._shard_epochs[shard]

    def overrides(self) -> dict[str, str]:
        """The explicit tenant pins (copy)."""
        return dict(self._overrides)

    def can_split(self, shard: str) -> bool:
        """Whether a shard still has enough ring points to divide.

        Repeated splits halve a shard's virtual points; once it is down
        to one, its key range is atomic and a further split would
        raise. Control loops check this before deciding to split.
        """
        return len(self.ring.points_of(shard)) >= 2

    def locate(self, tenant: str) -> Route:
        """The authoritative route of a tenant (O(log vnodes))."""
        shard = self._overrides.get(tenant)
        if shard is None:
            shard = self.ring.lookup(tenant)
        return Route(shard=shard, epoch=self._shard_epochs[shard])

    # -- mutations (each bumps the global epoch once) ----------------------

    def _bump(self, affected) -> int:
        self.epoch += 1
        for shard in affected:
            self._shard_epochs[shard] = self.epoch
        return self.epoch

    def add_shard(self, name: str | None = None) -> str:
        """Add a shard to the ring; its gainers' epochs advance."""
        if name is None:
            name = f"{self.prefix}-{self._counter}"
        self._counter += 1
        points = self.ring.add_node(name)
        losers = [shard for shard in self.ring.successors(points)
                  if shard != name]
        self._bump([name] + losers)
        return name

    def split_shard(self, hot: str) -> str:
        """Split a hot shard: half its ranges move to a fresh shard."""
        name = f"{self.prefix}-{self._counter}"
        self._counter += 1
        self.ring.split_node(hot, name)
        self._bump([hot, name])
        return name

    def merge_shard(self, cold: str, target: str) -> None:
        """Merge a cold shard's ranges (and pins) into ``target``."""
        self.ring.merge_node(cold, target)
        for tenant, shard in list(self._overrides.items()):
            if shard == cold:
                self._overrides[tenant] = target
        self._shard_epochs.pop(cold)
        self._bump([target])

    def fail_shard(self, dead: str) -> list[str]:
        """Drop a failed shard; returns the shards that took its ranges.

        Ranges fall to ring successors; explicit pins to the dead shard
        are released back to the ring (their tenants re-hash).
        """
        points = self.ring.remove_node(dead)
        for tenant, shard in list(self._overrides.items()):
            if shard == dead:
                del self._overrides[tenant]
        self._shard_epochs.pop(dead)
        heirs = self.ring.successors(points)
        self._bump(heirs)
        return heirs

    def pin(self, tenant: str, shard: str) -> None:
        """Pin one tenant to a shard (hot-tenant isolation)."""
        if shard not in self.ring:
            raise KeyError(f"shard {shard!r} is not on the ring")
        previous = self.locate(tenant).shard
        self._overrides[tenant] = shard
        self._bump(sorted({previous, shard}))

    def unpin(self, tenant: str) -> None:
        """Release a pinned tenant back to the ring."""
        previous = self._overrides.pop(tenant)
        self._bump(sorted({previous, self.locate(tenant).shard}))
