"""The shard router: the fleet's O(1)-per-event data plane.

A :class:`ShardRouter` fronts a fleet of
:class:`~repro.serve.gateway.QueryGateway` shards. On the hot path it
does exactly three O(1)-in-tenant-count things per submission: look the
tenant up in a bounded route cache (falling back to the directory's
O(log vnodes) ring lookup on a miss), offer the query to the routed
shard with the route's epoch, and — if the shard's fence has advanced
because a rebalance superseded the route — refresh from the directory
and retry once. The retry loop is bounded: the router is the only
mutator of the directory and re-syncs every live shard's fence after
each mutation, so a freshly fetched route is never stale.

The control plane (``split_shard`` / ``merge_shard`` / ``fail_shard``
/ ``add_shard``) keeps the admitted-work invariant: whenever a shard
is retired or loses key ranges, its backlog is drained in arrival
order and re-homed on the shards the directory now names — admitted
queries are never dropped, and the fleet roll-up counts every re-homed
request as recovered.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Any, Callable, Optional

from repro.serve.gateway import QueryGateway, StaleEpoch, Tenant
from repro.shard.directory import PartitionDirectory, Route
from repro.shard.metrics import FleetMetrics, ShardMetrics
from repro.telemetry import get_recorder

#: Route-cache capacity: bounds router memory at O(cache), not
#: O(tenants ever seen); eviction is FIFO on insertion order, so it is
#: deterministic and O(1).
DEFAULT_ROUTE_CACHE = 65536


class ShardRouter:
    """Routes tenant traffic onto a fleet of gateway shards."""

    def __init__(self, env, shards: int = 2,
                 vnodes: Optional[int] = None,
                 max_pending: float = math.inf,
                 default_tenant: Optional[Tenant] = None,
                 slo_latency_s: float = math.inf,
                 route_cache_size: int = DEFAULT_ROUTE_CACHE,
                 gateway_factory: Optional[Callable[..., QueryGateway]]
                 = None,
                 directory: Optional[PartitionDirectory] = None) -> None:
        if route_cache_size <= 0:
            raise ValueError("route_cache_size must be positive")
        self.env = env
        self.directory = directory if directory is not None \
            else PartitionDirectory(shards=shards, vnodes=vnodes)
        self.max_pending = max_pending
        self.default_tenant = default_tenant
        self.slo_latency_s = slo_latency_s
        self.route_cache_size = route_cache_size
        self._gateway_factory = gateway_factory
        self.fleet = FleetMetrics()
        #: Live gateways by shard id.
        self.gateways: dict[str, QueryGateway] = {}
        #: Serving metrics of every shard *ever* — retired shards stay
        #: in the roll-up so conservation holds across rebalances.
        self.shard_metrics: dict[str, ShardMetrics] = {}
        #: Bounded tenant -> Route cache. OrderedDict for its O(1)
        #: ``popitem(last=False)``: FIFO eviction via ``next(iter(d))``
        #: on a plain dict degrades linearly with accumulated deletion
        #: tombstones at million-tenant churn.
        self._routes: OrderedDict[str, Route] = OrderedDict()
        #: Submissions per live shard since the last window take —
        #: the rebalancer's load signal.
        self._window: dict[str, int] = {}
        self.submits = 0
        self.stale_retries = 0
        self.migrated = 0
        recorder = get_recorder()
        self._telemetry = recorder if recorder.enabled else None
        if self._telemetry is not None:
            self._submit_counter = recorder.counter("router.submits")
            self._stale_counter = recorder.counter("router.stale_retries")
        for shard in self.directory.shards():
            self._spawn(shard)

    # -- fleet membership --------------------------------------------------

    def shards(self) -> list[str]:
        """Live shard ids, sorted."""
        return sorted(self.gateways)

    def _spawn(self, shard: str) -> QueryGateway:
        metrics = ShardMetrics(shard_id=shard,
                               slo_latency_s=self.slo_latency_s)
        if self._gateway_factory is not None:
            gateway = self._gateway_factory(
                self.env, metrics=metrics, max_pending=self.max_pending,
                shard_id=shard, default_tenant=self.default_tenant)
        else:
            gateway = QueryGateway(
                self.env, metrics=metrics, max_pending=self.max_pending,
                shard_id=shard, default_tenant=self.default_tenant)
        gateway.epoch = self.directory.shard_epoch(shard)
        self.gateways[shard] = gateway
        self.shard_metrics[shard] = metrics
        self._window[shard] = 0
        return gateway

    def _sync_fences(self) -> None:
        # After any directory mutation, every live shard's fence tracks
        # its directory epoch; O(shards), never O(tenants).
        for shard in sorted(self.gateways):
            self.gateways[shard].epoch = self.directory.shard_epoch(shard)

    # -- data plane --------------------------------------------------------

    def route(self, tenant: str) -> Route:
        """The cached route of a tenant (refreshed when invalid)."""
        route = self._routes.get(tenant)
        if route is None or route.shard not in self.gateways:
            route = self._refresh(tenant)
        return route

    def _refresh(self, tenant: str) -> Route:
        route = self.directory.locate(tenant)
        if tenant not in self._routes \
                and len(self._routes) >= self.route_cache_size:
            self._routes.popitem(last=False)
        self._routes[tenant] = route
        return route

    def submit(self, tenant: str, plan: Any):
        """Route one query; returns the queued request or ``None`` if shed.

        Cost per call is O(1) in the number of tenants: a cache probe,
        one gateway offer, and — only when a rebalance raced the cached
        route — a single directory refresh and retry.
        """
        self.submits += 1
        route = self.route(tenant)
        for _ in range(2):
            gateway = self.gateways[route.shard]
            try:
                request = gateway.submit(tenant, plan, epoch=route.epoch)
            except StaleEpoch:
                self.stale_retries += 1
                if self._telemetry is not None:
                    self._stale_counter.inc()
                route = self._refresh(tenant)
                continue
            self._window[route.shard] += 1
            if self._telemetry is not None:
                self._submit_counter.inc()
            return request
        raise RuntimeError(
            f"route of tenant {tenant!r} stale after directory refresh")

    def offer_external(self, tenant: str) -> Optional[Callable[[], None]]:
        """Admit one unit of external work (e.g. a futures job).

        Routes exactly like :meth:`submit` but holds shard capacity via
        :meth:`~repro.serve.gateway.QueryGateway.offer_external`;
        returns the release callable, or ``None`` when shed.
        """
        self.submits += 1
        route = self.route(tenant)
        for _ in range(2):
            gateway = self.gateways[route.shard]
            try:
                release = gateway.offer_external(tenant, epoch=route.epoch)
            except StaleEpoch:
                self.stale_retries += 1
                if self._telemetry is not None:
                    self._stale_counter.inc()
                route = self._refresh(tenant)
                continue
            self._window[route.shard] += 1
            return release
        raise RuntimeError(
            f"route of tenant {tenant!r} stale after directory refresh")

    # -- rebalancer signals ------------------------------------------------

    def take_load_window(self) -> dict[str, int]:
        """Per-shard submissions since the last take (and reset)."""
        window = {shard: self._window[shard]
                  for shard in sorted(self._window)}
        for shard in window:
            self._window[shard] = 0
        return window

    def pending_total(self) -> int:
        """Queued plus external work across all live shards."""
        return sum(self.gateways[shard].load
                   for shard in sorted(self.gateways))

    def roll_up(self):
        """Fleet-level metrics roll-up, reconciled against the backlog."""
        return self.fleet.roll_up(
            [self.shard_metrics[shard]
             for shard in sorted(self.shard_metrics)],
            pending=self.pending_total())

    # -- control plane -----------------------------------------------------

    def _rehome(self, orphans, recovered: bool) -> int:
        """Adopt drained requests onto their current directory owners.

        Returns how many landed on a different shard than they were
        drained from. ``recovered`` requests (from merged or failed
        shards) are counted in the fleet roll-up.
        """
        moved = 0
        for request in orphans:
            if recovered:
                request.rescued = True
            target = self._refresh(request.tenant).shard
            self.gateways[target].adopt(request)
            moved += 1
        if recovered:
            self.fleet.recovered_requests += len(orphans)
        return moved

    def add_shard(self, name: Optional[str] = None) -> str:
        """Grow the fleet by one shard; re-homes remapped backlog."""
        start = self.env.now
        shard = self.directory.add_shard(name)
        self._spawn(shard)
        self._sync_fences()
        # Losers' queued tenants may now map to the new shard: drain
        # and re-home every live backlog entry whose route moved.
        moved = 0
        for owner in self.shards():
            if owner == shard:
                continue
            moved += self._resettle(owner)
        self.migrated += moved
        if self._telemetry is not None:
            self._telemetry.record_span(
                f"shard.add:{shard}", start, self.env.now,
                category="rebalance", attrs={"shard": shard,
                                             "moved": moved})
        return shard

    def _resettle(self, owner: str) -> int:
        """Re-home the queued requests of ``owner`` that remapped away."""
        gateway = self.gateways[owner]
        stay: list = []
        moved = 0
        for request in gateway.drain_backlog():
            target = self._refresh(request.tenant).shard
            if target == owner:
                stay.append(request)
            else:
                self.gateways[target].adopt(request)
                moved += 1
        for request in stay:
            gateway.adopt(request)
        return moved

    def split_shard(self, hot: str) -> str:
        """Split a hot shard; remapped backlog follows its tenants."""
        start = self.env.now
        new = self.directory.split_shard(hot)
        self._spawn(new)
        self._sync_fences()
        moved = self._resettle(hot)
        self.migrated += moved
        if self._telemetry is not None:
            self._telemetry.record_span(
                f"shard.split:{hot}", start, self.env.now,
                category="rebalance",
                attrs={"hot": hot, "new": new, "moved": moved})
        return new

    def merge_shard(self, cold: str, target: str) -> int:
        """Merge a cold shard away; its backlog is recovered, not lost."""
        start = self.env.now
        gateway = self.gateways.pop(cold)
        self._window.pop(cold)
        orphans = gateway.drain_backlog()
        self.directory.merge_shard(cold, target)
        self._sync_fences()
        self._rehome(orphans, recovered=True)
        if self._telemetry is not None:
            self._telemetry.record_span(
                f"shard.merge:{cold}", start, self.env.now,
                category="rebalance",
                attrs={"cold": cold, "target": target,
                       "recovered": len(orphans)})
        return len(orphans)

    def fail_shard(self, dead: str) -> int:
        """Fail a shard; the directory reassigns, the backlog is rescued.

        Models a shard loss with a durable admission log: queued (not
        yet dispatched) requests are re-homed on the heir shards the
        ring names, so no admitted query disappears. Returns the number
        of recovered requests.
        """
        start = self.env.now
        gateway = self.gateways.pop(dead)
        self._window.pop(dead)
        orphans = gateway.drain_backlog()
        heirs = self.directory.fail_shard(dead)
        self._sync_fences()
        self._rehome(orphans, recovered=True)
        if self._telemetry is not None:
            self._telemetry.record_span(
                f"shard.fail:{dead}", start, self.env.now,
                category="rebalance",
                attrs={"dead": dead, "heirs": ",".join(heirs),
                       "recovered": len(orphans)})
        return len(orphans)
